//! `chronos-control` — the standalone Chronos Control daemon.
//!
//! The deployable form of the toolkit's server half: a durable metadata
//! store on disk, the versioned REST API, the failure sweeper, and a
//! bootstrapped admin account.
//!
//! ```text
//! chronos-control --listen 0.0.0.0:8080 --data /var/lib/chronos \
//!                 --admin-password change-me
//! ```

use std::sync::Arc;

use chronos_core::auth::Role;
use chronos_core::scheduler::SchedulerConfig;
use chronos_core::store::MetadataStore;
use chronos_core::ChronosControl;
use chronos_server::ChronosServer;
use chronos_util::SystemClock;

struct Options {
    listen: String,
    data: Option<std::path::PathBuf>,
    admin_user: String,
    admin_password: Option<String>,
    heartbeat_timeout_millis: u64,
    max_attempts: u32,
    node_id: Option<String>,
    peers: Vec<String>,
    lease_millis: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: chronos-control [options]\n\
         \n\
         options:\n\
           --listen ADDR             bind address (default 127.0.0.1:8080)\n\
           --data DIR                durable metadata directory (default: in-memory)\n\
           --admin-user NAME         bootstrap admin username (default: admin)\n\
           --admin-password PW       bootstrap admin password (created if the user\n\
                                     does not exist yet)\n\
           --heartbeat-timeout MS    job lease timeout (default 30000)\n\
           --max-attempts N          attempts before a job stays failed (default 3)\n\
           --node-id NAME            enable cluster mode with this node identity\n\
           --peer URL                a peer node's base URL (repeatable; cluster mode)\n\
           --lease MS                cluster leader lease (default 1000; cluster mode)\n\
           --help                    show this help"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        listen: "127.0.0.1:8080".to_string(),
        data: None,
        admin_user: "admin".to_string(),
        admin_password: None,
        heartbeat_timeout_millis: 30_000,
        max_attempts: 3,
        node_id: None,
        peers: Vec::new(),
        lease_millis: 1_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => options.listen = value("--listen"),
            "--data" => options.data = Some(value("--data").into()),
            "--admin-user" => options.admin_user = value("--admin-user"),
            "--admin-password" => options.admin_password = Some(value("--admin-password")),
            "--heartbeat-timeout" => {
                options.heartbeat_timeout_millis =
                    value("--heartbeat-timeout").parse().unwrap_or_else(|_| usage())
            }
            "--max-attempts" => {
                options.max_attempts = value("--max-attempts").parse().unwrap_or_else(|_| usage())
            }
            "--node-id" => options.node_id = Some(value("--node-id")),
            "--peer" => options.peers.push(value("--peer")),
            "--lease" => {
                options.lease_millis = value("--lease").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let store = match &options.data {
        Some(dir) => {
            let path = dir.join("chronos-control.log");
            match MetadataStore::open(&path) {
                Ok(store) => {
                    eprintln!(
                        "metadata store: {} ({} log records)",
                        path.display(),
                        store.log_records()
                    );
                    store
                }
                Err(e) => {
                    eprintln!("cannot open metadata store at {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("metadata store: in-memory (no --data given; state is lost on exit)");
            MetadataStore::in_memory()
        }
    };
    let control = Arc::new(ChronosControl::new(
        store,
        Arc::new(SystemClock),
        SchedulerConfig {
            heartbeat_timeout_millis: options.heartbeat_timeout_millis,
            max_attempts: options.max_attempts,
            auto_reschedule: true,
        },
    ));

    if let Some(password) = &options.admin_password {
        match control.create_user(&options.admin_user, password, Role::Admin) {
            Ok(user) => eprintln!("created admin user {:?} ({})", user.username, user.id),
            Err(chronos_core::CoreError::Conflict(_)) => {
                eprintln!("admin user {:?} already exists", options.admin_user)
            }
            Err(e) => {
                eprintln!("cannot create admin user: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = match &options.node_id {
        Some(node_id) => {
            let cluster = chronos_server::ClusterOptions::new(node_id.clone())
                .with_lease(std::time::Duration::from_millis(options.lease_millis));
            ChronosServer::start_cluster(
                control,
                &options.listen,
                chronos_http::Server::new(),
                cluster,
            )
        }
        None => ChronosServer::start(control, &options.listen),
    };
    let mut server = match started {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", options.listen);
            std::process::exit(1);
        }
    };
    if options.node_id.is_some() {
        server.set_cluster_peers(options.peers.clone());
        eprintln!(
            "cluster mode: node {:?}, {} peer(s), lease {}ms",
            options.node_id.as_deref().unwrap_or_default(),
            options.peers.len(),
            options.lease_millis
        );
    }
    eprintln!("Chronos Control listening on {}", server.base_url());
    eprintln!("API index: {}/api", server.base_url());

    shutdown_signal::install();
    // Serve until asked to stop, then drain: finish in-flight requests,
    // refuse new ones with typed 503s, and persist a clean store.
    while !shutdown_signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    eprintln!("shutdown signal received; draining...");
    let clean = server.drain();
    server.shutdown();
    if clean {
        eprintln!("drain complete: all in-flight requests finished");
    } else {
        eprintln!("drain timed out with requests still in flight");
        std::process::exit(1);
    }
}

/// SIGTERM/SIGINT handling without a signal crate: the handler only flips
/// an atomic flag (async-signal-safe) that the main loop polls.
#[cfg(unix)]
mod shutdown_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Non-unix fallback: no signal hooks; the process serves until killed.
#[cfg(not(unix))]
mod shutdown_signal {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}
