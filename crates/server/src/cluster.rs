//! Cluster mode: peer endpoints, role-aware request routing, and the
//! replication/election driver.
//!
//! A cluster node runs three cooperating pieces on top of the ordinary
//! server:
//!
//! * **Peer endpoints** (`/api/v1/cluster/{replicate,vote,status}`) —
//!   the leader ships frame-checksummed WAL segments to `replicate`;
//!   candidates solicit `vote`s; `status` is how peers (and operators)
//!   read a node's role, term, and replication offset.
//! * **The role guard** — a follower/candidate refuses client writes with
//!   a typed `not_leader` envelope carrying the leader hint, and serves
//!   GETs only while its last leader contact is within the staleness
//!   bound.
//! * **The driver thread** — while leading, ships segments every lease/5
//!   and renews the lease on majority acknowledgement (stepping down when
//!   a majority stays unreachable for a full lease); while following,
//!   stands for election after the lease plus a deterministic per-node
//!   jitter expires without leader contact.
//!
//! Election and replication edge cases (lost heartbeats, a partitioned
//! leader, torn shipped segments, double-grant races) are driven through
//! the deterministic failpoint registry — sites `cluster.replicate.send`,
//! `cluster.vote.send`, and `cluster.install.torn` — so the cluster chaos
//! suite replays them from a seed instead of waiting for the network to
//! misbehave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_api::{v1, ErrorEnvelope, WireDecode, WireEncode};
use chronos_core::cluster::{election_jitter, segment_checksum, ClusterRole, ClusterState};
use chronos_core::ChronosControl;
use chronos_http::{Client, Method, Request, Response, Router, ServerMetrics, Status};
use parking_lot::Mutex;

/// Largest segment shipped per replicate call; a lagging follower catches
/// up over several ticks instead of one giant body.
const MAX_SEGMENT_BYTES: usize = 256 * 1024;

/// Named envelope code refusing a segment whose term regressed.
pub const CODE_STALE_TERM: &str = "stale_term";

/// Named envelope code refusing a segment that does not start at the
/// follower's current replication offset.
pub const CODE_OFFSET_GAP: &str = "offset_gap";

/// Named envelope code refusing a segment whose checksum does not match.
pub const CODE_BAD_SEGMENT: &str = "bad_segment";

/// Cluster-mode configuration for [`ChronosServer::start_cluster`]
/// (crate root).
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Stable node identifier (election jitter, status bodies).
    pub node_id: String,
    /// Leader lease; see [`chronos_core::cluster::ClusterConfig::lease`].
    pub lease: Duration,
    /// Follower-read staleness bound; defaults to twice the lease.
    pub staleness_bound: Duration,
}

impl ClusterOptions {
    /// Defaults: a one-second lease and a two-second staleness bound.
    pub fn new(node_id: impl Into<String>) -> Self {
        ClusterOptions {
            node_id: node_id.into(),
            lease: Duration::from_secs(1),
            staleness_bound: Duration::from_secs(2),
        }
    }

    /// Overrides the lease and re-derives the default staleness bound.
    pub fn with_lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self.staleness_bound = lease * 2;
        self
    }

    /// Overrides the staleness bound independently of the lease.
    pub fn with_staleness_bound(mut self, bound: Duration) -> Self {
        self.staleness_bound = bound;
        self
    }
}

/// One replication peer, from this node's point of view.
struct Peer {
    client: Client,
    /// The feed offset we believe the peer has applied through. Only
    /// trusted after a sync (ack or status read); until then the driver
    /// asks the peer instead of guessing.
    offset: u64,
    synced: bool,
}

/// The shared half of the driver: peers and a stop flag. The driver
/// thread ticks it; `ChronosServer` configures peers and stops it.
pub(crate) struct ClusterRuntime {
    state: Arc<ClusterState>,
    control: Arc<ChronosControl>,
    metrics: Arc<ServerMetrics>,
    peers: Mutex<Vec<Peer>>,
    stop: AtomicBool,
}

impl ClusterRuntime {
    pub(crate) fn new(
        state: Arc<ClusterState>,
        control: Arc<ChronosControl>,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        ClusterRuntime {
            state,
            control,
            metrics,
            peers: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    /// Replaces the peer set (base URLs of the other cluster nodes).
    /// Elections only begin once peers are known.
    pub(crate) fn set_peers(&self, urls: Vec<String>) {
        let lease = self.state.lease();
        let timeout = (lease / 2).max(Duration::from_millis(50));
        let mut peers = self.peers.lock();
        *peers = urls
            .into_iter()
            .map(|url| {
                let client = Client::new(url.trim_end_matches('/')).with_timeout(timeout);
                Peer { client, offset: 0, synced: false }
            })
            .collect();
    }

    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The driver loop; runs until [`ClusterRuntime::request_stop`].
    pub(crate) fn run(&self) {
        let tick = (self.state.lease() / 5).max(Duration::from_millis(10));
        while !self.stop.load(Ordering::SeqCst) {
            match self.state.role() {
                ClusterRole::Leader => self.ship_round(),
                ClusterRole::Follower | ClusterRole::Candidate => self.maybe_elect(),
            }
            self.publish_metrics();
            std::thread::sleep(tick);
        }
    }

    /// One leader round: ship a segment (or empty heartbeat) to every
    /// peer; a majority of acknowledgements renews the lease. A leader
    /// that cannot reach a majority for a full lease steps down — it can
    /// no longer prove it was not deposed, so it must stop taking writes.
    fn ship_round(&self) {
        let term = self.state.term();
        let leader = self.state.advertise();
        let mut peers = self.peers.lock();
        let cluster_size = peers.len() + 1;
        let mut reachable = 1usize; // self
        for peer in peers.iter_mut() {
            if chronos_util::fail_eval!("cluster.replicate.send").is_some() {
                continue; // injected lost heartbeat / partition
            }
            if !peer.synced && !self.sync_peer(peer, term) {
                continue;
            }
            let Some(frames) = self.control.read_replication(peer.offset, MAX_SEGMENT_BYTES) else {
                // The peer claims an offset outside our feed (diverged
                // replica, or our own feed was truncated): re-ask, and
                // leave it unacknowledged — its lag shows on /readyz.
                peer.synced = false;
                continue;
            };
            let shipped_frames = !frames.is_empty();
            let request = v1::ReplicateRequest {
                term,
                leader: leader.clone(),
                start_offset: peer.offset,
                checksum: segment_checksum(&frames),
                frames,
            };
            match peer.client.post_json("/api/v1/cluster/replicate", &request.to_value()) {
                Ok(response) if response.status.is_success() => {
                    let Some(ack) =
                        response.json_body().ok().and_then(|v| v1::ReplicateAck::decode(&v).ok())
                    else {
                        continue;
                    };
                    if ack.term > term {
                        // Fenced: a newer leader exists.
                        self.state.observe_term(ack.term);
                        return;
                    }
                    // A torn install acknowledges mid-segment; resume there.
                    peer.offset = ack.offset;
                    peer.synced = true;
                    reachable += 1;
                    if shipped_frames {
                        self.metrics.segments_shipped.inc();
                    }
                }
                Ok(_) => {
                    // Typed refusal (stale term / offset gap): the status
                    // body tells us whether we were deposed or just out of
                    // sync with this peer's offset.
                    peer.synced = false;
                    if self.sync_peer(peer, term) {
                        reachable += 1;
                    }
                    if self.state.role() != ClusterRole::Leader {
                        return; // deposed mid-round
                    }
                }
                Err(_) => {} // unreachable peer
            }
        }
        if reachable * 2 > cluster_size {
            self.state.renew_lease();
        } else if self.state.lease_expired(Instant::now()) {
            self.state.step_down();
        }
    }

    /// Reads a peer's status to learn its replication offset (and any
    /// higher term). Returns whether the peer answered.
    fn sync_peer(&self, peer: &mut Peer, own_term: u64) -> bool {
        let Ok(response) = peer.client.get("/api/v1/cluster/status") else { return false };
        let Some(status) =
            response.json_body().ok().and_then(|v| v1::ClusterStatusDto::decode(&v).ok())
        else {
            return false;
        };
        if status.term > own_term {
            self.state.observe_term(status.term);
            return true;
        }
        if status.offset <= self.control.replication_offset() {
            peer.offset = status.offset;
            peer.synced = true;
        }
        // else: the peer is ahead of us — a diverged minority replica.
        // We cannot rewind its store; it stays unsynced (and unready)
        // until re-seeded. See DESIGN.md §5f failure table.
        true
    }

    /// One follower/candidate round: stand for election once the lease
    /// plus this node's deterministic jitter has passed without contact.
    fn maybe_elect(&self) {
        let now = Instant::now();
        let lease = self.state.lease();
        let jitter = election_jitter(self.state.node_id(), self.state.term() + 1, lease);
        if !self.state.election_due(now, jitter) {
            return;
        }
        let peer_count = self.peers.lock().len();
        if peer_count == 0 {
            return; // peers not configured yet: nothing to win
        }
        let term = self.state.start_election();
        self.metrics.elections.inc();
        let request = v1::VoteRequest {
            term,
            candidate: self.state.advertise(),
            last_offset: self.control.replication_offset(),
        };
        let mut votes = 1usize; // own vote, cast in start_election
        let peers = self.peers.lock();
        let cluster_size = peers.len() + 1;
        for peer in peers.iter() {
            if chronos_util::fail_eval!("cluster.vote.send").is_some() {
                continue; // injected lost vote request
            }
            let Ok(response) = peer.client.post_json("/api/v1/cluster/vote", &request.to_value())
            else {
                continue;
            };
            let Some(vote) =
                response.json_body().ok().and_then(|v| v1::VoteResponse::decode(&v).ok())
            else {
                continue;
            };
            if vote.term > term {
                self.state.observe_term(vote.term);
                return; // outpaced: a newer term is already in play
            }
            if vote.granted {
                votes += 1;
            }
        }
        drop(peers);
        if votes * 2 > cluster_size && self.state.win_election(term) {
            // Failover: the store already holds every replicated write
            // (the "WAL replay" happened continuously, segment by
            // segment). Re-arm the job protocol now: an immediate sweep
            // reschedules any job whose agent died with the old leader,
            // and agents that survived re-aim here via the not_leader
            // hint and keep their leases alive. Exactly-once holds
            // because claims, results, and fencing all replicated.
            let mut peers = self.peers.lock();
            for peer in peers.iter_mut() {
                peer.synced = false; // re-learn offsets as leader
            }
            drop(peers);
            let _ = self.control.check_timeouts();
        }
    }

    /// Mirrors cluster state into the shared [`ServerMetrics`] gauges.
    fn publish_metrics(&self) {
        let role = match self.state.role() {
            ClusterRole::Follower => 0,
            ClusterRole::Candidate => 1,
            ClusterRole::Leader => 2,
        };
        self.metrics.cluster_role.set(role);
        self.metrics.cluster_term.set(self.state.term());
        self.metrics.replication_lag_ms.set(self.state.lag(Instant::now()).as_millis() as u64);
    }
}

/// Mounts the peer endpoints. Unlike the client API these carry no
/// session tokens: they are node-to-node traffic on the cluster's own
/// network (the deployment guide's trust boundary).
pub(crate) fn mount(
    router: &mut Router,
    state: Arc<ClusterState>,
    control: Arc<ChronosControl>,
    metrics: Arc<ServerMetrics>,
) {
    let state_ = Arc::clone(&state);
    let control_ = Arc::clone(&control);
    router.post("/api/v1/cluster/replicate", move |req, _p| replicate(&state_, &control_, req));

    let state_ = Arc::clone(&state);
    let control_ = Arc::clone(&control);
    router.post("/api/v1/cluster/vote", move |req, _p| {
        let request: v1::VoteRequest = match chronos_api::extract::body(req) {
            Ok(request) => request,
            Err(e) => return bad_request(&e.to_string()),
        };
        let own_offset = control_.replication_offset();
        let (granted, term) =
            state_.grant_vote(request.term, &request.candidate, request.last_offset, own_offset);
        Response::json(&v1::VoteResponse { term, granted }.to_value())
    });

    router.get("/api/v1/cluster/status", move |_req, _p| {
        Response::json(&status_dto(&state, &control, &metrics).to_value())
    });
}

/// Handles one shipped segment: fence the term, verify the checksum,
/// check offset continuity, then install. Every refusal leaves the store
/// byte-identical — install only runs after all three gates pass.
fn replicate(state: &ClusterState, control: &ChronosControl, req: &Request) -> Response {
    let request: v1::ReplicateRequest = match chronos_api::extract::body(req) {
        Ok(request) => request,
        Err(e) => return bad_request(&e.to_string()),
    };
    // Gate 1 — term fencing: a deposed leader's late segment is refused
    // before anything else looks at it.
    if let Err(current) = state.observe_leader(request.term, &request.leader) {
        let envelope = ErrorEnvelope::named(
            CODE_STALE_TERM,
            format!("segment term {} fenced by current term {current}", request.term),
        );
        return Response::json_status(Status::CONFLICT, &envelope.to_value());
    }
    // Gate 2 — integrity: the checksum covers the exact bytes to install.
    if segment_checksum(&request.frames) != request.checksum {
        let envelope =
            ErrorEnvelope::named(CODE_BAD_SEGMENT, "segment checksum mismatch (refused)");
        return Response::json_status(Status::BAD_REQUEST, &envelope.to_value());
    }
    // Gate 3 — continuity: the segment must extend this replica's feed
    // exactly; a gap or an overlap (stale leader replaying old log) is
    // refused and the leader re-syncs from our status.
    let offset = control.replication_offset();
    if request.start_offset != offset {
        let envelope = ErrorEnvelope::named(
            CODE_OFFSET_GAP,
            format!("segment starts at {} but this replica is at {offset}", request.start_offset),
        );
        return Response::json_status(Status::CONFLICT, &envelope.to_value());
    }
    // Deterministic torn-install fault: the local write tears mid-frame
    // after the wire checks passed — the install path's torn-tail
    // truncation applies the complete prefix and acks mid-segment. Only
    // data segments hit the site: an empty heartbeat has nothing to tear,
    // and a one-shot `torn` policy must not be spent on one.
    let mut payload = request.frames;
    if !payload.is_empty() {
        match chronos_util::fail_eval!("cluster.install.torn") {
            Some(chronos_util::fail::Injected::Torn { keep }) => {
                payload.truncate(keep.min(payload.len()));
            }
            Some(chronos_util::fail::Injected::Error(msg)) => {
                let envelope = ErrorEnvelope::status(500, format!("install failed: {msg}"));
                return Response::json_status(Status::INTERNAL_ERROR, &envelope.to_value());
            }
            None => {}
        }
    }
    match control.install_replication(&payload) {
        Ok(_) => {
            let ack = v1::ReplicateAck { term: state.term(), offset: control.replication_offset() };
            Response::json(&ack.to_value())
        }
        Err(e) => crate::error_response(e),
    }
}

/// This node's cluster status body.
pub(crate) fn status_dto(
    state: &ClusterState,
    control: &ChronosControl,
    metrics: &ServerMetrics,
) -> v1::ClusterStatusDto {
    v1::ClusterStatusDto {
        node: state.node_id().to_string(),
        role: state.role().as_str().to_string(),
        term: state.term(),
        leader: state.leader_hint(),
        offset: control.replication_offset(),
        lag_millis: state.lag(Instant::now()).as_millis() as u64,
        elections: state.elections_started(),
        segments_shipped: metrics.segments_shipped.get(),
    }
}

/// Role-aware routing, applied before the router dispatches: `None`
/// passes the request through; `Some` is the typed refusal.
///
/// * Peer traffic, liveness/readiness probes, version negotiation, and
///   login/logout (sessions are node-local) always pass.
/// * The leader serves everything.
/// * Followers serve GETs while fresh (last leader contact within the
///   staleness bound) — the hot agent-poll and experiment-status reads
///   scale across replicas — and refuse everything else with `not_leader`
///   plus the leader hint.
pub(crate) fn guard(request: &Request, state: &ClusterState) -> Option<Response> {
    let path = request.path.as_str();
    if !(path.starts_with("/api") || path.starts_with("/ui")) {
        return None; // /healthz, /readyz report role themselves
    }
    if path.starts_with("/api/v1/cluster/")
        || path == "/api"
        || path.ends_with("/version")
        || path == "/api/v1/login"
        || path == "/api/v1/logout"
    {
        return None;
    }
    if state.role() == ClusterRole::Leader {
        return None;
    }
    let hint = state.leader_hint();
    if request.method == Method::Get {
        if !state.is_stale(Instant::now()) {
            return None;
        }
        return Some(not_leader_response(
            "replica lag exceeds the staleness bound; read from the leader",
            hint,
            state.lease(),
        ));
    }
    Some(not_leader_response("this node is not the leader", hint, state.lease()))
}

/// The typed `503 not_leader` refusal. The Retry-After hint covers the
/// no-hint (mid-election) case: by a quarter-lease later either a leader
/// exists or the client's next attempt gets its address.
fn not_leader_response(message: &str, leader: Option<String>, lease: Duration) -> Response {
    Response::json_status(
        Status::SERVICE_UNAVAILABLE,
        &ErrorEnvelope::not_leader(message, leader).to_value(),
    )
    .with_retry_after((lease / 4).max(Duration::from_millis(25)))
}

fn bad_request(message: &str) -> Response {
    Response::json_status(Status::BAD_REQUEST, &ErrorEnvelope::status(400, message).to_value())
}
