//! The Chronos web UI, server-rendered.
//!
//! The original Chronos Control is "designed as a web application allowing
//! the management and analysis of evaluations using common web browsers"
//! (paper §2.2). This module reproduces the UI's information content as
//! plain server-rendered HTML over the same core:
//!
//! * `/ui` — overview: systems, projects, installation stats
//! * `/ui/systems/:id` — system configuration page (paper Fig. 2)
//! * `/ui/projects/:id` — project page with its experiments
//! * `/ui/experiments/:id` — experiment definition (paper Fig. 3a)
//! * `/ui/evaluations/:id` — evaluation detail with the job table
//!   (paper Fig. 3b) and the result charts inline as SVG (paper Fig. 3d)
//! * `/ui/jobs/:id` — job detail: state, progress, log, timeline
//!   (paper Fig. 3c)
//!
//! Browsers cannot set custom headers, so UI pages authenticate with a
//! `?token=` query parameter (obtained from `POST /api/v1/login`); all
//! intra-UI links propagate it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use chronos_core::charts::ChartRegistry;
use chronos_core::model::JobState;
use chronos_core::{analysis, ChronosControl, CoreError, CoreResult};
use chronos_http::{Request, Response, RouteParams, Router, ServerMetrics, Status};
use chronos_util::Id;

/// HTML-escapes text content.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Wraps page content in the shared layout.
fn page(title: &str, body: &str) -> Response {
    let html = format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>{title} — Chronos</title>\n\
         <style>\n\
         body {{ font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }}\n\
         h1 {{ border-bottom: 2px solid #4e79a7; padding-bottom: .3rem; }}\n\
         table {{ border-collapse: collapse; width: 100%; margin: 1rem 0; }}\n\
         th, td {{ border: 1px solid #ddd; padding: .4rem .6rem; text-align: left; font-size: .9rem; }}\n\
         th {{ background: #f4f6f8; }}\n\
         .state {{ padding: .1rem .5rem; border-radius: .6rem; font-size: .8rem; color: white; }}\n\
         .state.scheduled {{ background: #888; }} .state.running {{ background: #4e79a7; }}\n\
         .state.finished {{ background: #59a14f; }} .state.aborted {{ background: #b07aa1; }}\n\
         .state.failed {{ background: #e15759; }} .state.quarantined {{ background: #6b4226; }}\n\
         .progress {{ background: #eee; border-radius: .3rem; width: 12rem; height: 1rem; }}\n\
         .progress > div {{ background: #4e79a7; height: 100%; border-radius: .3rem; }}\n\
         pre {{ background: #f8f8f8; border: 1px solid #ddd; padding: .8rem; overflow-x: auto; }}\n\
         nav {{ margin-bottom: 1rem; font-size: .9rem; }}\n\
         </style></head><body>\n\
         <nav><a href=\"javascript:history.back()\">&larr; back</a></nav>\n\
         {body}\n\
         <footer><hr><small>Chronos — Evaluations-as-a-Service (EDBT 2020 reproduction)</small></footer>\n\
         </body></html>\n",
        title = esc(title),
    );
    Response::bytes(Status::OK, "text/html; charset=utf-8", html.into_bytes())
}

fn state_badge(state: JobState) -> String {
    format!("<span class=\"state {0}\">{0}</span>", state.as_str())
}

fn authed_ui(control: &ChronosControl, req: &Request) -> CoreResult<()> {
    let token = req.query_param("token").ok_or_else(|| {
        CoreError::Forbidden("append ?token=<session token> (POST /api/v1/login)".into())
    })?;
    control.authenticate(&token).map(|_| ())
}

fn ui_error(error: CoreError) -> Response {
    let status = match &error {
        CoreError::NotFound { .. } => Status::NOT_FOUND,
        CoreError::Forbidden(_) => Status::FORBIDDEN,
        _ => Status::BAD_REQUEST,
    };
    let html = format!(
        "<!DOCTYPE html><html><body><h1>{}</h1><p>{}</p></body></html>",
        status.reason(),
        esc(&error.to_string())
    );
    Response::bytes(status, "text/html; charset=utf-8", html.into_bytes())
}

fn param_id(params: &RouteParams, name: &str) -> CoreResult<Id> {
    params
        .get(name)
        .and_then(|s| Id::parse_base32(s).ok())
        .ok_or_else(|| CoreError::Invalid(format!("invalid :{name}")))
}

fn token_of(req: &Request) -> String {
    req.query_param("token").unwrap_or_default()
}

/// Renders the server-health block on the overview page: drain state, the
/// front-end admission counters, and (read from the mirrored gauges) the
/// node's cluster role, term, and replication health.
fn health_section(metrics: &ServerMetrics, draining: bool) -> String {
    let role = match metrics.cluster_role.get() {
        0 => "follower",
        1 => "candidate",
        _ => "leader",
    };
    format!(
        "<h2>Server health</h2><table>\
         <tr><th>state</th><th>in-flight</th><th>accepted</th><th>requests</th>\
         <th>shed (overload)</th><th>shed (draining)</th><th>deadline exceeded</th></tr>\
         <tr><td>{state}</td><td>{inflight}</td><td>{accepted}</td><td>{requests}</td>\
         <td>{shed_overload}</td><td>{shed_draining}</td><td>{deadline}</td></tr></table>\
         <table>\
         <tr><th>role</th><th>term</th><th>replication lag (ms)</th>\
         <th>elections</th><th>segments shipped</th></tr>\
         <tr><td>{role}</td><td>{term}</td><td>{lag}</td>\
         <td>{elections}</td><td>{shipped}</td></tr></table>",
        state = if draining { "draining" } else { "running" },
        inflight = metrics.inflight.get(),
        accepted = metrics.accepted.get(),
        requests = metrics.requests.get(),
        shed_overload = metrics.shed_overload.get(),
        shed_draining = metrics.shed_draining.get(),
        deadline = metrics.deadline_exceeded.get(),
        term = metrics.cluster_term.get(),
        lag = metrics.replication_lag_ms.get(),
        elections = metrics.elections.get(),
        shipped = metrics.segments_shipped.get(),
    )
}

/// Mounts all UI routes.
pub fn mount(
    router: &mut Router,
    control: Arc<ChronosControl>,
    metrics: Arc<ServerMetrics>,
    draining: Arc<AtomicBool>,
) {
    let c = &control;

    // Overview.
    let control_ = Arc::clone(c);
    router.get("/ui", move |req, _p| {
        if let Err(e) = authed_ui(&control_, req) {
            return ui_error(e);
        }
        let token = token_of(req);
        let mut body = String::from("<h1>Chronos Control</h1>");
        body.push_str(&health_section(&metrics, draining.load(Ordering::SeqCst)));
        body.push_str("<h2>Systems under evaluation</h2><table><tr><th>name</th><th>description</th><th>parameters</th><th>charts</th></tr>");
        for system in control_.list_systems() {
            body.push_str(&format!(
                "<tr><td><a href=\"/ui/systems/{id}?token={token}\">{name}</a></td><td>{desc}</td><td>{params}</td><td>{charts}</td></tr>",
                id = system.id,
                name = esc(&system.name),
                desc = esc(&system.description),
                params = system.parameters.len(),
                charts = system.charts.len(),
            ));
        }
        body.push_str("</table><h2>Projects</h2><table><tr><th>name</th><th>description</th><th>members</th><th>archived</th></tr>");
        for project in control_.list_projects() {
            body.push_str(&format!(
                "<tr><td><a href=\"/ui/projects/{id}?token={token}\">{name}</a></td><td>{desc}</td><td>{members}</td><td>{archived}</td></tr>",
                id = project.id,
                name = esc(&project.name),
                desc = esc(&project.description),
                members = project.members.len(),
                archived = project.archived,
            ));
        }
        body.push_str("</table>");
        page("Overview", &body)
    });

    // System configuration (paper Fig. 2).
    let control_ = Arc::clone(c);
    router.get("/ui/systems/:id", move |req, p| {
        let result = (|| {
            authed_ui(&control_, req)?;
            let system = control_.get_system(param_id(p, "id")?)?;
            let token = token_of(req);
            let mut body = format!(
                "<h1>System: {}</h1><p>{}</p><h2>Parameters</h2>\
                 <table><tr><th>name</th><th>type</th><th>default</th><th>description</th></tr>",
                esc(&system.name),
                esc(&system.description)
            );
            for def in &system.parameters {
                body.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td><code>{}</code></td><td>{}</td></tr>",
                    esc(&def.name),
                    def.param_type.tag(),
                    esc(&def.default.to_string()),
                    esc(&def.description),
                ));
            }
            body.push_str("</table><h2>Result charts</h2><table><tr><th>kind</th><th>title</th><th>x</th><th>series</th><th>value</th></tr>");
            for chart in &system.charts {
                body.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td><code>{}</code></td></tr>",
                    chart.kind,
                    esc(&chart.title),
                    esc(&chart.x_param),
                    esc(chart.series_param.as_deref().unwrap_or("-")),
                    esc(&chart.value_path),
                ));
            }
            body.push_str("</table><h2>Deployments</h2><table><tr><th>environment</th><th>version</th><th>active</th></tr>");
            for deployment in control_.list_deployments(Some(system.id)) {
                body.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                    esc(&deployment.environment),
                    esc(&deployment.version),
                    deployment.active,
                ));
            }
            body.push_str("</table>");
            let _ = token;
            Ok(page(&format!("System {}", system.name), &body))
        })();
        result.unwrap_or_else(ui_error)
    });

    // Project page.
    let control_ = Arc::clone(c);
    router.get("/ui/projects/:id", move |req, p| {
        let result = (|| {
            authed_ui(&control_, req)?;
            let project = control_.get_project(param_id(p, "id")?)?;
            let token = token_of(req);
            let mut body = format!(
                "<h1>Project: {}</h1><p>{}</p><h2>Experiments</h2>\
                 <table><tr><th>name</th><th>description</th><th>evaluations</th><th>archived</th></tr>",
                esc(&project.name),
                esc(&project.description)
            );
            for experiment in control_.list_experiments(Some(project.id)) {
                let evaluations = control_.list_evaluations(Some(experiment.id)).len();
                body.push_str(&format!(
                    "<tr><td><a href=\"/ui/experiments/{id}?token={token}\">{name}</a></td><td>{desc}</td><td>{evaluations}</td><td>{archived}</td></tr>",
                    id = experiment.id,
                    name = esc(&experiment.name),
                    desc = esc(&experiment.description),
                    archived = experiment.archived,
                ));
            }
            body.push_str("</table>");
            Ok(page(&format!("Project {}", project.name), &body))
        })();
        result.unwrap_or_else(ui_error)
    });

    // Experiment page (paper Fig. 3a).
    let control_ = Arc::clone(c);
    router.get("/ui/experiments/:id", move |req, p| {
        let result = (|| {
            authed_ui(&control_, req)?;
            let experiment = control_.get_experiment(param_id(p, "id")?)?;
            let token = token_of(req);
            let mut body = format!(
                "<h1>Experiment: {}</h1><p>{}</p><h2>Parameter assignment</h2><pre>{}</pre>",
                esc(&experiment.name),
                esc(&experiment.description),
                esc(&experiment.assignments.to_json().to_pretty_string()),
            );
            body.push_str("<h2>Evaluations</h2><table><tr><th>created</th><th>jobs</th><th>progress</th></tr>");
            for evaluation in control_.list_evaluations(Some(experiment.id)) {
                let status = control_.evaluation_status(evaluation.id)?;
                body.push_str(&format!(
                    "<tr><td><a href=\"/ui/evaluations/{id}?token={token}\">{created}</a></td><td>{jobs}</td>\
                     <td><div class=\"progress\"><div style=\"width:{pct}%\"></div></div> {pct}%</td></tr>",
                    id = evaluation.id,
                    created = chronos_util::clock::format_timestamp(evaluation.created_at),
                    jobs = status.total(),
                    pct = status.progress_percent(),
                ));
            }
            body.push_str("</table>");
            Ok(page(&format!("Experiment {}", experiment.name), &body))
        })();
        result.unwrap_or_else(ui_error)
    });

    // Evaluation page (paper Fig. 3b + 3d).
    let control_ = Arc::clone(c);
    router.get("/ui/evaluations/:id", move |req, p| {
        let result = (|| {
            authed_ui(&control_, req)?;
            let evaluation = control_.get_evaluation(param_id(p, "id")?)?;
            let status = control_.evaluation_status(evaluation.id)?;
            let experiment = control_.get_experiment(evaluation.experiment_id)?;
            let system = control_.get_system(experiment.system_id)?;
            let token = token_of(req);
            let mut body = format!(
                "<h1>Evaluation of {}</h1>\
                 <p>{} jobs — {} scheduled, {} running, {} finished, {} aborted, {} failed{quarantined}{remaining}</p>\
                 <div class=\"progress\"><div style=\"width:{pct}%\"></div></div><p>{pct}% settled</p>",
                esc(&experiment.name),
                status.total(),
                status.scheduled,
                status.running,
                status.finished,
                status.aborted,
                status.failed,
                quarantined = match status.quarantined {
                    0 => String::new(),
                    q => format!(", {q} quarantined"),
                },
                remaining = match status.remaining {
                    Some(r) if r > 0 => format!(", {r} points not yet materialized"),
                    _ => String::new(),
                },
                pct = status.progress_percent(),
            );
            body.push_str("<h2>Jobs</h2><table><tr><th>job</th><th>parameters</th><th>state</th><th>progress</th><th>attempts</th></tr>");
            for job in control_.list_jobs(evaluation.id)? {
                body.push_str(&format!(
                    "<tr><td><a href=\"/ui/jobs/{id}?token={token}\">{id_short}</a></td><td><code>{params}</code></td>\
                     <td>{state}</td><td>{progress}%</td><td>{attempts}</td></tr>",
                    id = job.id,
                    id_short = &job.id.to_base32()[18..],
                    params = esc(&job.parameters.to_string()),
                    state = state_badge(job.state),
                    progress = job.progress,
                    attempts = job.attempts,
                ));
            }
            body.push_str("</table>");
            // Inline chart renders (Fig. 3d).
            if !system.charts.is_empty() && status.finished > 0 {
                body.push_str("<h2>Result analysis</h2>");
                let registry = ChartRegistry::with_builtins();
                for spec in &system.charts {
                    let data = analysis::chart_data(&control_, evaluation.id, spec)?;
                    if !data.is_empty() {
                        body.push_str(&registry.render_svg(spec, &data)?);
                    }
                }
            }
            Ok(page("Evaluation", &body))
        })();
        result.unwrap_or_else(ui_error)
    });

    // Job page (paper Fig. 3c).
    let control_ = Arc::clone(c);
    router.get("/ui/jobs/:id", move |req, p| {
        let result = (|| {
            authed_ui(&control_, req)?;
            let job = control_.get_job(param_id(p, "id")?)?;
            let mut body = format!(
                "<h1>Job {}</h1><p>state: {} &middot; progress: {}% &middot; attempts: {}</p>\
                 <div class=\"progress\"><div style=\"width:{}%\"></div></div>\
                 <h2>Parameters</h2><pre>{}</pre>",
                job.id,
                state_badge(job.state),
                job.progress,
                job.attempts,
                job.progress,
                esc(&job.parameters.to_pretty_string()),
            );
            if let Some(reason) = &job.failure {
                body.push_str(&format!("<p><b>failure:</b> {}</p>", esc(reason)));
            }
            body.push_str(
                "<h2>Timeline</h2><table><tr><th>time</th><th>event</th><th>message</th></tr>",
            );
            for event in &job.timeline {
                body.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                    chronos_util::clock::format_timestamp(event.at),
                    esc(&event.kind),
                    esc(&event.message),
                ));
            }
            body.push_str("</table><h2>Log</h2>");
            body.push_str(&format!(
                "<pre>{}</pre>",
                esc(if job.log.is_empty() { "(no output yet)" } else { &job.log })
            ));
            if let Some(result_id) = job.result_id {
                let result = control_.get_result(result_id)?;
                body.push_str(&format!(
                    "<h2>Result</h2><pre>{}</pre><p>archive: {} bytes</p>",
                    esc(&result.data.to_pretty_string()),
                    result.archive.len(),
                ));
            }
            Ok(page("Job detail", &body))
        })();
        result.unwrap_or_else(ui_error)
    });
}
