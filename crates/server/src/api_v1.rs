//! The current API version: `/api/v1`.
//!
//! Every request body and path parameter goes through the typed contract
//! in `chronos-api`: DTO decoders reject missing/ill-typed required fields
//! with a 400 envelope, and every response body is produced by a DTO
//! encoder (directly or via the model's `to_json` delegation), so this
//! module never touches raw `Value` fields.

use std::sync::Arc;

use chronos_api::{extract, v1, ApiVersion, WireEncode, WireError};
use chronos_core::analysis;
use chronos_core::archive::archive_project;
use chronos_core::auth::{Role, User};
use chronos_core::params::ParamAssignments;
use chronos_core::{ChronosControl, CoreError, CoreResult};
use chronos_http::{Request, Response, RouteParams, Router, ServerMetrics, Status};
use chronos_util::Id;

use crate::{deadline_guard, error_response};

/// Header carrying the session token (defined by the wire contract).
pub use chronos_api::TOKEN_HEADER;

fn respond(result: CoreResult<Response>) -> Response {
    result.unwrap_or_else(error_response)
}

/// Maps a contract violation to the 400 error path.
fn invalid(error: WireError) -> CoreError {
    CoreError::Invalid(error.to_string())
}

/// Decodes the request body as a typed DTO (400 on malformed JSON or a
/// missing/ill-typed required field).
fn body<T: chronos_api::WireDecode>(req: &Request) -> CoreResult<T> {
    extract::body(req).map_err(invalid)
}

/// A path parameter that must be an entity id.
fn param_id(params: &RouteParams, name: &'static str) -> CoreResult<Id> {
    extract::path_id(params, name).map_err(invalid)
}

fn authed(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let token = req
        .headers
        .get(TOKEN_HEADER)
        .or_else(|| req.headers.get("Authorization").and_then(|v| v.strip_prefix("Bearer ")))
        .ok_or_else(|| CoreError::Forbidden("missing session token".into()))?;
    control.authenticate(token)
}

fn writer(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let user = authed(control, req)?;
    if !user.role.can_write() {
        return Err(CoreError::Forbidden("viewer role cannot modify".into()));
    }
    Ok(user)
}

fn admin(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let user = authed(control, req)?;
    if !user.role.can_admin() {
        return Err(CoreError::Forbidden("admin role required".into()));
    }
    Ok(user)
}

/// Mounts all v1 routes. Handlers doing expensive store or archive work
/// re-check the caller's `X-Chronos-Deadline-Ms` budget (via
/// [`deadline_guard`]) before starting it; `metrics` counts rejections.
pub fn mount(router: &mut Router, control: Arc<ChronosControl>, metrics: Arc<ServerMetrics>) {
    let c = &control;
    let m = &metrics;

    router.get("/api/v1/version", |_req, _p| Response::json(&ApiVersion::V1.version_body()));

    // ----- auth -----
    let control_ = Arc::clone(c);
    router.post("/api/v1/login", move |req, _p| {
        respond((|| {
            let login: v1::LoginRequest = body(req)?;
            let token = control_.login(&login.username, &login.password)?;
            Ok(Response::json(&v1::LoginResponse { token }.to_value()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/logout", move |req, _p| {
        let revoked = req.headers.get(TOKEN_HEADER).map(|t| control_.logout(t)).unwrap_or(false);
        Response::json(&v1::LogoutResponse { revoked }.to_value())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/me", move |req, _p| {
        respond(authed(&control_, req).map(|u| Response::json(&u.to_public_json())))
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/users", move |req, _p| {
        respond((|| {
            admin(&control_, req)?;
            let create: v1::CreateUserRequest = body(req)?;
            // An absent role defaults to member; a present but unknown
            // name is a 400, not a silent downgrade.
            let role = match &create.role {
                None => Role::Member,
                Some(name) => Role::parse(name)
                    .ok_or_else(|| CoreError::Invalid(format!("invalid role {name:?}")))?,
            };
            let user = control_.create_user(&create.username, &create.password, role)?;
            Ok(Response::json_status(Status::CREATED, &user.to_public_json()))
        })())
    });

    // ----- systems -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/systems", move |req, _p| {
        respond((|| {
            authed(&control_, req)?;
            let systems: Vec<_> = control_.list_systems().iter().map(|s| s.to_json()).collect();
            Ok(Response::json(&chronos_json::Value::Array(systems)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/systems", move |req, _p| {
        respond((|| {
            admin(&control_, req)?;
            // The system definition document is owned by the params/charts
            // layer; it is forwarded verbatim rather than decoded here.
            let definition = extract::json_body(req).map_err(invalid)?;
            let system = control_.register_system_from_definition(&definition)?;
            Ok(Response::json_status(Status::CREATED, &system.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/systems/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let system = control_.get_system(param_id(p, "id")?)?;
            Ok(Response::json(&system.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/systems/:id/deployments", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let deployments: Vec<_> = control_
                .list_deployments(Some(param_id(p, "id")?))
                .iter()
                .map(|d| d.to_json())
                .collect();
            Ok(Response::json(&chronos_json::Value::Array(deployments)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/systems/:id/deployments", move |req, p| {
        respond((|| {
            admin(&control_, req)?;
            let create: v1::CreateDeploymentRequest = body(req)?;
            let deployment = control_.create_deployment(
                param_id(p, "id")?,
                &create.environment,
                &create.version,
            )?;
            Ok(Response::json_status(Status::CREATED, &deployment.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/deployments/:id/active", move |req, p| {
        respond((|| {
            admin(&control_, req)?;
            let set: v1::SetDeploymentActiveRequest = body(req)?;
            let deployment = control_.set_deployment_active(param_id(p, "id")?, set.active)?;
            Ok(Response::json(&deployment.to_json()))
        })())
    });

    // ----- projects -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/projects", move |req, _p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let projects: Vec<_> = control_
                .list_projects()
                .iter()
                .filter(|p| user.role.can_admin() || p.members.contains(&user.id))
                .map(|p| p.to_json())
                .collect();
            Ok(Response::json(&chronos_json::Value::Array(projects)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects", move |req, _p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let create: v1::CreateProjectRequest = body(req)?;
            let project = control_.create_project(&create.name, &create.description, user.id)?;
            Ok(Response::json_status(Status::CREATED, &project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/projects/:id", move |req, p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let project = control_.require_project_access(param_id(p, "id")?, &user)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/members", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let add: v1::AddProjectMemberRequest = body(req)?;
            let project = control_.add_project_member(project_id, add.user_id)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/archive", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let project = control_.archive_project(project_id)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/projects/:id/archive.zip", move |req, p| {
        // Building a full project archive walks every evaluation; honor
        // the caller's budget before starting.
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            let user = authed(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let bytes = archive_project(&control_, project_id)?;
            Ok(Response::bytes(Status::OK, "application/zip", bytes))
        })())
    });

    // ----- experiments -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/projects/:id/experiments", move |req, p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let experiments: Vec<_> =
                control_.list_experiments(Some(project_id)).iter().map(|e| e.to_json()).collect();
            Ok(Response::json(&chronos_json::Value::Array(experiments)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/experiments", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let create: v1::CreateExperimentRequest = body(req)?;
            let assignments = create
                .parameters
                .as_ref()
                .map(ParamAssignments::from_json)
                .transpose()?
                .unwrap_or_default();
            let strategy = create
                .strategy
                .as_ref()
                .map(chronos_core::Strategy::from_dto)
                .unwrap_or(chronos_core::Strategy::Grid);
            let experiment = control_.create_experiment_with_options(
                project_id,
                create.system_id,
                &create.name,
                &create.description,
                assignments,
                strategy,
                create.budget,
            )?;
            Ok(Response::json_status(Status::CREATED, &experiment.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/experiments/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let id = param_id(p, "id")?;
            let experiment = control_.get_experiment(id)?;
            let mut detail = experiment.to_json();
            // Appended only once a regression scan has run, so bodies of
            // never-scanned experiments stay byte-identical to before the
            // field existed.
            if let Some(flag) = control_.regression_flag(id) {
                detail.set(
                    "regressions",
                    v1::ExperimentRegressionFlag {
                        value_path: flag.value_path,
                        change_points: flag.change_points,
                        regressed: flag.regressed,
                        runs: flag.runs,
                        scanned_at: flag.scanned_at,
                    }
                    .to_value(),
                );
            }
            Ok(Response::json(&detail))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/experiments/:id/archive", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let experiment = control_.archive_experiment(param_id(p, "id")?)?;
            Ok(Response::json(&experiment.to_json()))
        })())
    });

    // Performance trend across an experiment's evaluations (QA over
    // subsequent change sets, paper §3).
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/experiments/:id/trend", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let value_path =
                req.query_param("path").unwrap_or_else(|| "/throughput_ops_per_sec".to_string());
            let threshold =
                req.query_param("threshold").and_then(|t| t.parse::<f64>().ok()).unwrap_or(0.10);
            let trend =
                analysis::experiment_trend(&control_, param_id(p, "id")?, &value_path, threshold)?;
            Ok(Response::json(&trend))
        })())
    });

    // Automatic regression detection: seeded change-point analysis over
    // the experiment's per-evaluation metric history (columnar store).
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/experiments/:id/regressions", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let value_path =
                req.query_param("path").unwrap_or_else(|| "/throughput_ops_per_sec".to_string());
            let defaults = chronos_core::ChangePointConfig::default();
            let config = chronos_core::ChangePointConfig {
                seed: req.query_param("seed").and_then(|s| s.parse().ok()).unwrap_or(defaults.seed),
                permutations: req
                    .query_param("permutations")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(defaults.permutations),
                significance: req
                    .query_param("significance")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(defaults.significance),
                min_segment: req
                    .query_param("min_segment")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(defaults.min_segment),
            };
            let report = analysis::experiment_regressions(
                &control_,
                param_id(p, "id")?,
                &value_path,
                config,
            )?;
            let response = v1::RegressionsResponse {
                experiment_id: report.experiment_id,
                value_path: report.value_path,
                seed: report.config.seed,
                permutations: report.config.permutations as u64,
                significance: report.config.significance,
                min_segment: report.config.min_segment as u64,
                runs: report
                    .runs
                    .iter()
                    .map(|r| v1::RegressionRunDto {
                        evaluation_id: r.evaluation_id,
                        created_at: r.created_at,
                        jobs_measured: r.jobs_measured,
                        mean: r.mean,
                    })
                    .collect(),
                change_points: report
                    .change_points
                    .iter()
                    .map(|cp| v1::RegressionChangePointDto {
                        index: cp.index as u64,
                        before_mean: cp.before_mean,
                        after_mean: cp.after_mean,
                        p_value: cp.p_value,
                    })
                    .collect(),
                regressed: report.regressed,
            };
            Ok(Response::json(&response.to_value()))
        })())
    });

    // ----- evaluations -----
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.post("/api/v1/experiments/:id/evaluations", move |req, p| {
        // Evaluation creation validates the parameter space and commits
        // the plan; don't start with a spent budget.
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            writer(&control_, req)?;
            let evaluation = control_.create_evaluation(param_id(p, "id")?)?;
            Ok(Response::json_status(Status::CREATED, &evaluation.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/experiments/:id/evaluations", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let evaluations: Vec<_> = control_
                .list_evaluations(Some(param_id(p, "id")?))
                .iter()
                .map(|e| e.to_json())
                .collect();
            Ok(Response::json(&chronos_json::Value::Array(evaluations)))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let id = param_id(p, "id")?;
            let evaluation = control_.get_evaluation(id)?;
            let status = control_.evaluation_status(id)?;
            let mut detail = evaluation.to_json();
            detail.set("status", status.to_json());
            Ok(Response::json(&detail))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id/jobs", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            // Listing view: omit the potentially large log and timeline.
            let jobs: Vec<_> = control_
                .list_jobs(param_id(p, "id")?)?
                .iter()
                .map(|j| j.to_json_summary())
                .collect();
            Ok(Response::json(&chronos_json::Value::Array(jobs)))
        })())
    });

    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/evaluations/:id/summary", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let summary = analysis::summary_table(&control_, param_id(p, "id")?)?;
            Ok(Response::json(&summary))
        })())
    });

    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/evaluations/:id/summary.csv", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let csv = analysis::summary_csv(&control_, param_id(p, "id")?)?;
            Ok(Response::bytes(Status::OK, "text/csv; charset=utf-8", csv.into_bytes()))
        })())
    });

    // Chart renders: /charts/:index.svg and .txt (paper Fig. 3d).
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/evaluations/:id/charts/:chart", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let evaluation_id = param_id(p, "id")?;
            let chart_ref = extract::path_str(p, "chart").map_err(invalid)?;
            let (index_str, format) = chart_ref
                .rsplit_once('.')
                .ok_or_else(|| CoreError::Invalid("chart ref must be <index>.<svg|txt>".into()))?;
            let index: usize =
                index_str.parse().map_err(|_| CoreError::Invalid("bad chart index".into()))?;
            let evaluation = control_.get_evaluation(evaluation_id)?;
            let experiment = control_.get_experiment(evaluation.experiment_id)?;
            let system = control_.get_system(experiment.system_id)?;
            let spec =
                system.charts.get(index).ok_or_else(|| CoreError::not_found("chart", index))?;
            let data = analysis::chart_data(&control_, evaluation_id, spec)?;
            let registry = chronos_core::charts::ChartRegistry::with_builtins();
            match format {
                "svg" => Ok(Response::bytes(
                    Status::OK,
                    "image/svg+xml",
                    registry.render_svg(spec, &data)?.into_bytes(),
                )),
                "txt" => Ok(Response::text(Status::OK, registry.render_ascii(spec, &data)?)),
                other => Err(CoreError::Invalid(format!("unknown chart format {other:?}"))),
            }
        })())
    });

    // ----- jobs -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/jobs/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let job = control_.get_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/jobs/:id/log", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let job = control_.get_job(param_id(p, "id")?)?;
            Ok(Response::text(Status::OK, job.log))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/jobs/:id/abort", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let job = control_.abort_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/jobs/:id/reschedule", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let job = control_.reschedule_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    // ----- agent protocol -----
    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/claim", move |req, _p| {
        respond((|| {
            authed(&control_, req)?;
            let claim: v1::ClaimRequest = body(req)?;
            match control_.claim_next_job(claim.deployment_id, claim.idempotency_key.as_deref())? {
                Some(job) => Ok(Response::json(&job.to_json())),
                None => Ok(Response::status(Status::NO_CONTENT)),
            }
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/heartbeat", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let heartbeat: v1::HeartbeatRequest = body(req)?;
            let job =
                control_.heartbeat(param_id(p, "id")?, heartbeat.progress, heartbeat.attempt)?;
            let ack = v1::HeartbeatAck { state: job.state, progress: job.progress };
            Ok(Response::json(&ack.to_value()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/log", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let text = String::from_utf8_lossy(&req.body);
            control_.append_log(param_id(p, "id")?, &text)?;
            Ok(Response::status(Status::NO_CONTENT))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/result", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let upload: v1::UploadResultRequest = body(req)?;
            let result = control_.finish_job(
                param_id(p, "id")?,
                upload.data,
                upload.archive,
                upload.attempt,
                upload.idempotency_key.as_deref(),
            )?;
            Ok(Response::json_status(Status::CREATED, &result.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/fail", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let fail: v1::FailRequest = body(req)?;
            let job = control_.fail_job(param_id(p, "id")?, &fail.reason, fail.attempt)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    // ----- results -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/results/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let result = control_.get_result(param_id(p, "id")?)?;
            Ok(Response::json(&result.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/results/:id/archive.zip", move |req, p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let result = control_.get_result(param_id(p, "id")?)?;
            Ok(Response::bytes(Status::OK, "application/zip", result.archive))
        })())
    });

    // ----- integration hooks -----
    // Build-bot trigger (paper §2.2): "schedule an evaluation which is
    // caused by a successful build of the SuE's build bot".
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.post("/api/v1/trigger/build", move |req, _p| {
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            writer(&control_, req)?;
            let trigger: v1::TriggerBuildRequest = body(req)?;
            let evaluation = control_.create_evaluation(trigger.experiment_id)?;
            // Planned size of the run: lazy evaluations have no job
            // documents yet, so report the status total instead.
            let jobs = control_.evaluation_status(evaluation.id)?.total();
            let response = v1::TriggerBuildResponse {
                jobs,
                evaluation: evaluation.to_json(),
                build: trigger.build,
            };
            Ok(Response::json_status(Status::CREATED, &response.to_value()))
        })())
    });

    // Stats: job states across the installation (monitoring dashboards).
    let control_ = Arc::clone(c);
    let metrics_ = Arc::clone(m);
    router.get("/api/v1/stats", move |req, _p| {
        // Walks every evaluation in the installation.
        if let Some(busy) = deadline_guard(req, &metrics_) {
            return busy;
        }
        respond((|| {
            authed(&control_, req)?;
            let mut stats = v1::StatsResponse {
                scheduled: 0,
                running: 0,
                finished: 0,
                aborted: 0,
                failed: 0,
                quarantined: 0,
                remaining_space: 0,
                systems: control_.list_systems().len(),
                projects: control_.list_projects().len(),
            };
            for evaluation in control_.list_evaluations(None) {
                let status = control_.evaluation_status(evaluation.id)?;
                stats.scheduled += status.scheduled;
                stats.running += status.running;
                stats.finished += status.finished;
                stats.aborted += status.aborted;
                stats.failed += status.failed;
                stats.quarantined += status.quarantined;
                stats.remaining_space += status.remaining.unwrap_or(0) as u64;
            }
            Ok(Response::json(&stats.to_value()))
        })())
    });
}
