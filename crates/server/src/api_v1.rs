//! The current API version: `/api/v1`.

use std::sync::Arc;

use chronos_core::analysis;
use chronos_core::archive::archive_project;
use chronos_core::auth::{Role, User};
use chronos_core::params::ParamAssignments;
use chronos_core::{ChronosControl, CoreError, CoreResult};
use chronos_http::{Request, Response, RouteParams, Router, Status};
use chronos_json::{obj, Value};
use chronos_util::Id;

use crate::error_response;

/// Header carrying the session token.
pub const TOKEN_HEADER: &str = "X-Chronos-Token";

fn respond(result: CoreResult<Response>) -> Response {
    result.unwrap_or_else(error_response)
}

fn authed(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let token = req
        .headers
        .get(TOKEN_HEADER)
        .or_else(|| req.headers.get("Authorization").and_then(|v| v.strip_prefix("Bearer ")))
        .ok_or_else(|| CoreError::Forbidden("missing session token".into()))?;
    control.authenticate(token)
}

fn writer(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let user = authed(control, req)?;
    if !user.role.can_write() {
        return Err(CoreError::Forbidden("viewer role cannot modify".into()));
    }
    Ok(user)
}

fn admin(control: &ChronosControl, req: &Request) -> CoreResult<User> {
    let user = authed(control, req)?;
    if !user.role.can_admin() {
        return Err(CoreError::Forbidden("admin role required".into()));
    }
    Ok(user)
}

fn body_json(req: &Request) -> CoreResult<Value> {
    req.json().map_err(|e| CoreError::Invalid(format!("bad JSON body: {e}")))
}

fn param_id(params: &RouteParams, name: &str) -> CoreResult<Id> {
    params
        .get(name)
        .and_then(|s| Id::parse_base32(s).ok())
        .ok_or_else(|| CoreError::Invalid(format!("invalid :{name} id")))
}

fn str_field(body: &Value, field: &str) -> CoreResult<String> {
    body.get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| CoreError::Invalid(format!("missing field {field:?}")))
}

/// A user document with the password hash redacted.
fn user_json(user: &User) -> Value {
    let mut j = user.to_json();
    if let Some(map) = j.as_object_mut() {
        map.remove("password_hash");
    }
    j
}

/// Mounts all v1 routes.
pub fn mount(router: &mut Router, control: Arc<ChronosControl>) {
    let c = &control;

    router.get("/api/v1/version", |_req, _p| {
        Response::json(&obj! {"version" => "v1", "service" => "chronos-control"})
    });

    // ----- auth -----
    let control_ = Arc::clone(c);
    router.post("/api/v1/login", move |req, _p| {
        respond((|| {
            let body = body_json(req)?;
            let token =
                control_.login(&str_field(&body, "username")?, &str_field(&body, "password")?)?;
            Ok(Response::json(&obj! {"token" => token}))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/logout", move |req, _p| {
        let revoked = req.headers.get(TOKEN_HEADER).map(|t| control_.logout(t)).unwrap_or(false);
        Response::json(&obj! {"revoked" => revoked})
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/me", move |req, _p| {
        respond(authed(&control_, req).map(|u| Response::json(&user_json(&u))))
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/users", move |req, _p| {
        respond((|| {
            admin(&control_, req)?;
            let body = body_json(req)?;
            let role = body
                .get("role")
                .and_then(Value::as_str)
                .and_then(Role::parse)
                .unwrap_or(Role::Member);
            let user = control_.create_user(
                &str_field(&body, "username")?,
                &str_field(&body, "password")?,
                role,
            )?;
            Ok(Response::json_status(Status::CREATED, &user_json(&user)))
        })())
    });

    // ----- systems -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/systems", move |req, _p| {
        respond((|| {
            authed(&control_, req)?;
            let systems: Vec<Value> = control_.list_systems().iter().map(|s| s.to_json()).collect();
            Ok(Response::json(&Value::Array(systems)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/systems", move |req, _p| {
        respond((|| {
            admin(&control_, req)?;
            let body = body_json(req)?;
            let system = control_.register_system_from_definition(&body)?;
            Ok(Response::json_status(Status::CREATED, &system.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/systems/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let system = control_.get_system(param_id(p, "id")?)?;
            Ok(Response::json(&system.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/systems/:id/deployments", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let deployments: Vec<Value> = control_
                .list_deployments(Some(param_id(p, "id")?))
                .iter()
                .map(|d| d.to_json())
                .collect();
            Ok(Response::json(&Value::Array(deployments)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/systems/:id/deployments", move |req, p| {
        respond((|| {
            admin(&control_, req)?;
            let body = body_json(req)?;
            let deployment = control_.create_deployment(
                param_id(p, "id")?,
                body.get("environment").and_then(Value::as_str).unwrap_or("default"),
                body.get("version").and_then(Value::as_str).unwrap_or(""),
            )?;
            Ok(Response::json_status(Status::CREATED, &deployment.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/deployments/:id/active", move |req, p| {
        respond((|| {
            admin(&control_, req)?;
            let body = body_json(req)?;
            let active = body
                .get("active")
                .and_then(Value::as_bool)
                .ok_or_else(|| CoreError::Invalid("missing boolean \"active\"".into()))?;
            let deployment = control_.set_deployment_active(param_id(p, "id")?, active)?;
            Ok(Response::json(&deployment.to_json()))
        })())
    });

    // ----- projects -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/projects", move |req, _p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let projects: Vec<Value> = control_
                .list_projects()
                .iter()
                .filter(|p| user.role.can_admin() || p.members.contains(&user.id))
                .map(|p| p.to_json())
                .collect();
            Ok(Response::json(&Value::Array(projects)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects", move |req, _p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let body = body_json(req)?;
            let project = control_.create_project(
                &str_field(&body, "name")?,
                body.get("description").and_then(Value::as_str).unwrap_or(""),
                user.id,
            )?;
            Ok(Response::json_status(Status::CREATED, &project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/projects/:id", move |req, p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let project = control_.require_project_access(param_id(p, "id")?, &user)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/members", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let body = body_json(req)?;
            let member = Id::parse_base32(&str_field(&body, "user_id")?)
                .map_err(|_| CoreError::Invalid("bad user_id".into()))?;
            let project = control_.add_project_member(project_id, member)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/archive", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let project = control_.archive_project(project_id)?;
            Ok(Response::json(&project.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/projects/:id/archive.zip", move |req, p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let bytes = archive_project(&control_, project_id)?;
            Ok(Response::bytes(Status::OK, "application/zip", bytes))
        })())
    });

    // ----- experiments -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/projects/:id/experiments", move |req, p| {
        respond((|| {
            let user = authed(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let experiments: Vec<Value> =
                control_.list_experiments(Some(project_id)).iter().map(|e| e.to_json()).collect();
            Ok(Response::json(&Value::Array(experiments)))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/projects/:id/experiments", move |req, p| {
        respond((|| {
            let user = writer(&control_, req)?;
            let project_id = param_id(p, "id")?;
            control_.require_project_access(project_id, &user)?;
            let body = body_json(req)?;
            let system_id = Id::parse_base32(&str_field(&body, "system_id")?)
                .map_err(|_| CoreError::Invalid("bad system_id".into()))?;
            let assignments = body
                .get("parameters")
                .map(ParamAssignments::from_json)
                .transpose()?
                .unwrap_or_default();
            let experiment = control_.create_experiment(
                project_id,
                system_id,
                &str_field(&body, "name")?,
                body.get("description").and_then(Value::as_str).unwrap_or(""),
                assignments,
            )?;
            Ok(Response::json_status(Status::CREATED, &experiment.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/experiments/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let experiment = control_.get_experiment(param_id(p, "id")?)?;
            Ok(Response::json(&experiment.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/experiments/:id/archive", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let experiment = control_.archive_experiment(param_id(p, "id")?)?;
            Ok(Response::json(&experiment.to_json()))
        })())
    });

    // Performance trend across an experiment's evaluations (QA over
    // subsequent change sets, paper §3).
    let control_ = Arc::clone(c);
    router.get("/api/v1/experiments/:id/trend", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let value_path =
                req.query_param("path").unwrap_or_else(|| "/throughput_ops_per_sec".to_string());
            let threshold =
                req.query_param("threshold").and_then(|t| t.parse::<f64>().ok()).unwrap_or(0.10);
            let trend =
                analysis::experiment_trend(&control_, param_id(p, "id")?, &value_path, threshold)?;
            Ok(Response::json(&trend))
        })())
    });

    // ----- evaluations -----
    let control_ = Arc::clone(c);
    router.post("/api/v1/experiments/:id/evaluations", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let evaluation = control_.create_evaluation(param_id(p, "id")?)?;
            Ok(Response::json_status(Status::CREATED, &evaluation.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/experiments/:id/evaluations", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let evaluations: Vec<Value> = control_
                .list_evaluations(Some(param_id(p, "id")?))
                .iter()
                .map(|e| e.to_json())
                .collect();
            Ok(Response::json(&Value::Array(evaluations)))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let id = param_id(p, "id")?;
            let evaluation = control_.get_evaluation(id)?;
            let status = control_.evaluation_status(id)?;
            let mut j = evaluation.to_json();
            j.set("status", status.to_json());
            Ok(Response::json(&j))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id/jobs", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let jobs: Vec<Value> = control_
                .list_jobs(param_id(p, "id")?)?
                .iter()
                .map(|j| {
                    // Listing view: omit the potentially large log.
                    let mut doc = j.to_json();
                    if let Some(map) = doc.as_object_mut() {
                        map.remove("log");
                        map.remove("timeline");
                    }
                    doc
                })
                .collect();
            Ok(Response::json(&Value::Array(jobs)))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id/summary", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let summary = analysis::summary_table(&control_, param_id(p, "id")?)?;
            Ok(Response::json(&summary))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id/summary.csv", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let csv = analysis::summary_csv(&control_, param_id(p, "id")?)?;
            Ok(Response::bytes(Status::OK, "text/csv; charset=utf-8", csv.into_bytes()))
        })())
    });

    // Chart renders: /charts/:index.svg and .txt (paper Fig. 3d).
    let control_ = Arc::clone(c);
    router.get("/api/v1/evaluations/:id/charts/:chart", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let evaluation_id = param_id(p, "id")?;
            let chart_ref = p.get("chart").unwrap_or_default();
            let (index_str, format) = chart_ref
                .rsplit_once('.')
                .ok_or_else(|| CoreError::Invalid("chart ref must be <index>.<svg|txt>".into()))?;
            let index: usize =
                index_str.parse().map_err(|_| CoreError::Invalid("bad chart index".into()))?;
            let evaluation = control_.get_evaluation(evaluation_id)?;
            let experiment = control_.get_experiment(evaluation.experiment_id)?;
            let system = control_.get_system(experiment.system_id)?;
            let spec =
                system.charts.get(index).ok_or_else(|| CoreError::not_found("chart", index))?;
            let data = analysis::chart_data(&control_, evaluation_id, spec)?;
            let registry = chronos_core::charts::ChartRegistry::with_builtins();
            match format {
                "svg" => Ok(Response::bytes(
                    Status::OK,
                    "image/svg+xml",
                    registry.render_svg(spec, &data)?.into_bytes(),
                )),
                "txt" => Ok(Response::text(Status::OK, registry.render_ascii(spec, &data)?)),
                other => Err(CoreError::Invalid(format!("unknown chart format {other:?}"))),
            }
        })())
    });

    // ----- jobs -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/jobs/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let job = control_.get_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/jobs/:id/log", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let job = control_.get_job(param_id(p, "id")?)?;
            Ok(Response::text(Status::OK, job.log))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/jobs/:id/abort", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let job = control_.abort_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/jobs/:id/reschedule", move |req, p| {
        respond((|| {
            writer(&control_, req)?;
            let job = control_.reschedule_job(param_id(p, "id")?)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    // ----- agent protocol -----
    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/claim", move |req, _p| {
        respond((|| {
            authed(&control_, req)?;
            let body = body_json(req)?;
            let deployment_id = Id::parse_base32(&str_field(&body, "deployment_id")?)
                .map_err(|_| CoreError::Invalid("bad deployment_id".into()))?;
            let key = body.get("idempotency_key").and_then(Value::as_str);
            match control_.claim_next_job(deployment_id, key)? {
                Some(job) => Ok(Response::json(&job.to_json())),
                None => Ok(Response::status(Status::NO_CONTENT)),
            }
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/heartbeat", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let body = body_json(req).unwrap_or(Value::Null);
            let progress = body.get("progress").and_then(Value::as_u64).map(|p| p as u8);
            let attempt = body.get("attempt").and_then(Value::as_u64).map(|a| a as u32);
            let job = control_.heartbeat(param_id(p, "id")?, progress, attempt)?;
            Ok(Response::json(
                &obj! {"state" => job.state.as_str(), "progress" => job.progress as i64},
            ))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/log", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let text = String::from_utf8_lossy(&req.body);
            control_.append_log(param_id(p, "id")?, &text)?;
            Ok(Response::status(Status::NO_CONTENT))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/result", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let body = body_json(req)?;
            let data = body
                .get("data")
                .cloned()
                .ok_or_else(|| CoreError::Invalid("result needs \"data\"".into()))?;
            let archive = body
                .get("archive_b64")
                .and_then(Value::as_str)
                .map(|b64| {
                    chronos_util::encode::base64_decode(b64)
                        .ok_or_else(|| CoreError::Invalid("bad archive_b64".into()))
                })
                .transpose()?
                .unwrap_or_default();
            let attempt = body.get("attempt").and_then(Value::as_u64).map(|a| a as u32);
            let key = body.get("idempotency_key").and_then(Value::as_str);
            let result = control_.finish_job(param_id(p, "id")?, data, archive, attempt, key)?;
            Ok(Response::json_status(Status::CREATED, &result.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.post("/api/v1/agent/jobs/:id/fail", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let body = body_json(req).unwrap_or(Value::Null);
            let reason =
                body.get("reason").and_then(Value::as_str).unwrap_or("agent reported failure");
            let attempt = body.get("attempt").and_then(Value::as_u64).map(|a| a as u32);
            let job = control_.fail_job(param_id(p, "id")?, reason, attempt)?;
            Ok(Response::json(&job.to_json()))
        })())
    });

    // ----- results -----
    let control_ = Arc::clone(c);
    router.get("/api/v1/results/:id", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let result = control_.get_result(param_id(p, "id")?)?;
            Ok(Response::json(&result.to_json()))
        })())
    });

    let control_ = Arc::clone(c);
    router.get("/api/v1/results/:id/archive.zip", move |req, p| {
        respond((|| {
            authed(&control_, req)?;
            let result = control_.get_result(param_id(p, "id")?)?;
            Ok(Response::bytes(Status::OK, "application/zip", result.archive))
        })())
    });

    // ----- integration hooks -----
    // Build-bot trigger (paper §2.2): "schedule an evaluation which is
    // caused by a successful build of the SuE's build bot".
    let control_ = Arc::clone(c);
    router.post("/api/v1/trigger/build", move |req, _p| {
        respond((|| {
            writer(&control_, req)?;
            let body = body_json(req)?;
            let experiment_id = Id::parse_base32(&str_field(&body, "experiment_id")?)
                .map_err(|_| CoreError::Invalid("bad experiment_id".into()))?;
            let build = body.get("build").and_then(Value::as_str).unwrap_or("unknown");
            let evaluation = control_.create_evaluation(experiment_id)?;
            Ok(Response::json_status(
                Status::CREATED,
                &obj! {
                    "evaluation" => evaluation.to_json(),
                    "triggered_by" => obj! {"build" => build},
                    "jobs" => evaluation.job_ids.len(),
                },
            ))
        })())
    });

    // Stats: job states across the installation (monitoring dashboards).
    let control_ = Arc::clone(c);
    router.get("/api/v1/stats", move |req, _p| {
        respond((|| {
            authed(&control_, req)?;
            let mut states = [0usize; 5];
            for evaluation in control_.list_evaluations(None) {
                let status = control_.evaluation_status(evaluation.id)?;
                states[0] += status.scheduled;
                states[1] += status.running;
                states[2] += status.finished;
                states[3] += status.aborted;
                states[4] += status.failed;
            }
            Ok(Response::json(&obj! {
                "jobs" => obj! {
                    "scheduled" => states[0],
                    "running" => states[1],
                    "finished" => states[2],
                    "aborted" => states[3],
                    "failed" => states[4],
                },
                "systems" => control_.list_systems().len(),
                "projects" => control_.list_projects().len(),
            }))
        })())
    });
}
