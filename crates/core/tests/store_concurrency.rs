//! Concurrency smoke tests for the sharded metadata store: writers across
//! kinds race readers and compactions, and the log must replay to exactly
//! the state the threads left in memory.

use std::sync::Arc;

use chronos_core::store::MetadataStore;
use chronos_json::{obj, Value};

const WRITERS: u64 = 8;
const KINDS: [&str; 3] = ["job", "evaluation", "result"];
const OPS_PER_WRITER: u64 = 300;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("chronos-storecc-{}-{name}.log", std::process::id()))
}

/// Each writer owns a disjoint id range in every kind, so the final
/// expected state is exact: the last value each writer wrote per id.
fn writer_doc(writer: u64, op: u64) -> Value {
    obj! {"writer" => writer as i64, "op" => op as i64}
}

#[test]
fn concurrent_writers_lose_no_updates_and_replay_consistently() {
    let path = tmp("writers");
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(MetadataStore::open(&path).unwrap());

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for op in 0..OPS_PER_WRITER {
                    let kind = KINDS[(op % KINDS.len() as u64) as usize];
                    // 4 ids per writer per kind, rewritten round-robin.
                    let id = format!("w{writer}-{}", op % 4);
                    store.put(kind, &id, writer_doc(writer, op)).unwrap();
                }
            });
        }
        // Readers run list/get against the writers the whole time.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..200 {
                    for kind in KINDS {
                        let docs = store.list(kind);
                        for doc in &docs {
                            assert!(doc.get("writer").is_some());
                        }
                    }
                }
            });
        }
        // And the log gets compacted underneath everyone.
        let compactor = Arc::clone(&store);
        scope.spawn(move || {
            for _ in 0..5 {
                compactor.compact().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });

    // No lost updates: every writer's final round of documents is intact.
    for writer in 0..WRITERS {
        for slot in 0..4u64 {
            // The last op to touch (kind, slot) for this writer.
            let mut last: Option<(u64, &str)> = None;
            for op in 0..OPS_PER_WRITER {
                if op % 4 == slot {
                    last = Some((op, KINDS[(op % KINDS.len() as u64) as usize]));
                }
            }
            let (op, kind) = last.unwrap();
            let id = format!("w{writer}-{slot}");
            let doc = store.get(kind, &id).unwrap_or_else(|| panic!("missing {kind}/{id}"));
            assert_eq!(doc.get("writer").and_then(Value::as_i64), Some(writer as i64));
            assert_eq!(doc.get("op").and_then(Value::as_i64), Some(op as i64), "{kind}/{id}");
        }
    }

    // Post-join replay equals the in-memory state, kind by kind, id by id.
    let replayed = MetadataStore::open(&path).unwrap();
    for kind in KINDS {
        assert_eq!(replayed.ids(kind), store.ids(kind), "ids diverged for {kind}");
        for id in store.ids(kind) {
            let mem = store.get(kind, &id).unwrap();
            let disk = replayed.get(kind, &id).unwrap();
            assert_eq!(*mem, *disk, "replay diverged for {kind}/{id}");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_writers_with_auto_compaction() {
    let path = tmp("autocompact");
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(MetadataStore::open(&path).unwrap());
    store.set_auto_compact_threshold(256);

    std::thread::scope(|scope| {
        for writer in 0..4u64 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for op in 0..500u64 {
                    store.put("job", &format!("w{writer}"), writer_doc(writer, op)).unwrap();
                }
            });
        }
    });

    // 2000 appends over 4 live docs: background compaction must have
    // fired at least once, and nothing may be lost.
    assert!(store.log_records() < 2000, "log never compacted: {}", store.log_records());
    drop(store);
    let replayed = MetadataStore::open(&path).unwrap();
    assert_eq!(replayed.count("job"), 4);
    for writer in 0..4u64 {
        let doc = replayed.get("job", &format!("w{writer}")).unwrap();
        assert_eq!(doc.get("op").and_then(Value::as_i64), Some(499));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn deletes_race_puts_without_ghosts() {
    let store = MetadataStore::in_memory();
    std::thread::scope(|scope| {
        let putter = &store;
        scope.spawn(move || {
            for op in 0..1000u64 {
                putter.put("k", "contested", writer_doc(0, op)).unwrap();
            }
        });
        let deleter = &store;
        scope.spawn(move || {
            for _ in 0..1000u64 {
                let _ = deleter.delete("k", "contested").unwrap();
            }
        });
    });
    // Whatever the interleaving, the store must agree with itself.
    let via_get = store.get("k", "contested").is_some();
    let via_count = store.count("k") == 1;
    assert_eq!(via_get, via_count);
}
