//! Property tests for Chronos Control invariants:
//!
//! * evaluation-space expansion size and contents,
//! * the job state machine under arbitrary operation sequences,
//! * metadata-store consistency against a model.

use std::collections::BTreeMap;

use chronos_core::model::{Job, JobState, JobStateExt};
use chronos_core::params::{ParamAssignments, ParamDef, ParamType};
use chronos_core::store::MetadataStore;
use chronos_json::{obj, Value};
use chronos_util::Id;
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = (i64, i64, i64)> {
    (0i64..50, 1i64..20, 1i64..7).prop_map(|(min, span, step)| (min, min + span, step))
}

proptest! {
    /// Expansion size equals the product of the per-axis point counts, every
    /// point validates against the schema, and all points are distinct.
    #[test]
    fn expansion_size_and_validity(
        (min, max, step) in arb_interval(),
        options in prop::collection::btree_set("[a-z]{1,6}", 1..5),
        sweep_bool in any::<bool>(),
    ) {
        let options: Vec<String> = options.into_iter().collect();
        let schema = vec![
            ParamDef::new(
                "n", "", ParamType::Interval { min, max, step }, Value::from(min),
            ).unwrap(),
            ParamDef::new(
                "choice", "",
                ParamType::Checkbox { options: options.clone() },
                Value::from(options[0].as_str()),
            ).unwrap(),
            ParamDef::new("flag", "", ParamType::Boolean, Value::Bool(false)).unwrap(),
        ];
        let mut assignments = ParamAssignments::new().sweep_all("n").sweep_all("choice");
        if sweep_bool {
            assignments = assignments.sweep_all("flag");
        }
        let points = assignments.expand(&schema).unwrap();
        let interval_points = (max - min) / step + 1;
        let expected = interval_points as usize
            * options.len()
            * if sweep_bool { 2 } else { 1 };
        prop_assert_eq!(points.len(), expected);
        let mut seen = std::collections::HashSet::new();
        for point in &points {
            for def in &schema {
                let value = point.get(&def.name).expect("every parameter present");
                def.param_type.validate_value(value).unwrap();
            }
            prop_assert!(seen.insert(point.to_string()), "duplicate point {point}");
        }
    }

    /// The job state machine never reaches an illegal state, no matter the
    /// operation sequence; terminal states stay terminal (except failed →
    /// scheduled).
    #[test]
    fn job_state_machine_is_closed(transitions in prop::collection::vec(0u8..5, 1..40)) {
        let mut job = Job::new(Id::generate(), Id::generate(), obj! {}, 0);
        let mut now = 1u64;
        for t in transitions {
            let target = match t {
                0 => JobState::Scheduled,
                1 => JobState::Running,
                2 => JobState::Finished,
                3 => JobState::Aborted,
                _ => JobState::Failed,
            };
            let before = job.state;
            let timeline_before = job.timeline.len();
            let result = job.transition(target, now, "fuzz");
            match result {
                Ok(()) => {
                    prop_assert!(before.can_transition_to(target));
                    prop_assert_eq!(job.state, target);
                    prop_assert_eq!(job.timeline.len(), timeline_before + 1);
                }
                Err(_) => {
                    prop_assert!(!before.can_transition_to(target));
                    prop_assert_eq!(job.state, before, "failed transition must not change state");
                    prop_assert_eq!(job.timeline.len(), timeline_before);
                }
            }
            now += 1;
        }
        // From any reachable state, the set of legal moves matches the spec.
        for target in [JobState::Scheduled, JobState::Running, JobState::Finished] {
            let legal = job.state.can_transition_to(target);
            let mut probe = job.clone();
            prop_assert_eq!(probe.transition(target, now, "probe").is_ok(), legal);
        }
    }

    /// The metadata store behaves like a map, including across a reopen.
    #[test]
    fn store_matches_model(
        ops in prop::collection::vec(
            prop_oneof![
                ("[a-c]", "[a-z]{1,4}", any::<i64>()).prop_map(|(k, i, v)| (k, i, Some(v))),
                ("[a-c]", "[a-z]{1,4}").prop_map(|(k, i)| (k, i, None)),
            ],
            1..60,
        )
    ) {
        let path = std::env::temp_dir().join(format!(
            "chronos-store-prop-{}-{:x}.log",
            std::process::id(),
            rand::random::<u64>()
        ));
        let mut model: BTreeMap<(String, String), i64> = BTreeMap::new();
        {
            let store = MetadataStore::open(&path).unwrap();
            for (kind, id, op) in &ops {
                match op {
                    Some(v) => {
                        store.put(kind, id, obj! {"v" => *v}).unwrap();
                        model.insert((kind.clone(), id.clone()), *v);
                    }
                    None => {
                        let existed = store.delete(kind, id).unwrap();
                        prop_assert_eq!(
                            existed,
                            model.remove(&(kind.clone(), id.clone())).is_some()
                        );
                    }
                }
            }
        }
        // Reopen and compare the full contents.
        let store = MetadataStore::open(&path).unwrap();
        for ((kind, id), v) in &model {
            let doc = store.get(kind, id).expect("present after reopen");
            prop_assert_eq!(doc.get("v").and_then(Value::as_i64), Some(*v));
        }
        for kind in ["a", "b", "c"] {
            let expected = model.keys().filter(|(k, _)| k == kind).count();
            prop_assert_eq!(store.count(kind), expected);
        }
        std::fs::remove_file(&path).ok();
    }
}
