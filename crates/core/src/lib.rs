//! # chronos-core — the Chronos Control evaluation toolkit
//!
//! The paper's contribution: a system that automates the *entire* evaluation
//! workflow — defining experiments over a parameter space, scheduling their
//! evaluations as jobs on deployments, monitoring progress and logs,
//! handling failures, archiving everything, and analyzing/visualizing the
//! results.
//!
//! Module map (paper concept → module):
//!
//! * data model (projects, experiments, evaluations, jobs, systems,
//!   deployments, results — §2.1) → [`model`]
//! * experiment parameters & evaluation-space expansion (§2.1/§3) →
//!   [`params`]
//! * incremental job materialization & adaptive parameter-space search →
//!   [`jobsource`]
//! * the MySQL-backed persistence of Chronos Control → [`store`] (embedded,
//!   log-structured, crash-recovering)
//! * scheduling, parallel deployments, abort/reschedule, failure handling
//!   (requirements *(ii)*/*(iii)*) → [`scheduler`] via [`control`]
//! * users, roles and project-level access (§2.2 "session and role-based
//!   user management") → [`auth`]
//! * archiving (requirement *(iv)*) → [`archive`]
//! * result analysis & standard metrics (requirement *(vi)*) → [`analysis`]
//! * bar/line/pie diagrams and the extensible chart registry → [`charts`]
//!
//! [`control::ChronosControl`] ties these together; `chronos-server` exposes
//! it over the versioned REST API.

pub mod analysis;
pub mod archive;
pub mod auth;
pub mod charts;
pub mod cluster;
pub mod control;
pub mod error;
pub mod jobsource;
pub mod lifecycle;
pub mod model;
pub mod params;
pub mod scheduler;
pub mod store;

pub use chronos_analytics::{ChangePoint, ChangePointConfig};
pub use control::ChronosControl;
pub use error::{CoreError, CoreResult};
pub use jobsource::{AdaptiveConfig, JobSourceState, Strategy};
pub use params::PointSpace;
