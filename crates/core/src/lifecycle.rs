//! The job lifecycle state machine — the single transition table every
//! layer consults.
//!
//! The wire vocabulary ([`JobState`]) lives in `chronos-api`; this module
//! owns *legality*: which event may fire in which state, and what state it
//! lands in. Server handlers, the scheduler sweep, and the agent-facing
//! control paths all funnel through [`transition`] instead of comparing
//! state strings.
//!
//! ```text
//!                 Claim                 Finish
//!   Scheduled ───────────▶ Running ───────────▶ Finished (terminal)
//!      ▲  │                 │    │
//!      │  │ Abort           │    │ Abort
//!      │  ▼                 │    ▼
//!      │ Aborted ◀──────────┘   Aborted (terminal)
//!      │                    │ Fail
//!      │     Reschedule     ▼           Quarantine
//!      └─────────────────  Failed ───────────▶ Quarantined (terminal)
//! ```

use chronos_api::JobState;

/// An event that moves a job through its lifecycle. Each event has exactly
/// one target state; legality depends on the state it fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobEvent {
    /// An agent claimed the job (attempt number becomes the fencing token).
    Claim,
    /// The agent uploaded a result.
    Finish,
    /// The agent reported failure, or the lease-expiry sweep fired.
    Fail,
    /// A user cancelled the job.
    Abort,
    /// A failed job goes back into the queue (manual or automatic retry).
    Reschedule,
    /// A job that exhausted `max_attempts` is removed from scheduling for
    /// good — poison-job containment, not a retryable failure.
    Quarantine,
}

impl JobEvent {
    /// The state this event lands in when legal.
    pub fn target(&self) -> JobState {
        match self {
            JobEvent::Claim => JobState::Running,
            JobEvent::Finish => JobState::Finished,
            JobEvent::Fail => JobState::Failed,
            JobEvent::Abort => JobState::Aborted,
            JobEvent::Reschedule => JobState::Scheduled,
            JobEvent::Quarantine => JobState::Quarantined,
        }
    }

    /// Every lifecycle event.
    pub const ALL: [JobEvent; 6] = [
        JobEvent::Claim,
        JobEvent::Finish,
        JobEvent::Fail,
        JobEvent::Abort,
        JobEvent::Reschedule,
        JobEvent::Quarantine,
    ];
}

/// A lifecycle violation: `event` fired while the job was in `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    pub from: JobState,
    pub event: JobEvent,
}

impl InvalidTransition {
    /// The state the event would have landed in.
    pub fn target(&self) -> JobState {
        self.event.target()
    }
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot go from {} to {}", self.from, self.event.target())
    }
}

impl std::error::Error for InvalidTransition {}

/// The transition table (paper §2.1): "Jobs which are in the status
/// scheduled or running can be aborted and those which are failed can be
/// re-scheduled."
pub fn transition(state: JobState, event: JobEvent) -> Result<JobState, InvalidTransition> {
    use JobEvent::*;
    use JobState::*;
    let legal = matches!(
        (state, event),
        (Scheduled, Claim)
            | (Running, Finish)
            | (Running, Fail)
            | (Scheduled, Abort)
            | (Running, Abort)
            | (Failed, Reschedule)
            | (Failed, Quarantine)
    );
    if legal {
        Ok(event.target())
    } else {
        Err(InvalidTransition { from: state, event })
    }
}

/// Whether *any* event leads from `from` to `to` — the legacy
/// state-to-state view of the table.
pub fn can_transition(from: JobState, to: JobState) -> bool {
    JobEvent::ALL.iter().any(|event| event.target() == to && transition(from, *event).is_ok())
}

/// State-machine queries as methods on [`JobState`] (the enum itself lives
/// in `chronos-api`, which deliberately knows nothing about legality).
pub trait JobStateExt {
    /// Whether a transition to `next` is legal.
    fn can_transition_to(&self, next: JobState) -> bool;
    /// Terminal states cannot progress (except `Failed`, via reschedule).
    fn is_terminal(&self) -> bool;
}

impl JobStateExt for JobState {
    fn can_transition_to(&self, next: JobState) -> bool {
        can_transition(*self, next)
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Finished | JobState::Aborted | JobState::Quarantined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_lifecycle() {
        assert_eq!(transition(JobState::Scheduled, JobEvent::Claim), Ok(JobState::Running));
        assert_eq!(transition(JobState::Running, JobEvent::Finish), Ok(JobState::Finished));
        assert_eq!(transition(JobState::Running, JobEvent::Fail), Ok(JobState::Failed));
        assert_eq!(transition(JobState::Scheduled, JobEvent::Abort), Ok(JobState::Aborted));
        assert_eq!(transition(JobState::Running, JobEvent::Abort), Ok(JobState::Aborted));
        assert_eq!(transition(JobState::Failed, JobEvent::Reschedule), Ok(JobState::Scheduled));
        assert_eq!(transition(JobState::Failed, JobEvent::Quarantine), Ok(JobState::Quarantined));
    }

    #[test]
    fn terminal_states_accept_no_event() {
        for terminal in [JobState::Finished, JobState::Aborted, JobState::Quarantined] {
            for event in JobEvent::ALL {
                assert_eq!(
                    transition(terminal, event),
                    Err(InvalidTransition { from: terminal, event })
                );
            }
            assert!(terminal.is_terminal());
        }
    }

    #[test]
    fn state_view_agrees_with_event_table() {
        // Every (from, to) pair the legacy matrix allowed, and nothing more.
        let allowed = [
            (JobState::Scheduled, JobState::Running),
            (JobState::Scheduled, JobState::Aborted),
            (JobState::Running, JobState::Finished),
            (JobState::Running, JobState::Failed),
            (JobState::Running, JobState::Aborted),
            (JobState::Failed, JobState::Scheduled),
            (JobState::Failed, JobState::Quarantined),
        ];
        for from in JobState::ALL {
            for to in JobState::ALL {
                assert_eq!(
                    from.can_transition_to(to),
                    allowed.contains(&(from, to)),
                    "disagreement for {from} -> {to}"
                );
            }
        }
    }
}
