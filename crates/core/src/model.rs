//! The Chronos data model (paper §2.1).
//!
//! > "The data model of Chronos contains projects, experiments,
//! > evaluations, jobs, systems, and deployments."
//!
//! Every entity carries a sortable [`Id`], timestamps, and a JSON
//! round-trip so the [`store`](crate::store) can persist it and the REST
//! API can serve it.

use chronos_api::v1 as dto;
use chronos_api::WireEncode;
use chronos_json::Value;
use chronos_util::Id;

use crate::error::{CoreError, CoreResult};
use crate::jobsource::{JobSourceState, Strategy};
use crate::lifecycle::{self, JobEvent};
use crate::params::{ParamAssignments, ParamDef};

// The wire vocabulary lives in `chronos-api`; legality queries come from
// the lifecycle state machine. Re-exported so `model::JobState` keeps
// working across the workspace.
pub use crate::lifecycle::JobStateExt;
pub use chronos_api::JobState;

/// A system under evaluation, with its parameter schema and chart config
/// (paper Fig. 2: "Configuration of a System").
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    /// Unique id.
    pub id: Id,
    /// Unique human-readable name (e.g. `"minidoc"`).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Declared parameters.
    pub parameters: Vec<ParamDef>,
    /// Chart definitions rendered on the result page (see
    /// [`charts`](crate::charts)).
    pub charts: Vec<crate::charts::ChartSpec>,
    /// Creation time (unix millis).
    pub created_at: u64,
}

impl System {
    /// JSON shape served by `GET /systems/:id` and accepted on registration.
    pub fn to_json(&self) -> Value {
        dto::SystemDto {
            id: self.id,
            name: self.name.clone(),
            description: self.description.clone(),
            parameters: self.parameters.iter().map(ParamDef::to_json).collect(),
            charts: self.charts.iter().map(|c| c.to_json()).collect(),
            created_at: self.created_at,
        }
        .to_value()
    }

    /// Parses [`System::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<System> {
        Ok(System {
            id: parse_id(value, "id")?,
            name: require_str(value, "name")?,
            description: opt_str(value, "description"),
            parameters: value
                .get("parameters")
                .and_then(Value::as_array)
                .map(|items| items.iter().map(ParamDef::from_json).collect())
                .transpose()?
                .unwrap_or_default(),
            charts: value
                .get("charts")
                .and_then(Value::as_array)
                .map(|items| items.iter().map(crate::charts::ChartSpec::from_json).collect())
                .transpose()?
                .unwrap_or_default(),
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// A deployment: one reachable instance of a system in an environment
/// (paper §2.1 — parallelism comes from multiple identical deployments).
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Unique id.
    pub id: Id,
    /// The system this deploys.
    pub system_id: Id,
    /// Environment label (e.g. `"node-a"`, `"staging"`).
    pub environment: String,
    /// Version of the deployed system.
    pub version: String,
    /// Whether the deployment currently accepts jobs.
    pub active: bool,
    /// Creation time.
    pub created_at: u64,
}

impl Deployment {
    /// JSON shape.
    pub fn to_json(&self) -> Value {
        dto::DeploymentDto {
            id: self.id,
            system_id: self.system_id,
            environment: self.environment.clone(),
            version: self.version.clone(),
            active: self.active,
            created_at: self.created_at,
        }
        .to_value()
    }

    /// Parses [`Deployment::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<Deployment> {
        Ok(Deployment {
            id: parse_id(value, "id")?,
            system_id: parse_id(value, "system_id")?,
            environment: opt_str(value, "environment"),
            version: opt_str(value, "version"),
            active: value.get("active").and_then(Value::as_bool).unwrap_or(true),
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// A project: the collaboration and access-control unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Project {
    /// Unique id.
    pub id: Id,
    /// Project name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Member user ids; members see all experiments and results.
    pub members: Vec<Id>,
    /// Archived projects are read-only.
    pub archived: bool,
    /// Creation time.
    pub created_at: u64,
}

impl Project {
    /// JSON shape.
    pub fn to_json(&self) -> Value {
        dto::ProjectDto {
            id: self.id,
            name: self.name.clone(),
            description: self.description.clone(),
            members: self.members.clone(),
            archived: self.archived,
            created_at: self.created_at,
        }
        .to_value()
    }

    /// Parses [`Project::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<Project> {
        let members = value
            .get("members")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .and_then(|s| Id::parse_base32(s).ok())
                            .ok_or_else(|| CoreError::Invalid("bad member id".into()))
                    })
                    .collect::<CoreResult<Vec<_>>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(Project {
            id: parse_id(value, "id")?,
            name: require_str(value, "name")?,
            description: opt_str(value, "description"),
            members,
            archived: value.get("archived").and_then(Value::as_bool).unwrap_or(false),
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// An experiment: "the definition of an evaluation with all its parameters;
/// when executed, it results in the creation of an evaluation."
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Unique id.
    pub id: Id,
    /// Owning project.
    pub project_id: Id,
    /// System under evaluation.
    pub system_id: Id,
    /// Experiment name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Parameter assignments (fixed values and sweeps).
    pub assignments: ParamAssignments,
    /// Archived experiments cannot spawn new evaluations.
    pub archived: bool,
    /// Creation time.
    pub created_at: u64,
    /// How evaluations of this experiment explore the parameter space.
    pub strategy: Strategy,
    /// Per-job resource budget copied onto every materialized job. `None`
    /// means unbudgeted (the historic behavior).
    pub budget: Option<dto::JobBudget>,
}

impl Experiment {
    /// JSON shape. Grid strategy (the historic default) is omitted so
    /// pre-strategy documents stay byte-identical.
    pub fn to_json(&self) -> Value {
        dto::ExperimentDto {
            id: self.id,
            project_id: self.project_id,
            system_id: self.system_id,
            name: self.name.clone(),
            description: self.description.clone(),
            parameters: self.assignments.to_json(),
            archived: self.archived,
            created_at: self.created_at,
            strategy: match &self.strategy {
                Strategy::Grid => None,
                adaptive => Some(adaptive.dto()),
            },
            budget: self.budget,
        }
        .to_value()
    }

    /// Parses [`Experiment::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<Experiment> {
        use chronos_api::WireDecode;
        let strategy = match value.get("strategy") {
            None | Some(Value::Null) => Strategy::Grid,
            Some(v) => Strategy::from_dto(
                &dto::StrategyDto::decode(v)
                    .map_err(|e| CoreError::Invalid(format!("bad strategy: {e}")))?,
            ),
        };
        let budget = match value.get("budget") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                dto::JobBudget::decode(v)
                    .map_err(|e| CoreError::Invalid(format!("bad budget: {e}")))?,
            ),
        };
        Ok(Experiment {
            id: parse_id(value, "id")?,
            project_id: parse_id(value, "project_id")?,
            system_id: parse_id(value, "system_id")?,
            name: require_str(value, "name")?,
            description: opt_str(value, "description"),
            assignments: value
                .get("parameters")
                .map(ParamAssignments::from_json)
                .transpose()?
                .unwrap_or_default(),
            archived: value.get("archived").and_then(Value::as_bool).unwrap_or(false),
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
            strategy,
            budget,
        })
    }
}

/// An evaluation: one run of an experiment, consisting of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Unique id.
    pub id: Id,
    /// The experiment this runs.
    pub experiment_id: Id,
    /// Ids of this evaluation's **materialized** jobs, in issue order. A
    /// lazy evaluation grows this list as the claim path pulls points from
    /// its job source.
    pub job_ids: Vec<Id>,
    /// Names of the swept parameters (analysis axes).
    pub swept_params: Vec<String>,
    /// Creation time.
    pub created_at: u64,
    /// Lazy iteration state. `None` for documents that predate lazy
    /// evaluations — those were fully materialized at creation.
    pub source: Option<JobSourceState>,
}

impl Evaluation {
    /// JSON shape. Source fields are appended only when present, so
    /// pre-refactor documents stay byte-identical.
    pub fn to_json(&self) -> Value {
        self.dto().to_value()
    }

    pub(crate) fn dto(&self) -> dto::EvaluationDto {
        let mut doc = dto::EvaluationDto {
            id: self.id,
            experiment_id: self.experiment_id,
            job_ids: self.job_ids.clone(),
            swept_params: self.swept_params.clone(),
            created_at: self.created_at,
            strategy: None,
            total_points: None,
            materialized: None,
            frontier: None,
        };
        if let Some(source) = &self.source {
            source.apply_to_dto(&mut doc);
        }
        doc
    }

    /// Parses [`Evaluation::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<Evaluation> {
        use chronos_api::WireDecode;
        let doc = dto::EvaluationDto::decode(value)
            .map_err(|e| CoreError::Invalid(format!("bad evaluation: {e}")))?;
        Ok(Evaluation {
            id: doc.id,
            experiment_id: doc.experiment_id,
            job_ids: doc.job_ids.clone(),
            swept_params: doc.swept_params.clone(),
            created_at: doc.created_at,
            source: JobSourceState::from_dto(&doc),
        })
    }
}

// `JobState` itself is defined in `chronos-api` (it is wire vocabulary)
// and re-exported at the top of this module; `JobStateExt` supplies the
// legality queries backed by `lifecycle::transition`.

/// A timeline event on a job (paper Fig. 3c: "The timeline shows all events
/// associated with this job").
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// When it happened (unix millis).
    pub at: u64,
    /// Short machine-readable kind (`created`, `claimed`, `finished`, ...).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

impl TimelineEvent {
    fn dto(&self) -> dto::TimelineEventDto {
        dto::TimelineEventDto {
            at: self.at,
            kind: self.kind.clone(),
            message: self.message.clone(),
        }
    }

    /// JSON shape (the rendered `time` string is derived from `at`).
    pub fn to_json(&self) -> Value {
        self.dto().to_value()
    }
}

/// A job: "a subset of an evaluation, e.g., the run of a benchmark for a
/// specific set of parameters."
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique id.
    pub id: Id,
    /// Owning evaluation.
    pub evaluation_id: Id,
    /// The system this job runs against.
    pub system_id: Id,
    /// Concrete parameter values for this point of the evaluation space.
    pub parameters: Value,
    /// Current state.
    pub state: JobState,
    /// Deployment the job is (or was) assigned to.
    pub deployment_id: Option<Id>,
    /// Progress 0..=100 (reported by the agent).
    pub progress: u8,
    /// Log output streamed by the agent.
    pub log: String,
    /// Timeline of state changes and notable events.
    pub timeline: Vec<TimelineEvent>,
    /// Last agent heartbeat (unix millis), while running.
    pub heartbeat_at: Option<u64>,
    /// How many times this job has been (re)scheduled.
    pub attempts: u32,
    /// Idempotency key of the claim that started the current attempt; a
    /// re-claim carrying the same key (retry after a dropped response)
    /// returns this job instead of failing with a conflict.
    pub claim_key: Option<String>,
    /// Idempotency key of the accepted result upload; a duplicate upload
    /// with the same key returns the stored result instead of conflicting.
    pub result_key: Option<String>,
    /// The result id once finished.
    pub result_id: Option<Id>,
    /// Failure reason when failed.
    pub failure: Option<String>,
    /// Creation time.
    pub created_at: u64,
    /// Index of this job's point in the evaluation's parameter space.
    /// `Some` on lazily-materialized jobs — the claim path uses it to adopt
    /// a job whose evaluation update was lost in a crash instead of
    /// duplicating the point.
    pub point_index: Option<u64>,
    /// Resource budget copied from the experiment at materialization; the
    /// agent-side watchdog enforces it. `None` means unbudgeted.
    pub budget: Option<dto::JobBudget>,
}

impl Job {
    /// Creates a scheduled job.
    pub fn new(evaluation_id: Id, system_id: Id, parameters: Value, now: u64) -> Job {
        Job {
            id: Id::generate(),
            evaluation_id,
            system_id,
            parameters,
            state: JobState::Scheduled,
            deployment_id: None,
            progress: 0,
            log: String::new(),
            timeline: vec![TimelineEvent {
                at: now,
                kind: "created".into(),
                message: "job created and scheduled".into(),
            }],
            heartbeat_at: None,
            attempts: 0,
            claim_key: None,
            result_key: None,
            result_id: None,
            failure: None,
            created_at: now,
            point_index: None,
            budget: None,
        }
    }

    /// Records a timeline event.
    pub fn record(&mut self, now: u64, kind: &str, message: impl Into<String>) {
        self.timeline.push(TimelineEvent { at: now, kind: kind.into(), message: message.into() });
    }

    /// Applies a lifecycle event, enforcing the transition table.
    pub fn apply(&mut self, event: JobEvent, now: u64, message: &str) -> CoreResult<()> {
        let next = lifecycle::transition(self.state, event)
            .map_err(|violation| CoreError::Conflict(format!("job {} {violation}", self.id)))?;
        self.state = next;
        self.record(now, next.as_str(), message);
        Ok(())
    }

    /// Applies a state transition. Each state is the target of exactly one
    /// [`JobEvent`], so this is the state-centric view of [`Job::apply`].
    pub fn transition(&mut self, next: JobState, now: u64, message: &str) -> CoreResult<()> {
        let event = JobEvent::ALL
            .into_iter()
            .find(|e| e.target() == next)
            .expect("every state is the target of exactly one lifecycle event");
        self.apply(event, now, message)
    }

    fn dto(&self) -> dto::JobDto {
        dto::JobDto {
            id: self.id,
            evaluation_id: self.evaluation_id,
            system_id: self.system_id,
            parameters: self.parameters.clone(),
            state: self.state,
            deployment_id: self.deployment_id,
            progress: self.progress,
            log: self.log.clone(),
            timeline: self.timeline.iter().map(TimelineEvent::dto).collect(),
            heartbeat_at: self.heartbeat_at,
            attempts: self.attempts,
            claim_key: self.claim_key.clone(),
            result_key: self.result_key.clone(),
            result_id: self.result_id,
            failure: self.failure.clone(),
            created_at: self.created_at,
            point_index: self.point_index,
            budget: self.budget,
        }
    }

    /// JSON shape (full detail).
    pub fn to_json(&self) -> Value {
        self.dto().to_value()
    }

    /// The listing view: `log` and `timeline` omitted.
    pub fn to_json_summary(&self) -> Value {
        self.dto().summary_value()
    }

    /// Parses [`Job::to_json`] output (timeline event times only; the
    /// rendered `time` strings are ignored).
    pub fn from_json(value: &Value) -> CoreResult<Job> {
        let state = value
            .get("state")
            .and_then(Value::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| CoreError::Invalid("job needs a valid state".into()))?;
        let timeline = value
            .get("timeline")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|e| TimelineEvent {
                        at: e.get("at").and_then(Value::as_u64).unwrap_or(0),
                        kind: opt_str(e, "kind"),
                        message: opt_str(e, "message"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Job {
            id: parse_id(value, "id")?,
            evaluation_id: parse_id(value, "evaluation_id")?,
            system_id: parse_id(value, "system_id")?,
            parameters: value.get("parameters").cloned().unwrap_or(Value::Null),
            state,
            deployment_id: opt_id(value, "deployment_id")?,
            progress: value.get("progress").and_then(Value::as_u64).unwrap_or(0) as u8,
            log: opt_str(value, "log"),
            timeline,
            heartbeat_at: value.get("heartbeat_at").and_then(Value::as_u64),
            attempts: value.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
            claim_key: value.get("claim_key").and_then(Value::as_str).map(str::to_string),
            result_key: value.get("result_key").and_then(Value::as_str).map(str::to_string),
            result_id: opt_id(value, "result_id")?,
            failure: value.get("failure").and_then(Value::as_str).map(str::to_string),
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
            point_index: value.get("point_index").and_then(Value::as_u64),
            budget: value
                .get("budget")
                .map(|v| {
                    use chronos_api::WireDecode;
                    dto::JobBudget::decode(v)
                        .map_err(|e| CoreError::Invalid(format!("bad budget: {e}")))
                })
                .transpose()?,
        })
    }
}

/// A result: "a JSON and a zip file" (paper §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Unique id.
    pub id: Id,
    /// The job that produced it.
    pub job_id: Id,
    /// The measurement document used for analysis within Chronos Control.
    pub data: Value,
    /// The supplementary zip archive (raw logs, extra files).
    pub archive: Vec<u8>,
    /// Upload time.
    pub created_at: u64,
}

impl JobResult {
    /// JSON shape — the archive is referenced by size, downloadable via its
    /// own endpoint.
    pub fn to_json(&self) -> Value {
        dto::JobResultDto {
            id: self.id,
            job_id: self.job_id,
            data: self.data.clone(),
            archive_bytes: self.archive.len(),
            created_at: self.created_at,
        }
        .to_value()
    }
}

pub(crate) fn parse_id(value: &Value, field: &str) -> CoreResult<Id> {
    value
        .get(field)
        .and_then(Value::as_str)
        .and_then(|s| Id::parse_base32(s).ok())
        .ok_or_else(|| CoreError::Invalid(format!("missing or invalid id field {field:?}")))
}

pub(crate) fn opt_id(value: &Value, field: &str) -> CoreResult<Option<Id>> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| CoreError::Invalid(format!("field {field:?} must be a string")))?;
            Id::parse_base32(s)
                .map(Some)
                .map_err(|_| CoreError::Invalid(format!("bad id in {field:?}")))
        }
    }
}

pub(crate) fn require_str(value: &Value, field: &str) -> CoreResult<String> {
    value
        .get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| CoreError::Invalid(format!("missing field {field:?}")))
}

pub(crate) fn opt_str(value: &Value, field: &str) -> String {
    value.get(field).and_then(Value::as_str).unwrap_or("").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamAssignments, ParamType};
    use chronos_json::obj;

    #[test]
    fn job_state_machine() {
        use JobState::*;
        assert!(Scheduled.can_transition_to(Running));
        assert!(Scheduled.can_transition_to(Aborted));
        assert!(!Scheduled.can_transition_to(Finished));
        assert!(Running.can_transition_to(Finished));
        assert!(Running.can_transition_to(Failed));
        assert!(Running.can_transition_to(Aborted));
        assert!(!Running.can_transition_to(Scheduled));
        assert!(Failed.can_transition_to(Scheduled), "failed jobs can be re-scheduled");
        assert!(Failed.can_transition_to(Quarantined), "poison jobs can be quarantined");
        assert!(!Finished.can_transition_to(Running));
        assert!(!Aborted.can_transition_to(Scheduled));
        assert!(!Quarantined.can_transition_to(Scheduled), "quarantine is terminal");
        assert!(Finished.is_terminal());
        assert!(Aborted.is_terminal());
        assert!(Quarantined.is_terminal());
        assert!(!Failed.is_terminal());
    }

    #[test]
    fn job_transition_records_timeline() {
        let mut job = Job::new(Id::generate(), Id::generate(), obj! {"threads" => 4}, 1000);
        job.transition(JobState::Running, 2000, "claimed by agent-1").unwrap();
        job.transition(JobState::Finished, 3000, "result uploaded").unwrap();
        assert_eq!(job.timeline.len(), 3);
        assert_eq!(job.timeline[1].kind, "running");
        assert_eq!(job.timeline[2].at, 3000);
        // Illegal transition refused and not recorded.
        assert!(job.transition(JobState::Running, 4000, "no").is_err());
        assert_eq!(job.timeline.len(), 3);
    }

    #[test]
    fn job_json_roundtrip() {
        let mut job = Job::new(Id::generate(), Id::generate(), obj! {"threads" => 4}, 1000);
        job.transition(JobState::Running, 2000, "claimed").unwrap();
        job.deployment_id = Some(Id::generate());
        job.progress = 42;
        job.log = "line1\nline2\n".into();
        job.heartbeat_at = Some(2500);
        job.claim_key = Some("claim-abc".into());
        job.result_key = Some("upload-xyz".into());
        job.budget = Some(dto::JobBudget { wall_millis: Some(60_000), ..Default::default() });
        let parsed = Job::from_json(&job.to_json()).unwrap();
        assert_eq!(parsed, job);
    }

    #[test]
    fn system_json_roundtrip() {
        let system = System {
            id: Id::generate(),
            name: "minidoc".into(),
            description: "embedded doc store".into(),
            parameters: vec![crate::params::ParamDef::new(
                "threads",
                "client threads",
                ParamType::Interval { min: 1, max: 8, step: 1 },
                Value::from(1),
            )
            .unwrap()],
            charts: vec![],
            created_at: 1234,
        };
        assert_eq!(System::from_json(&system.to_json()).unwrap(), system);
    }

    #[test]
    fn experiment_json_roundtrip() {
        let experiment = Experiment {
            id: Id::generate(),
            project_id: Id::generate(),
            system_id: Id::generate(),
            name: "engine shootout".into(),
            description: "".into(),
            assignments: ParamAssignments::new().fix("threads", 4),
            archived: false,
            created_at: 5,
            strategy: Strategy::Grid,
            budget: None,
        };
        let encoded = experiment.to_json();
        assert!(encoded.get("strategy").is_none(), "grid is the implicit default");
        assert!(encoded.get("budget").is_none(), "unbudgeted is the implicit default");
        assert_eq!(Experiment::from_json(&encoded).unwrap(), experiment);

        let budgeted = Experiment {
            budget: Some(dto::JobBudget {
                cpu_millis: Some(2_000),
                max_rss_kib: Some(262_144),
                ..Default::default()
            }),
            ..experiment.clone()
        };
        let encoded = budgeted.to_json();
        assert_eq!(encoded.pointer("/budget/cpu_millis").and_then(Value::as_u64), Some(2_000));
        assert!(encoded.pointer("/budget/io_bytes").is_none(), "absent dimensions are omitted");
        assert_eq!(Experiment::from_json(&encoded).unwrap(), budgeted);
        let adaptive = Experiment {
            strategy: Strategy::Adaptive(crate::jobsource::AdaptiveConfig {
                seed: 9,
                initial: Some(16),
                ..Default::default()
            }),
            ..experiment
        };
        let encoded = adaptive.to_json();
        assert_eq!(encoded.pointer("/strategy/kind").and_then(Value::as_str), Some("adaptive"));
        assert_eq!(Experiment::from_json(&encoded).unwrap(), adaptive);
    }

    #[test]
    fn project_and_deployment_roundtrip() {
        let project = Project {
            id: Id::generate(),
            name: "p".into(),
            description: "d".into(),
            members: vec![Id::generate(), Id::generate()],
            archived: true,
            created_at: 9,
        };
        assert_eq!(Project::from_json(&project.to_json()).unwrap(), project);
        let deployment = Deployment {
            id: Id::generate(),
            system_id: Id::generate(),
            environment: "node-a".into(),
            version: "1.2.3".into(),
            active: true,
            created_at: 8,
        };
        assert_eq!(Deployment::from_json(&deployment.to_json()).unwrap(), deployment);
    }

    #[test]
    fn evaluation_roundtrip() {
        let legacy = Evaluation {
            id: Id::generate(),
            experiment_id: Id::generate(),
            job_ids: vec![Id::generate(), Id::generate()],
            swept_params: vec!["engine".into(), "threads".into()],
            created_at: 7,
            source: None,
        };
        let encoded = legacy.to_json();
        assert!(encoded.get("total_points").is_none(), "legacy shape has no source keys");
        assert_eq!(Evaluation::from_json(&encoded).unwrap(), legacy);

        let lazy = Evaluation {
            source: Some(crate::jobsource::JobSourceState::plan(Strategy::Grid, 40)),
            ..legacy.clone()
        };
        let encoded = lazy.to_json();
        assert_eq!(encoded.get("total_points").and_then(Value::as_u64), Some(40));
        assert_eq!(Evaluation::from_json(&encoded).unwrap(), lazy);

        let adaptive = Evaluation {
            source: Some(crate::jobsource::JobSourceState::plan(
                Strategy::Adaptive(crate::jobsource::AdaptiveConfig {
                    seed: 3,
                    initial: Some(8),
                    ..Default::default()
                }),
                40,
            )),
            ..legacy
        };
        let encoded = adaptive.to_json();
        assert_eq!(encoded.pointer("/frontier/rung").and_then(Value::as_u64), Some(0));
        assert_eq!(Evaluation::from_json(&encoded).unwrap(), adaptive);
    }

    #[test]
    fn state_name_roundtrip() {
        for s in [
            JobState::Scheduled,
            JobState::Running,
            JobState::Finished,
            JobState::Aborted,
            JobState::Failed,
            JobState::Quarantined,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("paused"), None);
    }

    #[test]
    fn result_json_reports_archive_size() {
        let result = JobResult {
            id: Id::generate(),
            job_id: Id::generate(),
            data: obj! {"tp" => 100},
            archive: vec![0u8; 1234],
            created_at: 1,
        };
        assert_eq!(result.to_json().get("archive_bytes").and_then(Value::as_u64), Some(1234));
    }
}
