//! Error type shared across Chronos Control.

use std::fmt;

/// Result alias for Chronos Control operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by Chronos Control.
#[derive(Debug)]
pub enum CoreError {
    /// An entity referenced by id does not exist.
    NotFound { kind: &'static str, id: String },
    /// A request was structurally or semantically invalid.
    Invalid(String),
    /// The operation conflicts with current state (e.g. aborting a finished
    /// job, duplicate user name).
    Conflict(String),
    /// The caller lacks the required role or project membership.
    Forbidden(String),
    /// An agent's lease on a job is gone: the job was rescheduled (or
    /// finished by a newer attempt) and the write carried a stale attempt
    /// number. The agent must stop working on this job immediately.
    LeaseLost(String),
    /// Persistence failed.
    Storage(String),
    /// Archiving failed.
    Archive(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotFound { kind, id } => write!(f, "{kind} {id} not found"),
            CoreError::Invalid(m) => write!(f, "invalid request: {m}"),
            CoreError::Conflict(m) => write!(f, "conflict: {m}"),
            CoreError::Forbidden(m) => write!(f, "forbidden: {m}"),
            CoreError::LeaseLost(m) => write!(f, "lease lost: {m}"),
            CoreError::Storage(m) => write!(f, "storage error: {m}"),
            CoreError::Archive(m) => write!(f, "archive error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl CoreError {
    /// Shorthand for [`CoreError::NotFound`].
    pub fn not_found(kind: &'static str, id: impl fmt::Display) -> Self {
        CoreError::NotFound { kind, id: id.to_string() }
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Storage(e.to_string())
    }
}

impl From<chronos_zip::ZipError> for CoreError {
    fn from(e: chronos_zip::ZipError) -> Self {
        CoreError::Archive(e.to_string())
    }
}
