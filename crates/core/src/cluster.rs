//! Cluster-mode state for the replicated control plane: roles, term
//! numbers, and the leader lease.
//!
//! One node is the **leader**: it accepts client writes, appends them to
//! its store's WAL, and ships the replication feed (see
//! [`MetadataStore::read_replication`](crate::MetadataStore::read_replication))
//! to every **follower**. Followers install shipped segments into their own
//! stores and serve read traffic under a bounded-staleness guard. When a
//! follower stops hearing from the leader for a full lease it becomes a
//! **candidate** and asks its peers for votes; a majority makes it the new
//! leader.
//!
//! **Terms are fencing tokens**, generalizing the attempt-number fencing of
//! the job lease protocol: every replicated segment and every vote carries
//! the sender's term, and any message whose term regresses is refused. A
//! deposed leader that keeps shipping its old log is fenced by the higher
//! term its ex-followers adopted, exactly as a zombie agent's stale attempt
//! number fences its late result upload.
//!
//! This type is the *state machine only* — pure transitions over role,
//! term, vote, and lease timestamps. The network driver that ships
//! segments, requests votes, and ticks the lease clock lives in
//! `chronos-server`; keeping the transitions here makes them unit-testable
//! without sockets and reusable by the simulation in the cluster suite.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A node's current role in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterRole {
    /// Accepts writes, ships the replication feed, renews its lease on
    /// majority acknowledgement.
    Leader,
    /// Installs shipped segments; serves reads within the staleness bound.
    Follower,
    /// A follower whose leader lease expired, currently soliciting votes.
    Candidate,
}

impl ClusterRole {
    /// Stable lowercase name (wire bodies, metrics, the status UI).
    pub fn as_str(self) -> &'static str {
        match self {
            ClusterRole::Leader => "leader",
            ClusterRole::Follower => "follower",
            ClusterRole::Candidate => "candidate",
        }
    }
}

/// Static cluster-mode configuration for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's stable identifier (used for vote bookkeeping and
    /// deterministic election jitter).
    pub node_id: String,
    /// The leader lease: a leader that cannot reach a majority for this
    /// long stops accepting writes; a follower that hears nothing for this
    /// long starts an election.
    pub lease: Duration,
    /// How far a follower's last leader contact may lag before its reads
    /// are refused (and `/readyz` reports 503).
    pub staleness_bound: Duration,
}

struct Inner {
    role: ClusterRole,
    term: u64,
    /// Advertised base URL of the node believed to be leader (self, when
    /// leading) — the hint carried by `not_leader` refusals.
    leader: Option<String>,
    /// Highest term this node has granted a vote in, with the candidate it
    /// went to: one grant per term, so two candidates racing the same term
    /// cannot both claim this node's vote.
    voted_term: u64,
    voted_for: Option<String>,
    /// Followers: last heartbeat/segment from the leader. Leaders: last
    /// majority acknowledgement (the lease renewal). Candidates: when the
    /// election started. Drives the **election timer** only.
    last_contact: Instant,
    /// Last contact that proves this node's view of committed data is
    /// current: a shipped segment/heartbeat, or leading with a live lease.
    /// Drives the **read-staleness guard** — unlike `last_contact` it is
    /// *not* reset by standing for election, so a minority-partitioned
    /// node that keeps electing itself still goes stale and refuses reads.
    last_leader_contact: Instant,
    elections_started: u64,
}

/// The live cluster state of one node. All transitions take `&self`;
/// the driver, the request router, `/readyz`, and the UI share one handle.
pub struct ClusterState {
    config: ClusterConfig,
    /// This node's externally reachable base URL (known only after the
    /// listener binds, hence not part of the static config).
    advertise: Mutex<String>,
    inner: Mutex<Inner>,
}

impl ClusterState {
    /// A fresh node: follower at term 0, lease clock started now.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterState {
            config,
            advertise: Mutex::new(String::new()),
            inner: Mutex::new(Inner {
                role: ClusterRole::Follower,
                term: 0,
                leader: None,
                voted_term: 0,
                voted_for: None,
                last_contact: Instant::now(),
                last_leader_contact: Instant::now(),
                elections_started: 0,
            }),
        }
    }

    /// This node's configured identifier.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// The configured leader lease.
    pub fn lease(&self) -> Duration {
        self.config.lease
    }

    /// The configured follower-read staleness bound.
    pub fn staleness_bound(&self) -> Duration {
        self.config.staleness_bound
    }

    /// Records this node's reachable base URL once the listener is bound.
    pub fn set_advertise(&self, url: &str) {
        *self.advertise.lock() = url.trim_end_matches('/').to_string();
    }

    /// This node's reachable base URL (empty until bound).
    pub fn advertise(&self) -> String {
        self.advertise.lock().clone()
    }

    /// Current role.
    pub fn role(&self) -> ClusterRole {
        self.inner.lock().role
    }

    /// Current term (the fencing token stamped on every cluster message).
    pub fn term(&self) -> u64 {
        self.inner.lock().term
    }

    /// True when this node is the leader.
    pub fn is_leader(&self) -> bool {
        self.inner.lock().role == ClusterRole::Leader
    }

    /// The advertised URL of the node currently believed to lead (self
    /// when leading) — the `not_leader` redirect hint.
    pub fn leader_hint(&self) -> Option<String> {
        self.inner.lock().leader.clone()
    }

    /// Elections this node has started (the `elections` counter).
    pub fn elections_started(&self) -> u64 {
        self.inner.lock().elections_started
    }

    /// Replication lag as seen by readiness: time since the last leader
    /// contact for followers/candidates, zero for the leader itself.
    pub fn lag(&self, now: Instant) -> Duration {
        let inner = self.inner.lock();
        match inner.role {
            ClusterRole::Leader => Duration::ZERO,
            _ => now.saturating_duration_since(inner.last_leader_contact),
        }
    }

    /// True when this non-leader's reads must be refused: the last leader
    /// contact is older than the staleness bound, so serving a read could
    /// hide arbitrarily many committed writes.
    pub fn is_stale(&self, now: Instant) -> bool {
        let inner = self.inner.lock();
        inner.role != ClusterRole::Leader
            && now.saturating_duration_since(inner.last_leader_contact)
                > self.config.staleness_bound
    }

    /// True when a full lease has passed since the last contact — a
    /// follower should stand for election, a leader should stop accepting
    /// writes (it can no longer prove it was not deposed).
    pub fn lease_expired(&self, now: Instant) -> bool {
        let inner = self.inner.lock();
        now.saturating_duration_since(inner.last_contact) >= self.config.lease
    }

    /// A replicated segment (or heartbeat) arrived claiming leadership at
    /// `term`. Refused with this node's current term when `term` regresses
    /// — the fencing that stops a deposed leader's late segments. On
    /// success the node (re)settles as follower under `leader` and its
    /// lease clock resets.
    pub fn observe_leader(&self, term: u64, leader: &str) -> Result<(), u64> {
        let mut inner = self.inner.lock();
        if term < inner.term {
            return Err(inner.term);
        }
        inner.term = term;
        inner.role = ClusterRole::Follower;
        inner.leader = Some(leader.to_string());
        inner.last_contact = Instant::now();
        inner.last_leader_contact = inner.last_contact;
        Ok(())
    }

    /// A peer reported a higher term (vote response, replicate ack): adopt
    /// it and step down to follower. No-op when `term` does not exceed the
    /// current one.
    pub fn observe_term(&self, term: u64) {
        let mut inner = self.inner.lock();
        if term > inner.term {
            inner.term = term;
            inner.role = ClusterRole::Follower;
            inner.leader = None;
        }
    }

    /// Decides a vote request: `(granted, current_term)`.
    ///
    /// Granted only when all of these hold, closing the double-grant race:
    /// * `term` is ahead of (or re-asking in) the term this node last
    ///   voted in — one candidate per term gets this node's vote;
    /// * the candidate's replication offset is at least this node's — a
    ///   behind replica must not lead (committed writes would vanish);
    /// * this node's own leader lease has expired — a connected follower
    ///   refuses to depose a live leader.
    pub fn grant_vote(
        &self,
        term: u64,
        candidate: &str,
        candidate_offset: u64,
        own_offset: u64,
    ) -> (bool, u64) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if term < inner.term || candidate_offset < own_offset {
            return (false, inner.term);
        }
        let lease_live = now.saturating_duration_since(inner.last_contact) < self.config.lease;
        if inner.leader.is_some() && lease_live {
            return (false, inner.term);
        }
        let already_voted = inner.voted_term >= term
            && !(inner.voted_term == term && inner.voted_for.as_deref() == Some(candidate));
        if already_voted {
            return (false, inner.term);
        }
        inner.term = term;
        inner.voted_term = term;
        inner.voted_for = Some(candidate.to_string());
        inner.role = ClusterRole::Follower;
        inner.leader = None;
        // Granting resets the election timer: the voter defers to the
        // candidate instead of immediately standing itself.
        inner.last_contact = now;
        (true, inner.term)
    }

    /// True when the election timer has fired: a full lease plus this
    /// node's `jitter` has passed since the last contact (leader contact,
    /// vote grant, or own previous election). Separate from [`Self::lag`]
    /// so repeated failed elections pace themselves without ever masking
    /// read staleness.
    pub fn election_due(&self, now: Instant, jitter: Duration) -> bool {
        let inner = self.inner.lock();
        now.saturating_duration_since(inner.last_contact) >= self.config.lease + jitter
    }

    /// Starts an election: bumps the term, votes for self, becomes a
    /// candidate. Returns the new term to stamp on vote requests.
    pub fn start_election(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.term += 1;
        inner.role = ClusterRole::Candidate;
        inner.leader = None;
        inner.voted_term = inner.term;
        inner.voted_for = Some(self.config.node_id.clone());
        inner.last_contact = Instant::now();
        inner.elections_started += 1;
        inner.term
    }

    /// A majority granted the election started at `term`. Returns `false`
    /// (no-op) when the moment has passed — a higher term arrived while
    /// votes were in flight.
    pub fn win_election(&self, term: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.role != ClusterRole::Candidate || inner.term != term {
            return false;
        }
        inner.role = ClusterRole::Leader;
        inner.leader = Some(self.advertise.lock().clone());
        inner.last_contact = Instant::now();
        inner.last_leader_contact = inner.last_contact;
        true
    }

    /// The leader reached a majority this round: its lease renews.
    pub fn renew_lease(&self) {
        let mut inner = self.inner.lock();
        if inner.role == ClusterRole::Leader {
            inner.last_contact = Instant::now();
            inner.last_leader_contact = inner.last_contact;
        }
    }

    /// Steps down to follower (lease expired without a majority, or a
    /// fencing refusal proved a newer leader exists). Keeps the term.
    pub fn step_down(&self) {
        let mut inner = self.inner.lock();
        inner.role = ClusterRole::Follower;
        inner.leader = None;
    }
}

/// Checksum stamped on every shipped replication segment (FNV-1a 64).
/// Verified before install, so a frame corrupted in flight refuses the
/// whole segment rather than poisoning the follower's store.
pub fn segment_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic per-node election jitter in `[0, lease)`: nodes whose
/// leases expire together must not all stand at once, and a reproducible
/// schedule (node id + term, no wall clock) keeps seeded cluster chaos
/// runs replayable.
pub fn election_jitter(node_id: &str, term: u64, lease: Duration) -> Duration {
    let mut hash = segment_checksum(node_id.as_bytes()) ^ term.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // One xorshift round spreads consecutive terms across the range.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    lease.mul_f64((hash % 1024) as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(lease_ms: u64) -> ClusterState {
        ClusterState::new(ClusterConfig {
            node_id: "n1".into(),
            lease: Duration::from_millis(lease_ms),
            staleness_bound: Duration::from_millis(lease_ms * 2),
        })
    }

    #[test]
    fn term_regress_is_fenced() {
        let s = state(10_000);
        s.observe_leader(5, "http://a").unwrap();
        assert_eq!(s.term(), 5);
        assert_eq!(s.observe_leader(4, "http://b"), Err(5), "stale leader must be refused");
        assert_eq!(s.leader_hint().as_deref(), Some("http://a"));
        s.observe_leader(5, "http://a").unwrap(); // same term renews
        s.observe_leader(7, "http://b").unwrap(); // newer term re-points
        assert_eq!(s.leader_hint().as_deref(), Some("http://b"));
    }

    #[test]
    fn one_vote_per_term_closes_double_grant_race() {
        let s = state(0); // lease 0: always expired, votes are free
        assert_eq!(s.grant_vote(3, "a", 10, 10), (true, 3));
        // Re-ask by the same candidate is idempotent …
        assert_eq!(s.grant_vote(3, "a", 10, 10), (true, 3));
        // … but a rival racing the same term is refused.
        assert_eq!(s.grant_vote(3, "b", 10, 10), (false, 3));
        // A later term opens a fresh vote.
        assert_eq!(s.grant_vote(4, "b", 10, 10), (true, 4));
    }

    #[test]
    fn behind_candidates_and_live_leaders_block_votes() {
        let s = state(60_000);
        // Candidate behind this node's replication offset: refused.
        assert_eq!(s.grant_vote(2, "a", 5, 10), (false, 0));
        // A live leader lease also blocks the vote.
        s.observe_leader(2, "http://leader").unwrap();
        assert_eq!(s.grant_vote(3, "a", 10, 10), (false, 2));
    }

    #[test]
    fn votes_flow_once_the_lease_expires() {
        let s = state(1);
        s.observe_leader(2, "http://leader").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(s.lease_expired(Instant::now()));
        assert_eq!(s.grant_vote(3, "a", 10, 10), (true, 3));
    }

    #[test]
    fn election_lifecycle() {
        let s = state(10_000);
        s.set_advertise("http://self/");
        let term = s.start_election();
        assert_eq!(term, 1);
        assert_eq!(s.role(), ClusterRole::Candidate);
        assert_eq!(s.elections_started(), 1);
        assert!(s.win_election(term));
        assert!(s.is_leader());
        assert_eq!(s.leader_hint().as_deref(), Some("http://self"));
        assert_eq!(s.lag(Instant::now()), Duration::ZERO);
        // A stale win (term moved on) is a no-op.
        s.observe_term(term + 1);
        assert_eq!(s.role(), ClusterRole::Follower);
        assert!(!s.win_election(term));
    }

    #[test]
    fn staleness_tracks_leader_contact() {
        let s = state(1);
        s.observe_leader(1, "http://leader").unwrap();
        assert!(!s.is_stale(Instant::now()));
        std::thread::sleep(Duration::from_millis(6));
        assert!(s.is_stale(Instant::now()), "no contact past the bound means stale");
        s.observe_leader(1, "http://leader").unwrap();
        assert!(!s.is_stale(Instant::now()), "a heartbeat clears staleness");
    }

    #[test]
    fn standing_for_election_does_not_mask_staleness() {
        // A minority-partitioned node keeps starting elections it cannot
        // win; each one resets the election timer but must NOT reset the
        // read-staleness clock, or the partitioned node would serve its
        // frozen store forever.
        let s = state(1);
        s.observe_leader(1, "http://leader").unwrap();
        std::thread::sleep(Duration::from_millis(6));
        s.start_election();
        assert!(
            !s.election_due(Instant::now(), Duration::ZERO),
            "standing resets the election timer"
        );
        assert!(s.is_stale(Instant::now()), "standing must not reset the staleness clock");
        assert!(s.lag(Instant::now()) >= Duration::from_millis(6));
    }

    #[test]
    fn checksum_and_jitter_are_deterministic() {
        assert_eq!(segment_checksum(b"chronos"), segment_checksum(b"chronos"));
        assert_ne!(segment_checksum(b"chronos"), segment_checksum(b"chrono\x73x"));
        let lease = Duration::from_millis(500);
        assert_eq!(election_jitter("n1", 3, lease), election_jitter("n1", 3, lease));
        assert!(election_jitter("n1", 3, lease) < lease);
        // Different nodes spread out (holds for these inputs by design).
        assert_ne!(election_jitter("n1", 3, lease), election_jitter("n2", 3, lease));
    }
}
