//! The embedded metadata store behind Chronos Control.
//!
//! The original Chronos Control keeps its entities in MySQL/MariaDB; this
//! reproduction embeds a small log-structured document store instead: all
//! entities live in memory (kind → id → JSON document) and every mutation is
//! appended to a JSON-lines log. Re-opening the store replays the log —
//! including after a crash mid-append (the torn tail is discarded) — which
//! is what lets Chronos Control itself be restarted under long-running
//! evaluations (requirement *(iii)*).
//!
//! # Concurrency design
//!
//! The store sits on the control-plane hot path (every API request and every
//! agent heartbeat funnels through it), so it is built for concurrent access
//! rather than a single global mutex:
//!
//! * **Per-kind sharding.** Each kind (`job`, `evaluation`, …) owns an
//!   independently locked shard, so writers to different kinds never
//!   contend, and readers take shard read locks that admit each other.
//! * **`Arc<Value>` documents.** `get`/`list` return reference-counted
//!   handles; reads copy a pointer instead of deep-cloning documents.
//! * **Group-commit WAL.** Mutations serialize their log frame *outside*
//!   any lock, enqueue it while holding only their shard's write lock
//!   (which fixes the per-key replay order), then batch-append: whichever
//!   thread acquires the log next writes every queued frame with a single
//!   `write_all`. Contention therefore *increases* batching instead of
//!   queuing convoys behind per-record writes.
//! * **Background compaction.** An optional record-count threshold triggers
//!   log compaction on a helper thread; readers and in-memory writers keep
//!   going while it runs (writers only wait at the durability step).
//!
//! A log write failure is sticky: the store keeps serving reads, but every
//! subsequent mutation fails with the original error, so memory and log
//! cannot silently diverge further than the batch that broke.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use chronos_json::Value;

use crate::error::{CoreError, CoreResult};

type Docs = BTreeMap<String, Arc<Value>>;

/// One kind's documents, with its own lock.
#[derive(Default)]
struct Shard {
    docs: RwLock<Docs>,
}

/// Frames waiting to be appended to the log, in commit order.
#[derive(Default)]
struct WalQueue {
    frames: Vec<(u64, Vec<u8>)>,
    next_seq: u64,
}

/// The append side of the log. Guarded by one mutex: whoever holds it
/// drains the queue and writes the whole batch at once.
struct WalFile {
    file: File,
    path: PathBuf,
    /// Highest sequence number durably written (or folded into a
    /// compaction snapshot).
    written_seq: u64,
    /// Records in the log file right now.
    records: u64,
    /// First write error, kept verbatim; set once, never cleared.
    error: Option<String>,
    /// Reusable batch buffer so steady-state flushes don't allocate.
    scratch: Vec<u8>,
}

struct Wal {
    queue: Mutex<WalQueue>,
    file: Mutex<WalFile>,
    /// Mirror of `WalFile::error.is_some()`, checkable without the lock.
    failed: AtomicBool,
}

/// The in-memory replication feed: every committed frame, in commit
/// order, addressed by a monotone byte offset. Leaders read contiguous
/// ranges out of it to ship to followers; followers append the exact
/// shipped bytes on install, so offsets are comparable across nodes
/// (a follower's feed is always a byte prefix of its leader's).
#[derive(Default)]
struct ReplicationFeed {
    /// Offset of the first byte still retained in `buf`.
    start: u64,
    buf: Vec<u8>,
}

impl ReplicationFeed {
    fn end(&self) -> u64 {
        self.start + self.buf.len() as u64
    }
}

struct Shared {
    shards: RwLock<BTreeMap<String, Arc<Shard>>>,
    /// `None` for purely in-memory stores.
    wal: Option<Wal>,
    /// Frames committed by this node, for shipping to follower replicas.
    replication: Mutex<ReplicationFeed>,
    /// Mutation counter for in-memory stores (mirrors `records` semantics).
    mem_records: AtomicU64,
    /// Live documents across all shards (maintained incrementally).
    live_docs: AtomicU64,
    /// Auto-compaction record threshold; 0 disables.
    auto_compact_threshold: AtomicU64,
    /// True while a background compaction is scheduled or running.
    compacting: AtomicBool,
}

/// A persistent (or in-memory) document store keyed by `(kind, id)`.
pub struct MetadataStore {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for MetadataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataStore")
            .field("persistent", &self.shared.wal.is_some())
            .field("live_docs", &self.live_docs())
            .finish()
    }
}

impl MetadataStore {
    /// A purely in-memory store (tests, benches).
    pub fn in_memory() -> Self {
        MetadataStore { shared: Arc::new(Shared::new(BTreeMap::new(), None)) }
    }

    /// Opens a store logged at `path`, replaying any existing log.
    ///
    /// Replay propagates real I/O errors. A record that fails to *parse*
    /// is discarded only when it is the final line — the torn tail of a
    /// crashed append; garbage in the middle of the log is corruption and
    /// fails the open.
    pub fn open(path: &Path) -> CoreResult<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut kinds: BTreeMap<String, Docs> = BTreeMap::new();
        let mut records = 0u64;
        let mut valid_bytes = 0u64;
        let mut torn_tail = false;
        match File::open(path) {
            Ok(file) => {
                let mut reader = BufReader::new(file);
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        break;
                    }
                    if !line.ends_with('\n') {
                        // Acknowledged appends always end in a newline; a
                        // final line without one is the torn tail of an
                        // unacknowledged write even when it happens to parse.
                        torn_tail = true;
                        break;
                    }
                    match chronos_json::parse(line.trim_end_matches(['\n', '\r'])) {
                        Ok(entry) => {
                            records += 1;
                            valid_bytes += line.len() as u64;
                            apply(&mut kinds, entry);
                        }
                        Err(parse_err) => {
                            if reader.fill_buf()?.is_empty() {
                                torn_tail = true;
                                break; // torn tail after a crash: stop replay
                            }
                            return Err(CoreError::Storage(format!(
                                "corrupt log record {} in {}: {parse_err}",
                                records + 1,
                                path.display(),
                            )));
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        if torn_tail {
            // Chop the torn bytes off the file, not just the replay: the
            // log is append-only, and appending after a partial record
            // would corrupt it for every later recovery.
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_bytes)?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // A freshly created log file is only durable once its directory
        // entry is synced; otherwise a crash can lose the file itself.
        sync_parent_dir(path)?;
        let wal = Wal {
            queue: Mutex::new(WalQueue::default()),
            file: Mutex::new(WalFile {
                file,
                path: path.to_path_buf(),
                written_seq: 0,
                records,
                error: None,
                scratch: Vec::new(),
            }),
            failed: AtomicBool::new(false),
        };
        Ok(MetadataStore { shared: Arc::new(Shared::new(kinds, Some(wal))) })
    }

    /// Stores (inserting or replacing) a document.
    pub fn put(&self, kind: &str, id: &str, document: Value) -> CoreResult<()> {
        let shared = &self.shared;
        let document = Arc::new(document);
        // All serialization work happens before any lock is taken.
        let frame = frame_put(kind, id, &document);
        let Some(wal) = &shared.wal else {
            let shard = shared.shard(kind);
            let previous;
            {
                let mut docs = shard.docs.write();
                shared.replication.lock().buf.extend_from_slice(&frame);
                previous = docs.insert(id.to_string(), document);
            }
            if previous.is_none() {
                shared.live_docs.fetch_add(1, Ordering::Relaxed);
            }
            shared.mem_records.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        wal.check_failed()?;
        let shard = shared.shard(kind);
        let seq;
        let previous;
        {
            // Enqueueing under the shard write lock pins the log order of
            // same-key frames to their in-memory apply order; the
            // replication feed sees the same bytes in the same order.
            let mut docs = shard.docs.write();
            shared.replication.lock().buf.extend_from_slice(&frame);
            seq = wal.enqueue(frame);
            previous = docs.insert(id.to_string(), document);
        }
        if previous.is_none() {
            shared.live_docs.fetch_add(1, Ordering::Relaxed);
        }
        wal.flush_through(seq)?;
        self.maybe_schedule_compaction();
        Ok(())
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&self, kind: &str, id: &str) -> CoreResult<bool> {
        let shared = &self.shared;
        let Some(shard) = shared.shard_if_exists(kind) else { return Ok(false) };
        let frame = frame_delete(kind, id);
        let Some(wal) = &shared.wal else {
            let existed;
            {
                let mut docs = shard.docs.write();
                existed = docs.remove(id).is_some();
                if existed {
                    shared.replication.lock().buf.extend_from_slice(&frame);
                }
            }
            if existed {
                shared.live_docs.fetch_sub(1, Ordering::Relaxed);
                shared.mem_records.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(existed);
        };
        wal.check_failed()?;
        let seq;
        {
            let mut docs = shard.docs.write();
            if !docs.contains_key(id) {
                return Ok(false);
            }
            shared.replication.lock().buf.extend_from_slice(&frame);
            seq = wal.enqueue(frame);
            docs.remove(id);
        }
        shared.live_docs.fetch_sub(1, Ordering::Relaxed);
        wal.flush_through(seq)?;
        self.maybe_schedule_compaction();
        Ok(true)
    }

    /// Fetches a document (a cheap reference-counted handle).
    pub fn get(&self, kind: &str, id: &str) -> Option<Arc<Value>> {
        self.shared.shard_if_exists(kind)?.docs.read().get(id).cloned()
    }

    /// All documents of a kind, in id order (reference-counted handles).
    pub fn list(&self, kind: &str) -> Vec<Arc<Value>> {
        match self.shared.shard_if_exists(kind) {
            Some(shard) => shard.docs.read().values().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// All ids of a kind, in order.
    pub fn ids(&self, kind: &str) -> Vec<String> {
        match self.shared.shard_if_exists(kind) {
            Some(shard) => shard.docs.read().keys().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Number of documents of a kind.
    pub fn count(&self, kind: &str) -> usize {
        match self.shared.shard_if_exists(kind) {
            Some(shard) => shard.docs.read().len(),
            None => 0,
        }
    }

    /// Records in the log right now (for persistent stores), or mutations
    /// accepted (for in-memory stores). Drops back to the live-document
    /// count after [`compact`](MetadataStore::compact).
    pub fn log_records(&self) -> u64 {
        match &self.shared.wal {
            Some(wal) => wal.file.lock().records,
            None => self.shared.mem_records.load(Ordering::Relaxed),
        }
    }

    /// Live documents across all kinds.
    pub fn live_docs(&self) -> u64 {
        self.shared.live_docs.load(Ordering::Relaxed)
    }

    /// End offset of this node's replication feed: the total bytes of
    /// committed frames available for shipping to follower replicas.
    pub fn replication_offset(&self) -> u64 {
        self.shared.replication.lock().end()
    }

    /// Reads a contiguous, frame-aligned segment of the replication feed
    /// starting at byte offset `from`. Returns `None` when `from` lies
    /// outside the retained feed (a replica that far behind needs a fresh
    /// seed, not a segment); returns an empty segment when the replica is
    /// caught up. Segments are cut at frame boundaries — at most
    /// `max_bytes` unless a single frame is larger, which ships whole.
    pub fn read_replication(&self, from: u64, max_bytes: usize) -> Option<Vec<u8>> {
        let feed = self.shared.replication.lock();
        if from < feed.start || from > feed.end() {
            return None;
        }
        let avail = &feed.buf[(from - feed.start) as usize..];
        if avail.len() <= max_bytes {
            return Some(avail.to_vec());
        }
        // Cut on the last newline inside the budget; an oversized single
        // frame extends past the budget rather than stalling forever.
        let cut = match avail[..max_bytes].iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => avail[max_bytes..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|j| max_bytes + j + 1)
                .unwrap_or(avail.len()),
        };
        Some(avail[..cut].to_vec())
    }

    /// Applies a shipped replication segment to this (follower) store,
    /// returning the number of bytes applied.
    ///
    /// The whole segment is parsed *before* any mutation, so a corrupt
    /// frame refuses the install with the store byte-identical to its
    /// state before the call. A torn tail — trailing bytes after the last
    /// complete frame, the install-side analogue of the WAL's torn-tail
    /// recovery — is not an error: the complete prefix applies and the
    /// returned count excludes the tail, which the leader re-ships.
    /// Applied frames are re-appended to this node's own WAL and
    /// replication feed, so a promoted follower can ship onward.
    pub fn install_replication(&self, payload: &[u8]) -> CoreResult<u64> {
        if let Some(wal) = &self.shared.wal {
            wal.check_failed()?;
        }
        let complete = payload.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let mut entries: Vec<(usize, usize, ReplayEntry)> = Vec::new();
        let mut pos = 0usize;
        while pos < complete {
            // Safe unwrap: `complete` ends on a newline by construction.
            let end = pos + payload[pos..complete].iter().position(|&b| b == b'\n').unwrap() + 1;
            let entry = std::str::from_utf8(&payload[pos..end])
                .ok()
                .and_then(|text| chronos_json::parse(text.trim_end_matches(['\n', '\r'])).ok())
                .and_then(decode_entry)
                .ok_or_else(|| {
                    CoreError::Storage(format!(
                        "corrupt replicated frame {} in segment (install refused)",
                        entries.len() + 1
                    ))
                })?;
            entries.push((pos, end, entry));
            pos = end;
        }
        let mut last_seq = 0u64;
        for (lo, hi, entry) in entries {
            self.apply_replicated(&payload[lo..hi], entry, &mut last_seq);
        }
        if last_seq > 0 {
            if let Some(wal) = &self.shared.wal {
                wal.flush_through(last_seq)?;
            }
        }
        self.maybe_schedule_compaction();
        Ok(complete as u64)
    }

    /// Applies one verified replicated frame, re-appending its exact bytes
    /// to the local WAL queue and replication feed (keeping this node's
    /// feed a byte prefix of its leader's).
    fn apply_replicated(&self, line: &[u8], entry: ReplayEntry, last_seq: &mut u64) {
        let shared = &self.shared;
        match entry {
            ReplayEntry::Put { kind, id, doc } => {
                let shard = shared.shard(&kind);
                let previous;
                {
                    let mut docs = shard.docs.write();
                    shared.replication.lock().buf.extend_from_slice(line);
                    if let Some(wal) = &shared.wal {
                        *last_seq = wal.enqueue(line.to_vec());
                    }
                    previous = docs.insert(id, Arc::new(doc));
                }
                if previous.is_none() {
                    shared.live_docs.fetch_add(1, Ordering::Relaxed);
                }
            }
            ReplayEntry::Delete { kind, id } => {
                // The frame lands in the feed and WAL even when the target
                // is already gone: every shipped byte must re-ship
                // identically or follower offsets diverge.
                let shard = shared.shard(&kind);
                let existed;
                {
                    let mut docs = shard.docs.write();
                    shared.replication.lock().buf.extend_from_slice(line);
                    if let Some(wal) = &shared.wal {
                        *last_seq = wal.enqueue(line.to_vec());
                    }
                    existed = docs.remove(&id).is_some();
                }
                if existed {
                    shared.live_docs.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        if shared.wal.is_none() {
            shared.mem_records.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the store can still accept writes: `false` once the WAL has
    /// hit its sticky failure (every subsequent write is refused until the
    /// process restarts on a repaired log). Lock-free — this backs the
    /// control plane's `/readyz` probe, which must stay cheap under load.
    /// In-memory stores are always healthy.
    pub fn healthy(&self) -> bool {
        match &self.shared.wal {
            Some(wal) => !wal.failed.load(Ordering::Acquire),
            None => true,
        }
    }

    /// Enables automatic background compaction once the log holds at
    /// least `threshold` records (and at least twice the live document
    /// count, so a large working set cannot trigger a compaction loop).
    /// `0` disables; disabled is the default.
    pub fn set_auto_compact_threshold(&self, threshold: u64) {
        self.shared.auto_compact_threshold.store(threshold, Ordering::Relaxed);
    }

    /// Rewrites the log to contain exactly the live documents.
    ///
    /// Runs concurrently with reads and with the in-memory half of
    /// writes; writers block only at their durability step. Queued frames
    /// are folded into the snapshot (their effects are already visible in
    /// memory), and frames enqueued during the rewrite land in the fresh
    /// log afterwards — replay applies them on top of the snapshot, which
    /// is idempotent because puts and deletes are absolute.
    pub fn compact(&self) -> CoreResult<()> {
        compact_shared(&self.shared)
    }

    fn maybe_schedule_compaction(&self) {
        let shared = &self.shared;
        if !wants_compaction(shared) {
            return;
        }
        if shared.compacting.swap(true, Ordering::AcqRel) {
            return; // one compaction at a time
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || loop {
            if let Err(err) = compact_shared(&shared) {
                // Surface the failure the same way a broken append would.
                if let Some(wal) = &shared.wal {
                    wal.fail(format!("background compaction failed: {err}"));
                }
                shared.compacting.store(false, Ordering::Release);
                break;
            }
            shared.compacting.store(false, Ordering::Release);
            // Writers that mutated while the flag was up skipped
            // scheduling entirely, so the log could sit above threshold
            // with no future trigger; re-check before retiring (the swap
            // loses to any concurrent scheduler, which then owns the run).
            if !wants_compaction(&shared) || shared.compacting.swap(true, Ordering::AcqRel) {
                break;
            }
        });
    }
}

impl Shared {
    fn new(kinds: BTreeMap<String, Docs>, wal: Option<Wal>) -> Self {
        let live: usize = kinds.values().map(BTreeMap::len).sum();
        let shards = kinds
            .into_iter()
            .map(|(kind, docs)| (kind, Arc::new(Shard { docs: RwLock::new(docs) })))
            .collect();
        Shared {
            shards: RwLock::new(shards),
            wal,
            replication: Mutex::new(ReplicationFeed::default()),
            mem_records: AtomicU64::new(0),
            live_docs: AtomicU64::new(live as u64),
            auto_compact_threshold: AtomicU64::new(0),
            compacting: AtomicBool::new(false),
        }
    }

    /// The shard for `kind`, creating it on first write.
    fn shard(&self, kind: &str) -> Arc<Shard> {
        if let Some(shard) = self.shards.read().get(kind) {
            return Arc::clone(shard);
        }
        let mut shards = self.shards.write();
        Arc::clone(shards.entry(kind.to_string()).or_default())
    }

    /// The shard for `kind` if any document of that kind was ever stored.
    fn shard_if_exists(&self, kind: &str) -> Option<Arc<Shard>> {
        self.shards.read().get(kind).map(Arc::clone)
    }

    /// A point-in-time handle list of every shard.
    fn snapshot_shards(&self) -> Vec<(String, Arc<Shard>)> {
        self.shards.read().iter().map(|(k, s)| (k.clone(), Arc::clone(s))).collect()
    }
}

impl Wal {
    /// Fast-path check for a previously failed log.
    fn check_failed(&self) -> CoreResult<()> {
        if self.failed.load(Ordering::Acquire) {
            let detail = self
                .file
                .lock()
                .error
                .clone()
                .unwrap_or_else(|| "log previously failed".to_string());
            return Err(CoreError::Storage(detail));
        }
        Ok(())
    }

    /// Marks the log permanently failed.
    fn fail(&self, detail: String) {
        let mut file = self.file.lock();
        if file.error.is_none() {
            file.error = Some(detail);
        }
        self.failed.store(true, Ordering::Release);
    }

    /// Adds a frame to the commit queue, returning its sequence number.
    fn enqueue(&self, frame: Vec<u8>) -> u64 {
        let mut queue = self.queue.lock();
        queue.next_seq += 1;
        let seq = queue.next_seq;
        queue.frames.push((seq, frame));
        seq
    }

    /// Group commit: returns once the frame with `seq` is written. The
    /// thread that wins the file lock writes *every* queued frame in one
    /// `write_all`; the rest observe `written_seq` and return.
    fn flush_through(&self, seq: u64) -> CoreResult<()> {
        let mut file = self.file.lock();
        if let Some(err) = &file.error {
            return Err(CoreError::Storage(err.clone()));
        }
        if file.written_seq >= seq {
            return Ok(());
        }
        let frames = std::mem::take(&mut self.queue.lock().frames);
        debug_assert!(!frames.is_empty(), "unwritten seq implies queued frames");
        let Some(&(last_seq, _)) = frames.last() else { return Ok(()) };

        let file = &mut *file;
        file.scratch.clear();
        for (_, frame) in &frames {
            file.scratch.extend_from_slice(frame);
        }
        if let Some(inj) = chronos_util::fail_eval!("core.store.wal.append") {
            let detail = match inj {
                chronos_util::fail::Injected::Torn { keep } => {
                    // Crash mid-write: part of the batch reaches the disk,
                    // nothing is acknowledged.
                    let keep = keep.min(file.scratch.len());
                    let _ = file.file.write_all(&file.scratch[..keep]);
                    let _ = file.file.sync_data();
                    format!("log append torn after {keep} bytes (injected)")
                }
                chronos_util::fail::Injected::Error(msg) => format!("log append failed: {msg}"),
            };
            file.error = Some(detail.clone());
            self.failed.store(true, Ordering::Release);
            return Err(CoreError::Storage(detail));
        }
        match file.file.write_all(&file.scratch) {
            Ok(()) => {
                file.written_seq = last_seq;
                // Counted only after the write succeeded, so a failed
                // append can never inflate the record count.
                file.records += frames.len() as u64;
                Ok(())
            }
            Err(e) => {
                let detail = format!("log append failed: {e}");
                file.error = Some(detail.clone());
                self.failed.store(true, Ordering::Release);
                Err(CoreError::Storage(detail))
            }
        }
    }
}

/// True when the auto-compaction policy says the log is worth rewriting:
/// at least `threshold` records, and at least twice the live document
/// count (so a large working set cannot trigger a rewrite loop).
fn wants_compaction(shared: &Shared) -> bool {
    let threshold = shared.auto_compact_threshold.load(Ordering::Relaxed);
    if threshold == 0 {
        return false;
    }
    let Some(wal) = &shared.wal else { return false };
    let records = wal.file.lock().records;
    let live = shared.live_docs.load(Ordering::Relaxed);
    records >= threshold && records >= live.saturating_mul(2)
}

fn compact_shared(shared: &Shared) -> CoreResult<()> {
    let Some(wal) = &shared.wal else { return Ok(()) };
    // Holding the file lock for the whole rewrite: flushers queue behind
    // it and their frames land in the fresh log. Readers and the
    // in-memory half of writes are untouched.
    let mut file = wal.file.lock();
    if let Some(err) = &file.error {
        return Err(CoreError::Storage(err.clone()));
    }
    // Effects of already-queued frames are visible in memory (apply and
    // enqueue are atomic under the shard lock), so the snapshot subsumes
    // them; drop the frames and mark them written.
    let drained = std::mem::take(&mut wal.queue.lock().frames);
    if let Some(&(last_seq, _)) = drained.last() {
        file.written_seq = file.written_seq.max(last_seq);
    }

    let tmp = file.path.with_extension("compact-tmp");
    let mut live = 0u64;
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        let mut frame = String::new();
        for (kind, shard) in shared.snapshot_shards() {
            // Brief per-shard read lock; writers to other shards proceed.
            let docs = shard.docs.read();
            for (id, doc) in docs.iter() {
                frame.clear();
                frame_put_into(&mut frame, &kind, id, doc);
                out.write_all(frame.as_bytes())?;
                live += 1;
            }
        }
        out.flush()?;
        if let Some(inj) = chronos_util::fail_eval!("core.store.compact.sync") {
            return Err(CoreError::Storage(injected_io(inj, "compaction sync")));
        }
        out.get_ref().sync_data()?;
    }
    if let Some(inj) = chronos_util::fail_eval!("core.store.compact.rename") {
        return Err(CoreError::Storage(injected_io(inj, "compaction rename")));
    }
    std::fs::rename(&tmp, &file.path)?;
    // The rename is only durable once the directory entry is synced; a
    // crash right after the rename could otherwise resurrect the old log.
    sync_parent_dir(&file.path)?;
    file.file = OpenOptions::new().append(true).open(&file.path)?;
    file.records = live;
    Ok(())
}

/// Fsyncs the directory containing `path`, making a just-created or
/// just-renamed entry itself durable across a crash.
fn sync_parent_dir(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(inj) = chronos_util::fail_eval!("core.store.dir.fsync") {
        return Err(std::io::Error::other(injected_io(inj, "directory fsync")));
    }
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    File::open(parent)?.sync_all()
}

/// Renders an injected fault as an error message for simple (non-torn-
/// capable) sites, where a torn policy degrades to a plain error.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn injected_io(inj: chronos_util::fail::Injected, what: &str) -> String {
    match inj {
        chronos_util::fail::Injected::Error(msg) => format!("{what} failed: {msg}"),
        chronos_util::fail::Injected::Torn { .. } => format!("{what} failed: injected torn write"),
    }
}

/// Serializes a put record (`{"op":"put",...}\n`) into `out` without
/// cloning the document.
fn frame_put_into(out: &mut String, kind: &str, id: &str, doc: &Value) {
    out.push_str("{\"op\":\"put\",\"kind\":");
    chronos_json::write_string(out, kind);
    out.push_str(",\"id\":");
    chronos_json::write_string(out, id);
    out.push_str(",\"doc\":");
    doc.write_into(out);
    out.push_str("}\n");
}

fn frame_put(kind: &str, id: &str, doc: &Value) -> Vec<u8> {
    let mut out = String::with_capacity(64);
    frame_put_into(&mut out, kind, id, doc);
    out.into_bytes()
}

fn frame_delete(kind: &str, id: &str) -> Vec<u8> {
    let mut out = String::with_capacity(64);
    out.push_str("{\"op\":\"delete\",\"kind\":");
    chronos_json::write_string(&mut out, kind);
    out.push_str(",\"id\":");
    chronos_json::write_string(&mut out, id);
    out.push_str("}\n");
    out.into_bytes()
}

/// A decoded log/replication frame.
enum ReplayEntry {
    Put { kind: String, id: String, doc: Value },
    Delete { kind: String, id: String },
}

fn decode_entry(entry: Value) -> Option<ReplayEntry> {
    let Value::Object(mut map) = entry else { return None };
    let kind = map.get("kind").and_then(Value::as_str).map(str::to_string)?;
    let id = map.get("id").and_then(Value::as_str).map(str::to_string)?;
    match map.get("op").and_then(Value::as_str) {
        Some("put") => map.remove("doc").map(|doc| ReplayEntry::Put { kind, id, doc }),
        Some("delete") => Some(ReplayEntry::Delete { kind, id }),
        _ => None,
    }
}

fn apply(kinds: &mut BTreeMap<String, Docs>, entry: Value) {
    match decode_entry(entry) {
        Some(ReplayEntry::Put { kind, id, doc }) => {
            kinds.entry(kind).or_default().insert(id, Arc::new(doc));
        }
        Some(ReplayEntry::Delete { kind, id }) => {
            if let Some(m) = kinds.get_mut(&kind) {
                m.remove(&id);
            }
        }
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chronos-store-{}-{name}.log", std::process::id()))
    }

    #[test]
    fn in_memory_crud() {
        let store = MetadataStore::in_memory();
        store.put("job", "j1", obj! {"state" => "scheduled"}).unwrap();
        store.put("job", "j2", obj! {"state" => "running"}).unwrap();
        assert_eq!(store.count("job"), 2);
        assert_eq!(
            store.get("job", "j1").unwrap().get("state").and_then(Value::as_str),
            Some("scheduled")
        );
        store.put("job", "j1", obj! {"state" => "finished"}).unwrap();
        assert_eq!(
            store.get("job", "j1").unwrap().get("state").and_then(Value::as_str),
            Some("finished")
        );
        assert!(store.delete("job", "j1").unwrap());
        assert!(!store.delete("job", "j1").unwrap());
        assert_eq!(store.count("job"), 1);
        assert!(store.get("nope", "x").is_none());
        assert_eq!(store.ids("job"), vec!["j2"]);
    }

    #[test]
    fn healthy_tracks_wal_state() {
        assert!(MetadataStore::in_memory().healthy(), "in-memory stores are always healthy");
        let path = tmp("healthy");
        let _ = std::fs::remove_file(&path);
        let store = MetadataStore::open(&path).unwrap();
        store.put("k", "a", obj! {"ok" => true}).unwrap();
        assert!(store.healthy());
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn list_is_id_ordered() {
        let store = MetadataStore::in_memory();
        for id in ["c", "a", "b"] {
            store.put("k", id, obj! {"id" => id}).unwrap();
        }
        let names: Vec<String> = store
            .list("k")
            .iter()
            .map(|d| d.get("id").and_then(Value::as_str).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn persistence_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put("project", "p1", obj! {"name" => "demo"}).unwrap();
            store.put("project", "p2", obj! {"name" => "other"}).unwrap();
            store.delete("project", "p2").unwrap();
        }
        {
            let store = MetadataStore::open(&path).unwrap();
            assert_eq!(store.count("project"), 1);
            assert_eq!(
                store.get("project", "p1").unwrap().get("name").and_then(Value::as_str),
                Some("demo")
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put("k", "a", obj! {"v" => 1}).unwrap();
            store.put("k", "b", obj! {"v" => 2}).unwrap();
        }
        // Chop bytes off the final line.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let store = MetadataStore::open(&path).unwrap();
        assert_eq!(store.count("k"), 1);
        assert!(store.get("k", "a").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_data_loss() {
        let path = tmp("corrupt-middle");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put("k", "a", obj! {"v" => 1}).unwrap();
            store.put("k", "b", obj! {"v" => 2}).unwrap();
            store.put("k", "c", obj! {"v" => 3}).unwrap();
        }
        // Mangle the *middle* record; a torn tail can only be last, so
        // this must fail the open instead of silently replaying half.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{\"op\":\"put\",\"ki";
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = MetadataStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt log record 2"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            for i in 0..50 {
                store.put("k", "hot", obj! {"v" => i}).unwrap();
            }
            assert_eq!(store.log_records(), 50);
            store.compact().unwrap();
            assert_eq!(store.log_records(), 1);
            // Still writable after compaction.
            store.put("k", "other", obj! {"v" => 99}).unwrap();
        }
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(size < 200, "compacted log should be tiny, was {size}");
        let store = MetadataStore::open(&path).unwrap();
        assert_eq!(store.get("k", "hot").unwrap().get("v").and_then(Value::as_i64), Some(49));
        assert_eq!(store.get("k", "other").unwrap().get("v").and_then(Value::as_i64), Some(99));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kinds_are_isolated() {
        let store = MetadataStore::in_memory();
        store.put("a", "x", obj! {"v" => 1}).unwrap();
        store.put("b", "x", obj! {"v" => 2}).unwrap();
        assert_eq!(store.get("a", "x").unwrap().get("v").and_then(Value::as_i64), Some(1));
        assert_eq!(store.get("b", "x").unwrap().get("v").and_then(Value::as_i64), Some(2));
        store.delete("a", "x").unwrap();
        assert!(store.get("b", "x").is_some());
    }

    #[test]
    fn get_returns_shared_handles_not_copies() {
        let store = MetadataStore::in_memory();
        store.put("k", "x", obj! {"v" => 1}).unwrap();
        let a = store.get("k", "x").unwrap();
        let b = store.get("k", "x").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "reads must share one allocation");
        // Replacing the document swaps the handle; old handles stay valid.
        store.put("k", "x", obj! {"v" => 2}).unwrap();
        assert_eq!(a.get("v").and_then(Value::as_i64), Some(1));
        assert_eq!(store.get("k", "x").unwrap().get("v").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn escaped_kinds_and_ids_roundtrip() {
        let path = tmp("escaped");
        let _ = std::fs::remove_file(&path);
        let kind = "weird\"kind\\with\nescapes";
        let id = "id\twith\u{1}controls";
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put(kind, id, obj! {"v" => 1}).unwrap();
        }
        let store = MetadataStore::open(&path).unwrap();
        assert_eq!(store.get(kind, id).unwrap().get("v").and_then(Value::as_i64), Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn live_docs_tracks_inserts_replaces_and_deletes() {
        let store = MetadataStore::in_memory();
        store.put("k", "a", obj! {"v" => 1}).unwrap();
        store.put("k", "a", obj! {"v" => 2}).unwrap(); // replace: not a new doc
        store.put("k", "b", obj! {"v" => 3}).unwrap();
        assert_eq!(store.live_docs(), 2);
        store.delete("k", "a").unwrap();
        assert_eq!(store.live_docs(), 1);
    }

    #[test]
    fn replication_feed_ships_and_installs_byte_identically() {
        let leader = MetadataStore::in_memory();
        let follower = MetadataStore::in_memory();
        leader.put("job", "j1", obj! {"state" => "scheduled"}).unwrap();
        leader.put("job", "j2", obj! {"state" => "running"}).unwrap();
        leader.delete("job", "j1").unwrap();
        let segment = leader.read_replication(0, usize::MAX).unwrap();
        let applied = follower.install_replication(&segment).unwrap();
        assert_eq!(applied, segment.len() as u64);
        assert_eq!(follower.replication_offset(), leader.replication_offset());
        assert_eq!(follower.count("job"), 1);
        assert!(follower.get("job", "j1").is_none());
        assert_eq!(
            follower.get("job", "j2").unwrap().get("state").and_then(Value::as_str),
            Some("running")
        );
        // The follower's feed is a byte prefix of (here: equal to) the
        // leader's, so a promoted follower ships the identical bytes.
        assert_eq!(follower.read_replication(0, usize::MAX).unwrap(), segment);
    }

    #[test]
    fn replication_read_is_frame_aligned_and_bounded() {
        let store = MetadataStore::in_memory();
        store.put("k", "a", obj! {"v" => 1}).unwrap();
        store.put("k", "b", obj! {"v" => 2}).unwrap();
        let all = store.read_replication(0, usize::MAX).unwrap();
        // A tiny budget still ships at least one whole frame.
        let first = store.read_replication(0, 8).unwrap();
        assert!(first.ends_with(b"\n"));
        assert!(all.starts_with(&first));
        let rest = store.read_replication(first.len() as u64, usize::MAX).unwrap();
        assert_eq!([first.as_slice(), rest.as_slice()].concat(), all);
        // Caught up: empty segment, not None.
        assert_eq!(store.read_replication(all.len() as u64, 1024), Some(Vec::new()));
        // Out of range: None.
        assert_eq!(store.read_replication(all.len() as u64 + 1, 1024), None);
    }

    #[test]
    fn torn_segment_tail_applies_prefix_only() {
        let leader = MetadataStore::in_memory();
        leader.put("k", "a", obj! {"v" => 1}).unwrap();
        leader.put("k", "b", obj! {"v" => 2}).unwrap();
        let segment = leader.read_replication(0, usize::MAX).unwrap();
        let follower = MetadataStore::in_memory();
        // Tear mid-way through the second frame: only the first applies.
        let torn = &segment[..segment.len() - 5];
        let applied = follower.install_replication(torn).unwrap();
        assert!(applied < torn.len() as u64);
        assert_eq!(follower.count("k"), 1);
        // The leader re-ships from the applied offset and the follower
        // converges.
        let rest = leader.read_replication(applied, usize::MAX).unwrap();
        follower.install_replication(&rest).unwrap();
        assert_eq!(follower.count("k"), 2);
        assert_eq!(follower.replication_offset(), leader.replication_offset());
    }

    #[test]
    fn corrupt_segment_is_refused_with_store_untouched() {
        let follower = MetadataStore::in_memory();
        follower.put("k", "pre", obj! {"v" => 0}).unwrap();
        let before = follower.read_replication(0, usize::MAX).unwrap();
        // A complete (newline-terminated) but unparseable frame between
        // two good ones: nothing at all may apply.
        let mut segment = Vec::new();
        segment.extend_from_slice(&frame_put("k", "x", &obj! {"v" => 1}));
        segment.extend_from_slice(b"{\"op\":\"put\",\"ki\n");
        segment.extend_from_slice(&frame_put("k", "y", &obj! {"v" => 2}));
        let err = follower.install_replication(&segment).unwrap_err();
        assert!(err.to_string().contains("corrupt replicated frame 2"), "{err}");
        assert_eq!(follower.read_replication(0, usize::MAX).unwrap(), before);
        assert!(follower.get("k", "x").is_none());
        assert_eq!(follower.count("k"), 1);
    }

    #[test]
    fn durable_follower_persists_installed_segments() {
        let path = tmp("replica");
        let _ = std::fs::remove_file(&path);
        let leader = MetadataStore::in_memory();
        leader.put("job", "j1", obj! {"state" => "finished"}).unwrap();
        let segment = leader.read_replication(0, usize::MAX).unwrap();
        {
            let follower = MetadataStore::open(&path).unwrap();
            follower.install_replication(&segment).unwrap();
        }
        // Installed frames went through the follower's own WAL: a restart
        // replays them (the PR 3 recovery path).
        let reopened = MetadataStore::open(&path).unwrap();
        assert_eq!(
            reopened.get("job", "j1").unwrap().get("state").and_then(Value::as_str),
            Some("finished")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn auto_compaction_kicks_in_at_threshold() {
        let path = tmp("auto-compact");
        let _ = std::fs::remove_file(&path);
        let store = MetadataStore::open(&path).unwrap();
        store.set_auto_compact_threshold(64);
        for i in 0..200 {
            store.put("k", "hot", obj! {"v" => i}).unwrap();
        }
        // The background thread races the writer; give it a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.log_records() > 64 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(store.log_records() <= 64, "log never compacted: {} records", store.log_records());
        assert_eq!(store.get("k", "hot").unwrap().get("v").and_then(Value::as_i64), Some(199));
        // And nothing was lost for a fresh open.
        drop(store);
        let reopened = MetadataStore::open(&path).unwrap();
        assert_eq!(reopened.get("k", "hot").unwrap().get("v").and_then(Value::as_i64), Some(199));
        std::fs::remove_file(&path).unwrap();
    }
}
