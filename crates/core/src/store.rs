//! The embedded metadata store behind Chronos Control.
//!
//! The original Chronos Control keeps its entities in MySQL/MariaDB; this
//! reproduction embeds a small log-structured document store instead: all
//! entities live in memory (kind → id → JSON document) and every mutation is
//! appended to a JSON-lines log. Re-opening the store replays the log —
//! including after a crash mid-append (the torn tail is discarded) — which
//! is what lets Chronos Control itself be restarted under long-running
//! evaluations (requirement *(iii)*).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use chronos_json::{obj, Value};

use crate::error::{CoreError, CoreResult};

struct Inner {
    kinds: BTreeMap<String, BTreeMap<String, Value>>,
    log: Option<File>,
    log_path: Option<PathBuf>,
    log_records: u64,
}

/// A persistent (or in-memory) document store keyed by `(kind, id)`.
pub struct MetadataStore {
    inner: Mutex<Inner>,
}

impl MetadataStore {
    /// A purely in-memory store (tests, benches).
    pub fn in_memory() -> Self {
        MetadataStore {
            inner: Mutex::new(Inner {
                kinds: BTreeMap::new(),
                log: None,
                log_path: None,
                log_records: 0,
            }),
        }
    }

    /// Opens a store logged at `path`, replaying any existing log.
    pub fn open(path: &Path) -> CoreResult<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut kinds: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut records = 0u64;
        match File::open(path) {
            Ok(file) => {
                for line in BufReader::new(file).lines() {
                    let Ok(line) = line else { break };
                    let Ok(entry) = chronos_json::parse(&line) else {
                        break; // torn tail after a crash: stop replay
                    };
                    records += 1;
                    apply(&mut kinds, &entry);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let log = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(MetadataStore {
            inner: Mutex::new(Inner {
                kinds,
                log: Some(log),
                log_path: Some(path.to_path_buf()),
                log_records: records,
            }),
        })
    }

    /// Stores (inserting or replacing) a document.
    pub fn put(&self, kind: &str, id: &str, document: Value) -> CoreResult<()> {
        let mut inner = self.inner.lock();
        let entry = obj! {
            "op" => "put",
            "kind" => kind,
            "id" => id,
            "doc" => document.clone(),
        };
        append(&mut inner, &entry)?;
        inner.kinds.entry(kind.to_string()).or_default().insert(id.to_string(), document);
        Ok(())
    }

    /// Fetches a document.
    pub fn get(&self, kind: &str, id: &str) -> Option<Value> {
        self.inner.lock().kinds.get(kind).and_then(|m| m.get(id)).cloned()
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&self, kind: &str, id: &str) -> CoreResult<bool> {
        let mut inner = self.inner.lock();
        let existed =
            inner.kinds.get_mut(kind).map(|m| m.remove(id).is_some()).unwrap_or(false);
        if existed {
            let entry = obj! { "op" => "delete", "kind" => kind, "id" => id };
            append(&mut inner, &entry)?;
        }
        Ok(existed)
    }

    /// All documents of a kind, in id order.
    pub fn list(&self, kind: &str) -> Vec<Value> {
        self.inner
            .lock()
            .kinds
            .get(kind)
            .map(|m| m.values().cloned().collect())
            .unwrap_or_default()
    }

    /// All ids of a kind, in order.
    pub fn ids(&self, kind: &str) -> Vec<String> {
        self.inner
            .lock()
            .kinds
            .get(kind)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of documents of a kind.
    pub fn count(&self, kind: &str) -> usize {
        self.inner.lock().kinds.get(kind).map(BTreeMap::len).unwrap_or(0)
    }

    /// Log records appended since the store was created/opened (monotone;
    /// used to decide when to [`compact`](MetadataStore::compact)).
    pub fn log_records(&self) -> u64 {
        self.inner.lock().log_records
    }

    /// Rewrites the log to contain exactly the live documents.
    pub fn compact(&self) -> CoreResult<()> {
        let mut inner = self.inner.lock();
        let Some(path) = inner.log_path.clone() else { return Ok(()) };
        let tmp = path.with_extension("compact-tmp");
        {
            let mut out = File::create(&tmp)?;
            for (kind, docs) in &inner.kinds {
                for (id, doc) in docs {
                    let entry = obj! {
                        "op" => "put",
                        "kind" => kind.as_str(),
                        "id" => id.as_str(),
                        "doc" => doc.clone(),
                    };
                    writeln!(out, "{entry}")?;
                }
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        inner.log = Some(OpenOptions::new().append(true).open(&path)?);
        inner.log_records = inner.kinds.values().map(BTreeMap::len).sum::<usize>() as u64;
        Ok(())
    }
}

fn apply(kinds: &mut BTreeMap<String, BTreeMap<String, Value>>, entry: &Value) {
    let op = entry.get("op").and_then(Value::as_str).unwrap_or("");
    let Some(kind) = entry.get("kind").and_then(Value::as_str) else { return };
    let Some(id) = entry.get("id").and_then(Value::as_str) else { return };
    match op {
        "put" => {
            if let Some(doc) = entry.get("doc") {
                kinds.entry(kind.to_string()).or_default().insert(id.to_string(), doc.clone());
            }
        }
        "delete" => {
            if let Some(m) = kinds.get_mut(kind) {
                m.remove(id);
            }
        }
        _ => {}
    }
}

fn append(inner: &mut Inner, entry: &Value) -> CoreResult<()> {
    inner.log_records += 1;
    if let Some(log) = &mut inner.log {
        writeln!(log, "{entry}").map_err(|e| CoreError::Storage(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chronos-store-{}-{name}.log", std::process::id()))
    }

    #[test]
    fn in_memory_crud() {
        let store = MetadataStore::in_memory();
        store.put("job", "j1", obj! {"state" => "scheduled"}).unwrap();
        store.put("job", "j2", obj! {"state" => "running"}).unwrap();
        assert_eq!(store.count("job"), 2);
        assert_eq!(
            store.get("job", "j1").unwrap().get("state").and_then(Value::as_str),
            Some("scheduled")
        );
        store.put("job", "j1", obj! {"state" => "finished"}).unwrap();
        assert_eq!(
            store.get("job", "j1").unwrap().get("state").and_then(Value::as_str),
            Some("finished")
        );
        assert!(store.delete("job", "j1").unwrap());
        assert!(!store.delete("job", "j1").unwrap());
        assert_eq!(store.count("job"), 1);
        assert!(store.get("nope", "x").is_none());
        assert_eq!(store.ids("job"), vec!["j2"]);
    }

    #[test]
    fn list_is_id_ordered() {
        let store = MetadataStore::in_memory();
        for id in ["c", "a", "b"] {
            store.put("k", id, obj! {"id" => id}).unwrap();
        }
        let names: Vec<String> = store
            .list("k")
            .iter()
            .map(|d| d.get("id").and_then(Value::as_str).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn persistence_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put("project", "p1", obj! {"name" => "demo"}).unwrap();
            store.put("project", "p2", obj! {"name" => "other"}).unwrap();
            store.delete("project", "p2").unwrap();
        }
        {
            let store = MetadataStore::open(&path).unwrap();
            assert_eq!(store.count("project"), 1);
            assert_eq!(
                store.get("project", "p1").unwrap().get("name").and_then(Value::as_str),
                Some("demo")
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            store.put("k", "a", obj! {"v" => 1}).unwrap();
            store.put("k", "b", obj! {"v" => 2}).unwrap();
        }
        // Chop bytes off the final line.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let store = MetadataStore::open(&path).unwrap();
        assert_eq!(store.count("k"), 1);
        assert!(store.get("k", "a").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        {
            let store = MetadataStore::open(&path).unwrap();
            for i in 0..50 {
                store.put("k", "hot", obj! {"v" => i}).unwrap();
            }
            assert_eq!(store.log_records(), 50);
            store.compact().unwrap();
            assert_eq!(store.log_records(), 1);
            // Still writable after compaction.
            store.put("k", "other", obj! {"v" => 99}).unwrap();
        }
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(size < 200, "compacted log should be tiny, was {size}");
        let store = MetadataStore::open(&path).unwrap();
        assert_eq!(store.get("k", "hot").unwrap().get("v").and_then(Value::as_i64), Some(49));
        assert_eq!(store.get("k", "other").unwrap().get("v").and_then(Value::as_i64), Some(99));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kinds_are_isolated() {
        let store = MetadataStore::in_memory();
        store.put("a", "x", obj! {"v" => 1}).unwrap();
        store.put("b", "x", obj! {"v" => 2}).unwrap();
        assert_eq!(store.get("a", "x").unwrap().get("v").and_then(Value::as_i64), Some(1));
        assert_eq!(store.get("b", "x").unwrap().get("v").and_then(Value::as_i64), Some(2));
        store.delete("a", "x").unwrap();
        assert!(store.get("b", "x").is_some());
    }
}
