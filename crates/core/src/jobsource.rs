//! Incremental job sources: lazy, deterministic iteration over an
//! evaluation's parameter space.
//!
//! The paper's scheduler expanded an experiment into a static grid of jobs
//! at evaluation-creation time. A [`JobSourceState`] replaces that: the
//! evaluation document carries a resumable cursor over its
//! [`PointSpace`](crate::params::PointSpace) and the claim path materializes
//! points on demand — a 10^5-point space costs O(in-flight) job documents,
//! and because the cursor is persisted with the evaluation (and therefore
//! rides the WAL replication feed), a new leader resumes iteration exactly
//! where the old one stopped.
//!
//! Two strategies:
//!
//! * **grid** — issue every point, index order. Byte-identical job sets and
//!   wire bodies to the historic eager expansion (oracle-tested).
//! * **adaptive** — successive halving over a seeded candidate sample:
//!   rung 0 draws `initial` points from the space; when a rung's jobs have
//!   all settled, candidates are scored from their uploaded results (via
//!   the columnar analytics kernels) and the top `1/eta` fraction is
//!   promoted to the next rung, until one survivor remains. Every pruning
//!   decision is a pure function of `(seed, stored results)` and is
//!   appended to a decision log, so replaying the same seed — on one node
//!   or across a leader failover — yields identical decisions.

use chronos_api::v1 as dto;
use chronos_json::{obj, Value};
use chronos_util::Id;

use crate::error::{CoreError, CoreResult};

/// How an experiment explores its parameter space.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Every point of the space, in index order (the paper's behavior).
    Grid,
    /// Successive-halving exploration driven by uploaded results.
    Adaptive(AdaptiveConfig),
}

impl Strategy {
    /// Validates strategy parameters at experiment creation.
    pub fn validate(&self) -> CoreResult<()> {
        match self {
            Strategy::Grid => Ok(()),
            Strategy::Adaptive(cfg) => {
                if cfg.eta < 2 {
                    return Err(CoreError::Invalid("adaptive eta must be ≥ 2".into()));
                }
                if cfg.initial == Some(0) {
                    return Err(CoreError::Invalid("adaptive initial must be ≥ 1".into()));
                }
                if !cfg.metric.starts_with('/') {
                    return Err(CoreError::Invalid(format!(
                        "adaptive metric must be a JSON pointer (got {:?})",
                        cfg.metric
                    )));
                }
                Ok(())
            }
        }
    }

    /// The wire DTO.
    pub fn dto(&self) -> dto::StrategyDto {
        match self {
            Strategy::Grid => dto::StrategyDto::Grid,
            Strategy::Adaptive(cfg) => dto::StrategyDto::Adaptive {
                seed: cfg.seed,
                initial: cfg.initial,
                eta: cfg.eta,
                metric: cfg.metric.clone(),
                maximize: cfg.maximize,
            },
        }
    }

    /// From the wire DTO.
    pub fn from_dto(value: &dto::StrategyDto) -> Strategy {
        match value {
            dto::StrategyDto::Grid => Strategy::Grid,
            dto::StrategyDto::Adaptive { seed, initial, eta, metric, maximize } => {
                Strategy::Adaptive(AdaptiveConfig {
                    seed: *seed,
                    initial: *initial,
                    eta: *eta,
                    metric: metric.clone(),
                    maximize: *maximize,
                })
            }
        }
    }
}

/// Tunables of the adaptive (successive-halving) strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Seed of the rung-0 candidate sample. Same seed ⇒ same candidates ⇒
    /// same pruning decisions (given the same uploaded results).
    pub seed: u64,
    /// Rung-0 size. `None` ⇒ `ceil(total / 5)` — with the default `eta` of
    /// 4 the whole run then spends ≈ 26.7 % of a full grid.
    pub initial: Option<u64>,
    /// Fraction kept per rung: `ceil(k / eta)` candidates are promoted.
    pub eta: u64,
    /// JSON pointer into the uploaded result document that scores a
    /// candidate (must be one of the columnar standard metric paths to be
    /// served from the analytics store).
    pub metric: String,
    /// Whether a higher metric is better.
    pub maximize: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            seed: 0,
            initial: None,
            eta: 4,
            metric: "/throughput_ops_per_sec".into(),
            maximize: true,
        }
    }
}

impl AdaptiveConfig {
    /// The rung-0 candidate count for a space of `total` points.
    pub fn rung0_size(&self, total: u64) -> u64 {
        self.initial.unwrap_or_else(|| total.div_ceil(5)).clamp(1, total)
    }
}

/// Sizes of every rung of a successive-halving run that starts with `k0`
/// candidates: `k0, ceil(k0/eta), ...` down to a single survivor.
pub fn rung_sizes(k0: u64, eta: u64) -> Vec<u64> {
    let mut sizes = vec![k0.max(1)];
    let mut k = k0.max(1);
    while k > 1 {
        k = k.div_ceil(eta);
        sizes.push(k);
    }
    sizes
}

/// The live frontier of an adaptive evaluation: the current rung.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Rung number, starting at 0.
    pub rung: u32,
    /// Point indices competing in this rung (ascending).
    pub candidates: Vec<u64>,
    /// How many of `candidates` have been materialized as jobs (a prefix).
    pub issued: u64,
    /// Job ids of this rung, in issue order (`job_ids[i]` runs
    /// `candidates[i]`).
    pub job_ids: Vec<Id>,
    /// One record per completed rung: candidates, scores, survivors.
    /// Contains only point indices and scores — never job ids or
    /// timestamps — so logs from a replay or a failed-over leader compare
    /// equal.
    pub decisions: Vec<Value>,
}

impl Frontier {
    fn dto(&self) -> dto::FrontierDto {
        dto::FrontierDto {
            rung: self.rung,
            candidates: self.candidates.clone(),
            issued: self.issued,
            job_ids: self.job_ids.clone(),
            decisions: self.decisions.clone(),
        }
    }

    fn from_dto(value: &dto::FrontierDto) -> Frontier {
        Frontier {
            rung: value.rung,
            candidates: value.candidates.clone(),
            issued: value.issued,
            job_ids: value.job_ids.clone(),
            decisions: value.decisions.clone(),
        }
    }
}

/// The persisted iteration state of a lazy evaluation. Stored inside the
/// evaluation document, so every cursor advance is one WAL frame and
/// replicates to followers with the rest of the control plane.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSourceState {
    /// The strategy, frozen at evaluation creation.
    pub strategy: Strategy,
    /// Size of the full parameter space.
    pub total_points: u64,
    /// How many points have been materialized as job documents.
    pub materialized: u64,
    /// Adaptive only: the current rung.
    pub frontier: Option<Frontier>,
}

impl JobSourceState {
    /// Plans the source for a space of `total_points`. Adaptive strategies
    /// draw their rung-0 candidate sample here (seeded, deterministic).
    pub fn plan(strategy: Strategy, total_points: u64) -> JobSourceState {
        let frontier = match &strategy {
            Strategy::Grid => None,
            Strategy::Adaptive(cfg) => {
                let k0 = cfg.rung0_size(total_points);
                Some(Frontier {
                    rung: 0,
                    candidates: sample_distinct(cfg.seed, total_points, k0),
                    issued: 0,
                    job_ids: Vec::new(),
                    decisions: Vec::new(),
                })
            }
        };
        JobSourceState { strategy, total_points, materialized: 0, frontier }
    }

    /// Points this source still plans to issue. For grid sources this is
    /// exact; for adaptive sources it is the plan (unissued candidates of
    /// the current rung plus all future rung sizes) — pruning can only make
    /// it smaller, never larger, so an unsettled evaluation always reports
    /// a positive remainder.
    pub fn remaining(&self) -> u64 {
        match (&self.strategy, &self.frontier) {
            (Strategy::Adaptive(cfg), Some(frontier)) => {
                let k = frontier.candidates.len() as u64;
                let current = k.saturating_sub(frontier.issued);
                let future: u64 = rung_sizes(k, cfg.eta).iter().skip(1).sum();
                current + future
            }
            _ => self.total_points.saturating_sub(self.materialized),
        }
    }

    /// The next point index to materialize, without advancing any state.
    /// `None` when the source is exhausted or (adaptive) the current rung
    /// is fully issued and must settle before pruning.
    pub fn peek(&self) -> Option<u64> {
        match &self.frontier {
            None => (self.materialized < self.total_points).then_some(self.materialized),
            Some(frontier) => frontier.candidates.get(frontier.issued as usize).copied(),
        }
    }

    /// Advances past the point returned by [`JobSourceState::peek`].
    pub fn advance(&mut self) {
        self.materialized += 1;
        if let Some(frontier) = &mut self.frontier {
            frontier.issued += 1;
        }
    }

    /// Encodes onto an evaluation DTO (flat fields, appended after the
    /// frozen evaluation keys).
    pub fn apply_to_dto(&self, doc: &mut dto::EvaluationDto) {
        doc.strategy = Some(self.strategy.dto());
        doc.total_points = Some(self.total_points);
        doc.materialized = Some(self.materialized);
        doc.frontier = self.frontier.as_ref().map(Frontier::dto);
    }

    /// Decodes from an evaluation DTO; `None` when the document predates
    /// lazy evaluations (such evaluations are fully materialized).
    pub fn from_dto(doc: &dto::EvaluationDto) -> Option<JobSourceState> {
        let total_points = doc.total_points?;
        let strategy = doc.strategy.as_ref().map(Strategy::from_dto).unwrap_or(Strategy::Grid);
        Some(JobSourceState {
            strategy,
            total_points,
            materialized: doc.materialized.unwrap_or(doc.job_ids.len() as u64),
            frontier: doc.frontier.as_ref().map(Frontier::from_dto),
        })
    }
}

/// The outcome of scoring one rung: records the decision and installs the
/// survivors as the next rung's candidates.
///
/// `scored` pairs each candidate index with its metric value (`None` for
/// candidates whose job failed or was aborted — they always rank last).
/// Survivors are the best `ceil(k/eta)`; ties and all-missing groups break
/// toward the lower point index, so the ordering is total and seed-stable.
pub fn prune_rung(frontier: &mut Frontier, scored: &[(u64, Option<f64>)], cfg: &AdaptiveConfig) {
    use std::cmp::Ordering;
    let keep = (scored.len() as u64).div_ceil(cfg.eta).max(1) as usize;
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        let by_index = scored[a].0.cmp(&scored[b].0);
        match (scored[a].1, scored[b].1) {
            (Some(x), Some(y)) => {
                let best_first = if cfg.maximize { y.partial_cmp(&x) } else { x.partial_cmp(&y) };
                best_first.unwrap_or(Ordering::Equal).then(by_index)
            }
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => by_index,
        }
    });
    let mut survivors: Vec<u64> = order[..keep].iter().map(|&i| scored[i].0).collect();
    survivors.sort_unstable();
    let decision = obj! {
        "rung" => frontier.rung as u64,
        "candidates" => Value::Array(scored.iter().map(|(c, _)| Value::from(*c)).collect()),
        "scores" => Value::Array(
            scored.iter().map(|(_, s)| s.map(Value::from).unwrap_or(Value::Null)).collect()
        ),
        "promoted" => Value::Array(survivors.iter().map(|&c| Value::from(c)).collect()),
    };
    frontier.decisions.push(decision);
    frontier.rung += 1;
    frontier.candidates = survivors;
    frontier.issued = 0;
    frontier.job_ids.clear();
}

/// `k` distinct indices from `0..total`, ascending, fully determined by
/// `seed`. Partial Fisher–Yates for small spaces; seeded rejection sampling
/// for huge ones (where `k ≪ total` by construction of the default rung-0
/// size).
pub fn sample_distinct(seed: u64, total: u64, k: u64) -> Vec<u64> {
    let k = k.min(total);
    if k == total {
        return (0..total).collect();
    }
    let mut rng = SplitMix::new(seed);
    let mut picked: Vec<u64>;
    if total <= 1 << 20 {
        let mut pool: Vec<u64> = (0..total).collect();
        for i in 0..k {
            let j = i + rng.next_below(total - i);
            pool.swap(i as usize, j as usize);
        }
        picked = pool[..k as usize].to_vec();
    } else {
        let mut seen = std::collections::HashSet::with_capacity(k as usize);
        picked = Vec::with_capacity(k as usize);
        while (picked.len() as u64) < k {
            let candidate = rng.next_below(total);
            if seen.insert(candidate) {
                picked.push(candidate);
            }
        }
    }
    picked.sort_unstable();
    picked
}

/// Splitmix64: tiny, seedable, and already the workspace idiom for
/// deterministic pseudo-randomness (cf. `chronos-workload`).
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_sizes_sum_under_budget() {
        // Defaults: initial = ceil(total/5), eta = 4 ⇒ total jobs ≈ 26.7 %
        // of the grid — inside the ≤ 30 % acceptance budget.
        for total in [64u64, 128, 512, 4096, 100_000] {
            let cfg = AdaptiveConfig::default();
            let k0 = cfg.rung0_size(total);
            let planned: u64 = rung_sizes(k0, cfg.eta).iter().sum();
            assert!(planned * 10 <= total * 3, "planned {planned} jobs exceeds 30% of {total}");
        }
        assert_eq!(rung_sizes(103, 4), vec![103, 26, 7, 2, 1]);
        assert_eq!(rung_sizes(1, 4), vec![1]);
        assert_eq!(rung_sizes(0, 4), vec![1], "empty rung clamps to one survivor");
    }

    #[test]
    fn sampling_is_deterministic_distinct_and_in_range() {
        for (total, k) in [(100u64, 20u64), (100, 100), (5_000_000, 64), (7, 7), (10, 1)] {
            let a = sample_distinct(42, total, k);
            let b = sample_distinct(42, total, k);
            assert_eq!(a, b, "same seed must sample identically");
            assert_eq!(a.len() as u64, k.min(total));
            assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending & distinct");
            assert!(a.iter().all(|&i| i < total));
            let c = sample_distinct(43, total, k);
            if k < total {
                assert_ne!(a, c, "different seeds should differ (total={total}, k={k})");
            }
        }
    }

    #[test]
    fn grid_source_issues_every_index_in_order() {
        let mut source = JobSourceState::plan(Strategy::Grid, 4);
        let mut issued = Vec::new();
        while let Some(i) = source.peek() {
            issued.push(i);
            source.advance();
        }
        assert_eq!(issued, vec![0, 1, 2, 3]);
        assert_eq!(source.remaining(), 0);
        assert_eq!(source.peek(), None);
    }

    #[test]
    fn adaptive_source_plans_rung0_and_blocks_until_settled() {
        let cfg = AdaptiveConfig { seed: 7, initial: Some(4), ..Default::default() };
        let mut source = JobSourceState::plan(Strategy::Adaptive(cfg.clone()), 100);
        let frontier = source.frontier.clone().unwrap();
        assert_eq!(frontier.candidates.len(), 4);
        // remaining = current rung + planned future rungs (4 → 1).
        assert_eq!(source.remaining(), 4 + 1);
        for _ in 0..4 {
            assert!(source.peek().is_some());
            source.advance();
        }
        // Rung fully issued: nothing more until results settle the rung.
        assert_eq!(source.peek(), None);
        assert_eq!(source.remaining(), 1);
    }

    #[test]
    fn prune_rung_promotes_best_and_logs_decision() {
        let cfg = AdaptiveConfig { eta: 2, maximize: true, ..Default::default() };
        let mut frontier = Frontier {
            rung: 0,
            candidates: vec![3, 8, 15, 20],
            issued: 4,
            job_ids: vec![Id::from_u128(1), Id::from_u128(2), Id::from_u128(3), Id::from_u128(4)],
            decisions: Vec::new(),
        };
        // Candidate 15 failed (no score) and must rank last.
        let scored = vec![(3u64, Some(10.0)), (8, Some(30.0)), (15, None), (20, Some(20.0))];
        prune_rung(&mut frontier, &scored, &cfg);
        assert_eq!(frontier.rung, 1);
        assert_eq!(frontier.candidates, vec![8, 20]);
        assert_eq!(frontier.issued, 0);
        assert!(frontier.job_ids.is_empty());
        let decision = &frontier.decisions[0];
        assert_eq!(decision.pointer("/rung").and_then(Value::as_u64), Some(0));
        assert_eq!(decision.pointer("/promoted").and_then(Value::as_array).map(Vec::len), Some(2));
        // Minimizing flips the ranking.
        let cfg_min = AdaptiveConfig { eta: 2, maximize: false, ..Default::default() };
        let mut f2 =
            Frontier { rung: 0, candidates: vec![], issued: 0, job_ids: vec![], decisions: vec![] };
        prune_rung(&mut f2, &scored, &cfg_min);
        assert_eq!(f2.candidates, vec![3, 20]);
    }

    #[test]
    fn strategy_validation() {
        assert!(Strategy::Grid.validate().is_ok());
        assert!(Strategy::Adaptive(AdaptiveConfig::default()).validate().is_ok());
        assert!(Strategy::Adaptive(AdaptiveConfig { eta: 1, ..Default::default() })
            .validate()
            .is_err());
        assert!(Strategy::Adaptive(AdaptiveConfig { initial: Some(0), ..Default::default() })
            .validate()
            .is_err());
        assert!(Strategy::Adaptive(AdaptiveConfig {
            metric: "no-pointer".into(),
            ..Default::default()
        })
        .validate()
        .is_err());
    }
}
