//! `ChronosControl` — the heart of the toolkit (paper Fig. 1).
//!
//! Owns the metadata store, the session table, the clock and the scheduling
//! policy, and exposes every workflow of the paper as a method:
//! registering systems, configuring deployments, creating projects and
//! experiments, expanding experiments into evaluations and jobs, the agent
//! protocol (claim / heartbeat / log / finish / fail), abort and
//! reschedule, failure detection, archiving and analysis.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use chronos_analytics::{AnalyticsStore, RegressionFlag, ResultTable};
use chronos_json::Value;
use chronos_util::{Clock, Id, SystemClock};

use crate::auth::{Role, SessionManager, User};
use crate::error::{CoreError, CoreResult};
use crate::jobsource::{prune_rung, JobSourceState, Strategy};
use crate::lifecycle::JobEvent;
use crate::model::{Deployment, Evaluation, Experiment, Job, JobResult, JobState, Project, System};
use crate::params::{ParamAssignments, PointSpace};
use crate::scheduler::{EvaluationStatus, SchedulerConfig};
use crate::store::MetadataStore;

const KIND_USER: &str = "user";
const KIND_SYSTEM: &str = "system";
const KIND_DEPLOYMENT: &str = "deployment";
const KIND_PROJECT: &str = "project";
const KIND_EXPERIMENT: &str = "experiment";
const KIND_EVALUATION: &str = "evaluation";
const KIND_JOB: &str = "job";
const KIND_RESULT: &str = "result";

/// The Chronos Control core.
pub struct ChronosControl {
    store: MetadataStore,
    sessions: SessionManager,
    clock: Arc<dyn Clock>,
    config: SchedulerConfig,
    /// Columnar mirror of uploaded results (chart/summary/regression
    /// queries run over this instead of re-decoding JSON rows).
    analytics: AnalyticsStore,
    /// Serializes read-modify-write cycles on entities (claims, state
    /// transitions) so concurrent agents never double-claim a job.
    write_lock: parking_lot::Mutex<()>,
}

impl ChronosControl {
    /// An in-memory control instance with the real clock.
    pub fn in_memory() -> Self {
        Self::new(MetadataStore::in_memory(), Arc::new(SystemClock), SchedulerConfig::default())
    }

    /// Full construction.
    pub fn new(store: MetadataStore, clock: Arc<dyn Clock>, config: SchedulerConfig) -> Self {
        ChronosControl {
            store,
            sessions: SessionManager::new(),
            clock,
            config,
            analytics: AnalyticsStore::new(),
            write_lock: parking_lot::Mutex::new(()),
        }
    }

    /// The scheduling policy in force.
    pub fn scheduler_config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Current time from the control clock.
    pub fn now(&self) -> u64 {
        self.clock.now_millis()
    }

    /// Whether the backing metadata store can still accept writes — the
    /// storage half of the `/readyz` readiness probe. `false` after a
    /// sticky WAL failure.
    pub fn store_healthy(&self) -> bool {
        self.store.healthy()
    }

    // ----- replication (cluster mode) --------------------------------------

    /// End offset of the store's replication feed (see
    /// [`MetadataStore::replication_offset`]).
    pub fn replication_offset(&self) -> u64 {
        self.store.replication_offset()
    }

    /// Reads a frame-aligned replication segment starting at `from` for
    /// shipping to a follower (see [`MetadataStore::read_replication`]).
    pub fn read_replication(&self, from: u64, max_bytes: usize) -> Option<Vec<u8>> {
        self.store.read_replication(from, max_bytes)
    }

    /// Installs a shipped replication segment on this (follower) node's
    /// store (see [`MetadataStore::install_replication`]). Serialized
    /// against local control-plane writes so installed frames interleave
    /// cleanly with any lingering local mutation.
    pub fn install_replication(&self, payload: &[u8]) -> CoreResult<u64> {
        let _guard = self.write_lock.lock();
        self.store.install_replication(payload)
    }

    // ----- users & sessions ------------------------------------------------

    /// Creates a user; usernames are unique.
    pub fn create_user(&self, username: &str, password: &str, role: Role) -> CoreResult<User> {
        if username.is_empty() {
            return Err(CoreError::Invalid("username cannot be empty".into()));
        }
        let _guard = self.write_lock.lock();
        if self.find_user(username).is_some() {
            return Err(CoreError::Conflict(format!("user {username:?} already exists")));
        }
        let user = User::new(username, password, role, self.now());
        self.store.put(KIND_USER, &user.id.to_base32(), user.to_json())?;
        Ok(user)
    }

    /// Looks a user up by name.
    pub fn find_user(&self, username: &str) -> Option<User> {
        self.store
            .list(KIND_USER)
            .iter()
            .filter_map(|v| User::from_json(v).ok())
            .find(|u| u.username == username)
    }

    /// Fetches a user by id.
    pub fn get_user(&self, id: Id) -> CoreResult<User> {
        self.store
            .get(KIND_USER, &id.to_base32())
            .and_then(|v| User::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("user", id))
    }

    /// Verifies credentials and opens a session; returns the bearer token.
    pub fn login(&self, username: &str, password: &str) -> CoreResult<String> {
        let user = self
            .find_user(username)
            .filter(|u| u.verify_password(password))
            .ok_or_else(|| CoreError::Forbidden("bad credentials".into()))?;
        Ok(self.sessions.create(user.id, &*self.clock))
    }

    /// Resolves a bearer token to its user.
    pub fn authenticate(&self, token: &str) -> CoreResult<User> {
        let user_id = self
            .sessions
            .resolve(token, &*self.clock)
            .ok_or_else(|| CoreError::Forbidden("invalid or expired session".into()))?;
        self.get_user(user_id)
    }

    /// Terminates a session.
    pub fn logout(&self, token: &str) -> bool {
        self.sessions.revoke(token)
    }

    // ----- systems & deployments -------------------------------------------

    /// Registers a system under evaluation (paper Fig. 2).
    pub fn register_system(
        &self,
        name: &str,
        description: &str,
        parameters: Vec<crate::params::ParamDef>,
        charts: Vec<crate::charts::ChartSpec>,
    ) -> CoreResult<System> {
        if name.is_empty() {
            return Err(CoreError::Invalid("system name cannot be empty".into()));
        }
        let _guard = self.write_lock.lock();
        if self.find_system(name).is_some() {
            return Err(CoreError::Conflict(format!("system {name:?} already exists")));
        }
        let system = System {
            id: Id::generate(),
            name: name.to_string(),
            description: description.to_string(),
            parameters,
            charts,
            created_at: self.now(),
        };
        self.store.put(KIND_SYSTEM, &system.id.to_base32(), system.to_json())?;
        Ok(system)
    }

    /// Registers a system from a JSON definition document — the
    /// "provide a path to a git or mercurial repository" workflow (§3),
    /// with the repository's definition file supplied directly.
    pub fn register_system_from_definition(&self, definition: &Value) -> CoreResult<System> {
        let name = definition
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| CoreError::Invalid("system definition needs a name".into()))?;
        let description = definition.get("description").and_then(Value::as_str).unwrap_or("");
        let parameters = definition
            .get("parameters")
            .and_then(Value::as_array)
            .map(|items| items.iter().map(crate::params::ParamDef::from_json).collect())
            .transpose()?
            .unwrap_or_default();
        let charts = definition
            .get("charts")
            .and_then(Value::as_array)
            .map(|items| items.iter().map(crate::charts::ChartSpec::from_json).collect())
            .transpose()?
            .unwrap_or_default();
        self.register_system(name, description, parameters, charts)
    }

    /// Looks a system up by name.
    pub fn find_system(&self, name: &str) -> Option<System> {
        self.store
            .list(KIND_SYSTEM)
            .iter()
            .filter_map(|v| System::from_json(v).ok())
            .find(|s| s.name == name)
    }

    /// Fetches a system by id.
    pub fn get_system(&self, id: Id) -> CoreResult<System> {
        self.store
            .get(KIND_SYSTEM, &id.to_base32())
            .and_then(|v| System::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("system", id))
    }

    /// All systems.
    pub fn list_systems(&self) -> Vec<System> {
        self.store.list(KIND_SYSTEM).iter().filter_map(|v| System::from_json(v).ok()).collect()
    }

    /// Creates a deployment of a system.
    pub fn create_deployment(
        &self,
        system_id: Id,
        environment: &str,
        version: &str,
    ) -> CoreResult<Deployment> {
        self.get_system(system_id)?;
        let deployment = Deployment {
            id: Id::generate(),
            system_id,
            environment: environment.to_string(),
            version: version.to_string(),
            active: true,
            created_at: self.now(),
        };
        self.store.put(KIND_DEPLOYMENT, &deployment.id.to_base32(), deployment.to_json())?;
        Ok(deployment)
    }

    /// Fetches a deployment.
    pub fn get_deployment(&self, id: Id) -> CoreResult<Deployment> {
        self.store
            .get(KIND_DEPLOYMENT, &id.to_base32())
            .and_then(|v| Deployment::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("deployment", id))
    }

    /// Deployments of a system (all systems when `system_id` is `None`).
    pub fn list_deployments(&self, system_id: Option<Id>) -> Vec<Deployment> {
        self.store
            .list(KIND_DEPLOYMENT)
            .iter()
            .filter_map(|v| Deployment::from_json(v).ok())
            .filter(|d| system_id.map(|s| d.system_id == s).unwrap_or(true))
            .collect()
    }

    /// Activates/deactivates a deployment.
    pub fn set_deployment_active(&self, id: Id, active: bool) -> CoreResult<Deployment> {
        let _guard = self.write_lock.lock();
        let mut deployment = self.get_deployment(id)?;
        deployment.active = active;
        self.store.put(KIND_DEPLOYMENT, &id.to_base32(), deployment.to_json())?;
        Ok(deployment)
    }

    // ----- projects ---------------------------------------------------------

    /// Creates a project owned by `owner`.
    pub fn create_project(&self, name: &str, description: &str, owner: Id) -> CoreResult<Project> {
        if name.is_empty() {
            return Err(CoreError::Invalid("project name cannot be empty".into()));
        }
        let project = Project {
            id: Id::generate(),
            name: name.to_string(),
            description: description.to_string(),
            members: vec![owner],
            archived: false,
            created_at: self.now(),
        };
        self.store.put(KIND_PROJECT, &project.id.to_base32(), project.to_json())?;
        Ok(project)
    }

    /// Fetches a project.
    pub fn get_project(&self, id: Id) -> CoreResult<Project> {
        self.store
            .get(KIND_PROJECT, &id.to_base32())
            .and_then(|v| Project::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("project", id))
    }

    /// All projects (the API layer filters by membership).
    pub fn list_projects(&self) -> Vec<Project> {
        self.store.list(KIND_PROJECT).iter().filter_map(|v| Project::from_json(v).ok()).collect()
    }

    /// Adds a member to a project.
    pub fn add_project_member(&self, project_id: Id, user_id: Id) -> CoreResult<Project> {
        self.get_user(user_id)?;
        let _guard = self.write_lock.lock();
        let mut project = self.get_project(project_id)?;
        if !project.members.contains(&user_id) {
            project.members.push(user_id);
            self.store.put(KIND_PROJECT, &project_id.to_base32(), project.to_json())?;
        }
        Ok(project)
    }

    /// Enforces project membership (admins see everything).
    pub fn require_project_access(&self, project_id: Id, user: &User) -> CoreResult<Project> {
        let project = self.get_project(project_id)?;
        if user.role.can_admin() || project.members.contains(&user.id) {
            Ok(project)
        } else {
            Err(CoreError::Forbidden(format!(
                "user {} is not a member of project {}",
                user.username, project.name
            )))
        }
    }

    /// Archives a project (makes it and its experiments read-only).
    pub fn archive_project(&self, project_id: Id) -> CoreResult<Project> {
        let _guard = self.write_lock.lock();
        let mut project = self.get_project(project_id)?;
        project.archived = true;
        self.store.put(KIND_PROJECT, &project_id.to_base32(), project.to_json())?;
        Ok(project)
    }

    // ----- experiments -------------------------------------------------------

    /// Creates a grid experiment; the assignments are validated against the
    /// system's schema (paper Fig. 3a).
    pub fn create_experiment(
        &self,
        project_id: Id,
        system_id: Id,
        name: &str,
        description: &str,
        assignments: ParamAssignments,
    ) -> CoreResult<Experiment> {
        self.create_experiment_with_strategy(
            project_id,
            system_id,
            name,
            description,
            assignments,
            Strategy::Grid,
        )
    }

    /// Creates an experiment with an explicit exploration strategy. The
    /// parameter space is validated without being materialized, so spaces
    /// far beyond the old eager-expansion limit are accepted.
    pub fn create_experiment_with_strategy(
        &self,
        project_id: Id,
        system_id: Id,
        name: &str,
        description: &str,
        assignments: ParamAssignments,
        strategy: Strategy,
    ) -> CoreResult<Experiment> {
        self.create_experiment_with_options(
            project_id,
            system_id,
            name,
            description,
            assignments,
            strategy,
            None,
        )
    }

    /// Full experiment creation: explicit strategy plus an optional per-job
    /// resource budget copied onto every job the evaluations materialize.
    /// An empty budget document normalizes to `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn create_experiment_with_options(
        &self,
        project_id: Id,
        system_id: Id,
        name: &str,
        description: &str,
        assignments: ParamAssignments,
        strategy: Strategy,
        budget: Option<chronos_api::v1::JobBudget>,
    ) -> CoreResult<Experiment> {
        let project = self.get_project(project_id)?;
        if project.archived {
            return Err(CoreError::Conflict("project is archived".into()));
        }
        let system = self.get_system(system_id)?;
        PointSpace::build(&assignments, &system.parameters)?; // validation
        strategy.validate()?;
        let experiment = Experiment {
            id: Id::generate(),
            project_id,
            system_id,
            name: name.to_string(),
            description: description.to_string(),
            assignments,
            strategy,
            archived: false,
            created_at: self.now(),
            budget: budget.filter(|b| !b.is_empty()),
        };
        self.store.put(KIND_EXPERIMENT, &experiment.id.to_base32(), experiment.to_json())?;
        Ok(experiment)
    }

    /// Fetches an experiment.
    pub fn get_experiment(&self, id: Id) -> CoreResult<Experiment> {
        self.store
            .get(KIND_EXPERIMENT, &id.to_base32())
            .and_then(|v| Experiment::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("experiment", id))
    }

    /// Experiments of a project (all when `None`).
    pub fn list_experiments(&self, project_id: Option<Id>) -> Vec<Experiment> {
        self.store
            .list(KIND_EXPERIMENT)
            .iter()
            .filter_map(|v| Experiment::from_json(v).ok())
            .filter(|e| project_id.map(|p| e.project_id == p).unwrap_or(true))
            .collect()
    }

    /// Archives an experiment.
    pub fn archive_experiment(&self, id: Id) -> CoreResult<Experiment> {
        let _guard = self.write_lock.lock();
        let mut experiment = self.get_experiment(id)?;
        experiment.archived = true;
        self.store.put(KIND_EXPERIMENT, &id.to_base32(), experiment.to_json())?;
        Ok(experiment)
    }

    // ----- evaluations & jobs -------------------------------------------------

    /// Runs an experiment: plans a lazy evaluation over its parameter space
    /// (paper §2.1). No jobs are created here — the claim path materializes
    /// points on demand from the evaluation's job source, so a huge space
    /// costs O(in-flight) job documents. This is also the entry point for
    /// build-bot triggers (§2.2).
    pub fn create_evaluation(&self, experiment_id: Id) -> CoreResult<Evaluation> {
        let experiment = self.get_experiment(experiment_id)?;
        if experiment.archived {
            return Err(CoreError::Conflict("experiment is archived".into()));
        }
        let system = self.get_system(experiment.system_id)?;
        let space = PointSpace::build(&experiment.assignments, &system.parameters)?;
        let now = self.now();
        let evaluation = Evaluation {
            id: Id::generate(),
            experiment_id,
            job_ids: Vec::new(),
            swept_params: experiment.assignments.swept_names(&system.parameters),
            created_at: now,
            source: Some(JobSourceState::plan(experiment.strategy.clone(), space.total())),
        };
        let _guard = self.write_lock.lock();
        self.store.put(KIND_EVALUATION, &evaluation.id.to_base32(), evaluation.to_json())?;
        // Born with the analytics store attached: every result is ingested
        // at upload, so columnar reads never need a backfill pass.
        self.analytics.mark_fresh(evaluation.id.as_u128());
        Ok(evaluation)
    }

    /// Fetches an evaluation.
    pub fn get_evaluation(&self, id: Id) -> CoreResult<Evaluation> {
        self.store
            .get(KIND_EVALUATION, &id.to_base32())
            .and_then(|v| Evaluation::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("evaluation", id))
    }

    /// Evaluations of an experiment (all when `None`).
    pub fn list_evaluations(&self, experiment_id: Option<Id>) -> Vec<Evaluation> {
        self.store
            .list(KIND_EVALUATION)
            .iter()
            .filter_map(|v| Evaluation::from_json(v).ok())
            .filter(|e| experiment_id.map(|x| e.experiment_id == x).unwrap_or(true))
            .collect()
    }

    /// The state roll-up of an evaluation (paper Fig. 3b). Lazy evaluations
    /// also report their unmaterialized remainder, so a fresh evaluation
    /// with zero job documents reads as 0 % complete, not 100 %.
    pub fn evaluation_status(&self, id: Id) -> CoreResult<EvaluationStatus> {
        let evaluation = self.get_evaluation(id)?;
        let mut status = EvaluationStatus::default();
        for job_id in &evaluation.job_ids {
            match self.get_job(*job_id)?.state {
                JobState::Scheduled => status.scheduled += 1,
                JobState::Running => status.running += 1,
                JobState::Finished => status.finished += 1,
                JobState::Aborted => status.aborted += 1,
                JobState::Failed => status.failed += 1,
                JobState::Quarantined => status.quarantined += 1,
            }
        }
        status.remaining = evaluation.source.as_ref().map(|s| s.remaining() as usize);
        Ok(status)
    }

    /// Fetches a job.
    pub fn get_job(&self, id: Id) -> CoreResult<Job> {
        self.store
            .get(KIND_JOB, &id.to_base32())
            .and_then(|v| Job::from_json(&v).ok())
            .ok_or_else(|| CoreError::not_found("job", id))
    }

    /// Jobs of an evaluation, in creation order.
    pub fn list_jobs(&self, evaluation_id: Id) -> CoreResult<Vec<Job>> {
        let evaluation = self.get_evaluation(evaluation_id)?;
        evaluation.job_ids.iter().map(|id| self.get_job(*id)).collect()
    }

    fn save_job(&self, job: &Job) -> CoreResult<()> {
        self.store.put(KIND_JOB, &job.id.to_base32(), job.to_json())
    }

    /// Marks `job` claimed by `deployment` and persists it. Caller holds
    /// the write lock.
    fn claim_job_locked(
        &self,
        mut job: Job,
        deployment: &Deployment,
        idempotency_key: Option<&str>,
    ) -> CoreResult<Job> {
        let now = self.now();
        job.apply(
            JobEvent::Claim,
            now,
            &format!("claimed by deployment {} ({})", deployment.id, deployment.environment),
        )?;
        job.deployment_id = Some(deployment.id);
        job.heartbeat_at = Some(now);
        job.attempts += 1;
        job.claim_key = idempotency_key.map(str::to_string);
        self.save_job(&job)?;
        Ok(job)
    }

    /// Agent protocol: claims the oldest scheduled job for the system that
    /// `deployment_id` deploys, materializing the next point of the oldest
    /// unfinished lazy evaluation when no job document is waiting. Atomic:
    /// two agents never claim the same job.
    ///
    /// `idempotency_key` makes the claim retry-safe: if a previous claim by
    /// this deployment succeeded but the response was lost, retrying with
    /// the same key returns the already-claimed job instead of claiming (and
    /// double-running) a second one.
    pub fn claim_next_job(
        &self,
        deployment_id: Id,
        idempotency_key: Option<&str>,
    ) -> CoreResult<Option<Job>> {
        let deployment = self.get_deployment(deployment_id)?;
        if !deployment.active {
            return Err(CoreError::Conflict("deployment is inactive".into()));
        }
        let _guard = self.write_lock.lock();
        if let Some(key) = idempotency_key {
            // Job ids are time-ordered, so store order = creation order.
            for id in self.store.ids(KIND_JOB) {
                let Some(doc) = self.store.get(KIND_JOB, &id) else { continue };
                let Ok(job) = Job::from_json(&doc) else { continue };
                if job.state == JobState::Running
                    && job.deployment_id == Some(deployment_id)
                    && job.claim_key.as_deref() == Some(key)
                {
                    return Ok(Some(job)); // duplicate of an acknowledged claim
                }
            }
        }
        // Pass 1: a job document already waiting (a rescheduled job, or a
        // materialized point another agent abandoned). Lazily-materialized
        // jobs not listed in their evaluation's job_ids are *orphans* — the
        // crash window between "put job" and "put evaluation" — and must
        // not be claimed directly: materialization below adopts them for
        // the deterministic next index instead of duplicating the point.
        let mut registered: HashMap<Id, HashSet<Id>> = HashMap::new();
        let mut orphans: HashMap<(Id, u64), Job> = HashMap::new();
        let mut claimable = None;
        for id in self.store.ids(KIND_JOB) {
            let Some(doc) = self.store.get(KIND_JOB, &id) else { continue };
            let Ok(job) = Job::from_json(&doc) else { continue };
            if job.state != JobState::Scheduled || job.system_id != deployment.system_id {
                continue;
            }
            if let Some(index) = job.point_index {
                let members = registered.entry(job.evaluation_id).or_insert_with(|| {
                    self.get_evaluation(job.evaluation_id)
                        .map(|e| e.job_ids.into_iter().collect())
                        .unwrap_or_default()
                });
                if !members.contains(&job.id) {
                    orphans.insert((job.evaluation_id, index), job);
                    continue;
                }
            }
            claimable = Some(job);
            break;
        }
        if let Some(job) = claimable {
            return Ok(Some(self.claim_job_locked(job, &deployment, idempotency_key)?));
        }
        // Pass 2: materialize the next point from the oldest evaluation
        // with remaining work for this system.
        self.materialize_next(&deployment, idempotency_key, &mut orphans)
    }

    /// Walks evaluations in creation order and materializes the next point
    /// of the first one with available work for `deployment`'s system,
    /// returning it claimed. Settles adaptive rungs (scoring + pruning)
    /// along the way. Caller holds the write lock.
    fn materialize_next(
        &self,
        deployment: &Deployment,
        idempotency_key: Option<&str>,
        orphans: &mut HashMap<(Id, u64), Job>,
    ) -> CoreResult<Option<Job>> {
        for key in self.store.ids(KIND_EVALUATION) {
            let Some(doc) = self.store.get(KIND_EVALUATION, &key) else { continue };
            let Ok(mut evaluation) = Evaluation::from_json(&doc) else { continue };
            let Some(mut source) = evaluation.source.clone() else { continue };
            if source.remaining() == 0 {
                continue;
            }
            let Ok(experiment) = self.get_experiment(evaluation.experiment_id) else { continue };
            if experiment.system_id != deployment.system_id {
                continue;
            }
            let Ok(system) = self.get_system(experiment.system_id) else { continue };
            let Ok(space) = PointSpace::build(&experiment.assignments, &system.parameters) else {
                continue;
            };
            // Adaptive: a fully-issued rung blocks until every rung job
            // settles, then candidates are scored and pruned.
            if source.peek().is_none() && !self.try_advance_rung(&mut source, &evaluation)? {
                continue;
            }
            let Some(index) = source.peek() else { continue };
            let Some(parameters) = space.point_at(index) else { continue };
            let now = self.now();
            // Job first, evaluation second: a crash in between leaves an
            // orphan job that the next claim adopts right here.
            let job = match orphans.remove(&(evaluation.id, index)) {
                Some(orphan) => orphan,
                None => {
                    let mut job = Job::new(evaluation.id, experiment.system_id, parameters, now);
                    job.point_index = Some(index);
                    job.budget = experiment.budget;
                    self.save_job(&job)?;
                    job
                }
            };
            source.advance();
            if let Some(frontier) = &mut source.frontier {
                frontier.job_ids.push(job.id);
            }
            evaluation.job_ids.push(job.id);
            evaluation.source = Some(source);
            self.store.put(KIND_EVALUATION, &evaluation.id.to_base32(), evaluation.to_json())?;
            return Ok(Some(self.claim_job_locked(job, deployment, idempotency_key)?));
        }
        Ok(None)
    }

    /// Attempts to settle the current rung of an adaptive source: when all
    /// rung jobs are terminal, scores each candidate through the columnar
    /// analytics table and prunes to the best `1/eta` fraction. Returns
    /// whether the source gained issuable work. The pruning decision is a
    /// pure function of `(candidates, stored results)` — no clocks, no job
    /// ids — so replays and failed-over leaders decide identically.
    fn try_advance_rung(
        &self,
        source: &mut JobSourceState,
        evaluation: &Evaluation,
    ) -> CoreResult<bool> {
        let Strategy::Adaptive(cfg) = source.strategy.clone() else { return Ok(false) };
        let Some(frontier) = source.frontier.as_mut() else { return Ok(false) };
        if (frontier.issued as usize) < frontier.candidates.len() || frontier.candidates.len() <= 1
        {
            return Ok(false); // rung still issuing, or a single survivor remains
        }
        let mut jobs = Vec::with_capacity(frontier.job_ids.len());
        for job_id in &frontier.job_ids {
            let job = self.get_job(*job_id)?;
            if !matches!(
                job.state,
                JobState::Finished | JobState::Aborted | JobState::Failed | JobState::Quarantined
            ) {
                return Ok(false); // rung not settled yet
            }
            jobs.push(job);
        }
        let table = self.columnar_table(evaluation.id)?;
        let cells = table.data_column(&cfg.metric).map(|c| c.materialize()).unwrap_or_default();
        let scored: Vec<(u64, Option<f64>)> = frontier
            .candidates
            .iter()
            .zip(&jobs)
            .map(|(&candidate, job)| {
                let score = (job.state == JobState::Finished)
                    .then(|| table.gather([job.id.as_u128()]).first().copied())
                    .flatten()
                    .and_then(|row| cells.get(row).and_then(|cell| cell.as_f64()));
                (candidate, score)
            })
            .collect();
        prune_rung(frontier, &scored, &cfg);
        Ok(true)
    }

    /// Checks the fencing token: a write from attempt `attempt` is only
    /// valid while the job is still running *that* attempt. Anything else
    /// means the lease was lost (the job timed out and was rescheduled, or a
    /// newer attempt already owns it).
    fn check_fence(job: &Job, attempt: Option<u32>, what: &str) -> CoreResult<()> {
        if job.state != JobState::Running {
            return Err(CoreError::LeaseLost(format!(
                "{what} rejected: job {} is {}, not running",
                job.id, job.state
            )));
        }
        if let Some(attempt) = attempt {
            if attempt != job.attempts {
                return Err(CoreError::LeaseLost(format!(
                    "{what} rejected: stale attempt {attempt} (job {} is on attempt {})",
                    job.id, job.attempts
                )));
            }
        }
        Ok(())
    }

    /// Agent protocol: heartbeat with optional progress update. `attempt`
    /// is the fencing token: a zombie agent heartbeating a rescheduled job
    /// gets [`CoreError::LeaseLost`] and must cancel its run.
    pub fn heartbeat(
        &self,
        job_id: Id,
        progress: Option<u8>,
        attempt: Option<u32>,
    ) -> CoreResult<Job> {
        let _guard = self.write_lock.lock();
        let mut job = self.get_job(job_id)?;
        Self::check_fence(&job, attempt, "heartbeat")?;
        job.heartbeat_at = Some(self.now());
        if let Some(p) = progress {
            job.progress = p.min(100);
        }
        self.save_job(&job)?;
        Ok(job)
    }

    /// Agent protocol: appends log output (paper §2.2: "the agent
    /// periodically sends the output of the logger to Chronos Control").
    pub fn append_log(&self, job_id: Id, text: &str) -> CoreResult<()> {
        let _guard = self.write_lock.lock();
        let mut job = self.get_job(job_id)?;
        job.log.push_str(text);
        if !text.ends_with('\n') {
            job.log.push('\n');
        }
        self.save_job(&job)
    }

    /// Agent protocol: uploads the result ("a JSON and a zip file") and
    /// finishes the job — exactly once. `attempt` fences out zombie
    /// attempts; `idempotency_key` deduplicates retries of an upload whose
    /// response was lost (the stored result is returned instead of storing
    /// a second copy).
    pub fn finish_job(
        &self,
        job_id: Id,
        data: Value,
        archive: Vec<u8>,
        attempt: Option<u32>,
        idempotency_key: Option<&str>,
    ) -> CoreResult<JobResult> {
        let _guard = self.write_lock.lock();
        let mut job = self.get_job(job_id)?;
        if job.state == JobState::Finished
            && idempotency_key.is_some()
            && job.result_key.as_deref() == idempotency_key
        {
            // Duplicate of an accepted upload: return the stored result.
            let result_id =
                job.result_id.ok_or_else(|| CoreError::not_found("result", "finished job"))?;
            return self.get_result(result_id);
        }
        Self::check_fence(&job, attempt, "result upload")?;
        let now = self.now();
        job.apply(JobEvent::Finish, now, "result uploaded")?;
        job.progress = 100;
        let result = JobResult { id: Id::generate(), job_id, data, archive, created_at: now };
        let mut stored = result.to_json();
        stored.set("archive_b64", chronos_util::encode::base64_encode(&result.archive));
        self.store.put(KIND_RESULT, &result.id.to_base32(), stored)?;
        job.result_id = Some(result.id);
        job.result_key = idempotency_key.map(str::to_string);
        self.save_job(&job)?;
        self.analytics.ingest(
            job.evaluation_id.as_u128(),
            job_id.as_u128(),
            &job.parameters,
            &result.data,
            &crate::analysis::STANDARD_METRIC_PATHS,
        );
        Ok(result)
    }

    /// Agent protocol: reports a failure. Auto-reschedules when policy
    /// allows (requirement *(iii)*). `attempt` fences out zombie attempts,
    /// so a timed-out agent cannot fail (and re-reschedule) a job a newer
    /// attempt is running.
    pub fn fail_job(&self, job_id: Id, reason: &str, attempt: Option<u32>) -> CoreResult<Job> {
        let _guard = self.write_lock.lock();
        if attempt.is_some() {
            let job = self.get_job(job_id)?;
            Self::check_fence(&job, attempt, "failure report")?;
        }
        self.fail_job_locked(job_id, reason)
    }

    fn fail_job_locked(&self, job_id: Id, reason: &str) -> CoreResult<Job> {
        let mut job = self.get_job(job_id)?;
        let now = self.now();
        job.apply(JobEvent::Fail, now, reason)?;
        job.failure = Some(reason.to_string());
        job.heartbeat_at = None;
        if self.config.may_auto_reschedule(job.attempts) {
            job.apply(
                JobEvent::Reschedule,
                now,
                &format!(
                    "automatically re-scheduled (attempt {} of {})",
                    job.attempts + 1,
                    self.config.max_attempts
                ),
            )?;
            job.deployment_id = None;
            job.progress = 0;
            job.claim_key = None;
        } else if self.config.auto_reschedule {
            // Poison-job containment: under automatic rescheduling a job
            // that exhausted max_attempts would otherwise sit failed and be
            // re-fed to agents by operators forever. Quarantine is terminal;
            // the scheduler, sweeper, and adaptive scoring all treat it as a
            // deterministically-missing result. With auto_reschedule off the
            // job stays Failed so manual rescheduling keeps working.
            job.apply(
                JobEvent::Quarantine,
                now,
                &format!(
                    "quarantined after {} failed attempts (max_attempts {})",
                    job.attempts, self.config.max_attempts
                ),
            )?;
        }
        self.save_job(&job)?;
        Ok(job)
    }

    /// Aborts a scheduled or running job (paper Fig. 3c).
    pub fn abort_job(&self, job_id: Id) -> CoreResult<Job> {
        let _guard = self.write_lock.lock();
        let mut job = self.get_job(job_id)?;
        job.apply(JobEvent::Abort, self.now(), "aborted by user")?;
        self.save_job(&job)?;
        Ok(job)
    }

    /// Manually re-schedules a failed job (paper Fig. 3c).
    pub fn reschedule_job(&self, job_id: Id) -> CoreResult<Job> {
        let _guard = self.write_lock.lock();
        let mut job = self.get_job(job_id)?;
        job.apply(JobEvent::Reschedule, self.now(), "re-scheduled by user")?;
        job.deployment_id = None;
        job.progress = 0;
        job.failure = None;
        job.claim_key = None;
        self.save_job(&job)?;
        Ok(job)
    }

    /// Failure detection sweep: fails every running job whose heartbeat
    /// lease expired. Returns the affected job ids. Call periodically.
    pub fn check_timeouts(&self) -> CoreResult<Vec<Id>> {
        let now = self.now();
        let mut timed_out = Vec::new();
        let candidates: Vec<Id> = {
            let _guard = self.write_lock.lock();
            self.store
                .ids(KIND_JOB)
                .iter()
                .filter_map(|id| self.store.get(KIND_JOB, id))
                .filter_map(|doc| Job::from_json(&doc).ok())
                .filter(|job| {
                    job.state == JobState::Running
                        && self.config.lease_expired(job.heartbeat_at, now)
                })
                .map(|job| job.id)
                .collect()
        };
        for job_id in candidates {
            let _guard = self.write_lock.lock();
            // Re-check under the lock (the agent may have heartbeat since).
            let job = self.get_job(job_id)?;
            if job.state == JobState::Running && self.config.lease_expired(job.heartbeat_at, now) {
                self.fail_job_locked(
                    job_id,
                    &format!("heartbeat timeout after {} ms", self.config.heartbeat_timeout_millis),
                )?;
                timed_out.push(job_id);
            }
        }
        Ok(timed_out)
    }

    /// Fetches a result by id, decoding the stored archive.
    pub fn get_result(&self, id: Id) -> CoreResult<JobResult> {
        let doc = self
            .store
            .get(KIND_RESULT, &id.to_base32())
            .ok_or_else(|| CoreError::not_found("result", id))?;
        let archive = doc
            .get("archive_b64")
            .and_then(Value::as_str)
            .and_then(chronos_util::encode::base64_decode)
            .unwrap_or_default();
        Ok(JobResult {
            id,
            job_id: crate::model::parse_id(&doc, "job_id")?,
            data: doc.get("data").cloned().unwrap_or(Value::Null),
            archive,
            created_at: doc.get("created_at").and_then(Value::as_u64).unwrap_or(0),
        })
    }

    /// Total number of stored results. The chaos suite uses this to prove
    /// exactly-once semantics: one result per finished job, zero duplicates.
    pub fn count_results(&self) -> usize {
        self.store.ids(KIND_RESULT).len()
    }

    /// The result of a job, if it has one.
    pub fn result_for_job(&self, job_id: Id) -> CoreResult<Option<JobResult>> {
        match self.get_job(job_id)?.result_id {
            Some(result_id) => Ok(Some(self.get_result(result_id)?)),
            None => Ok(None),
        }
    }

    /// Compacts the metadata log (jobs accumulate log/timeline rewrites).
    pub fn compact_store(&self) -> CoreResult<()> {
        self.store.compact()
    }

    // ----- columnar analytics ------------------------------------------------

    /// The columnar result table of an evaluation.
    ///
    /// Tables are maintained incrementally by [`ChronosControl::finish_job`].
    /// Evaluations that predate the analytics store (a reopened metadata
    /// log) are lazily backfilled from the row store on first read; a
    /// backfill that races a concurrent upload serves its own consistent
    /// snapshot and leaves the rebuild to the next reader.
    pub fn columnar_table(&self, evaluation_id: Id) -> CoreResult<ResultTable> {
        let key = evaluation_id.as_u128();
        let loaded = self.analytics.load(key);
        if loaded.backfilled {
            return Ok(loaded.table);
        }
        let points = crate::analysis::collect_points(self, evaluation_id)?;
        let mut table = ResultTable::new();
        for point in &points {
            table.append(
                point.job_id.as_u128(),
                &point.parameters,
                &point.data,
                &crate::analysis::STANDARD_METRIC_PATHS,
            );
        }
        self.analytics.install(key, &table, loaded.generation);
        Ok(table)
    }

    /// Caches the outcome of a regression scan for the experiment status
    /// body.
    pub fn set_regression_flag(&self, experiment_id: Id, flag: RegressionFlag) {
        self.analytics.set_flag(experiment_id.as_u128(), flag);
    }

    /// The cached regression flag of an experiment, if a scan ever ran.
    pub fn regression_flag(&self, experiment_id: Id) -> Option<RegressionFlag> {
        self.analytics.flag(experiment_id.as_u128())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charts::ChartSpec;
    use crate::jobsource::AdaptiveConfig;
    use crate::params::{ParamDef, ParamType};
    use chronos_json::obj;
    use chronos_util::MockClock;

    fn control_with_clock() -> (ChronosControl, MockClock) {
        let clock = MockClock::new(1_000_000);
        let control = ChronosControl::new(
            MetadataStore::in_memory(),
            Arc::new(clock.clone()),
            SchedulerConfig {
                heartbeat_timeout_millis: 10_000,
                max_attempts: 2,
                auto_reschedule: true,
            },
        );
        (control, clock)
    }

    fn demo_system(control: &ChronosControl) -> System {
        control
            .register_system(
                "minidoc",
                "embedded document store",
                vec![
                    ParamDef::new(
                        "engine",
                        "storage engine",
                        ParamType::Checkbox { options: vec!["wiredtiger".into(), "mmapv1".into()] },
                        Value::from("wiredtiger"),
                    )
                    .unwrap(),
                    ParamDef::new(
                        "threads",
                        "client threads",
                        ParamType::Interval { min: 1, max: 16, step: 1 },
                        Value::from(1),
                    )
                    .unwrap(),
                ],
                vec![ChartSpec {
                    kind: "line".into(),
                    title: "Throughput".into(),
                    x_param: "threads".into(),
                    series_param: Some("engine".into()),
                    value_path: "/throughput_ops_per_sec".into(),
                    y_label: "ops/s".into(),
                }],
            )
            .unwrap()
    }

    /// Builds the full demo object graph and returns (control, clock,
    /// evaluation with 4 jobs, deployment).
    fn demo_evaluation() -> (ChronosControl, MockClock, Evaluation, Deployment) {
        let (control, clock) = control_with_clock();
        let system = demo_system(&control);
        let deployment = control.create_deployment(system.id, "node-a", "1.0").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("demo", "", owner.id).unwrap();
        let experiment = control
            .create_experiment(
                project.id,
                system.id,
                "engines",
                "",
                ParamAssignments::new()
                    .sweep_all("engine")
                    .sweep("threads", vec![Value::from(1), Value::from(2)]),
            )
            .unwrap();
        let evaluation = control.create_evaluation(experiment.id).unwrap();
        (control, clock, evaluation, deployment)
    }

    #[test]
    fn user_lifecycle_and_sessions() {
        let (control, _clock) = control_with_clock();
        let user = control.create_user("ada", "pw", Role::Member).unwrap();
        assert!(matches!(
            control.create_user("ada", "other", Role::Viewer),
            Err(CoreError::Conflict(_))
        ));
        assert!(control.login("ada", "wrong").is_err());
        let token = control.login("ada", "pw").unwrap();
        assert_eq!(control.authenticate(&token).unwrap().id, user.id);
        assert!(control.logout(&token));
        assert!(control.authenticate(&token).is_err());
    }

    #[test]
    fn system_registration_and_duplicates() {
        let (control, _clock) = control_with_clock();
        let system = demo_system(&control);
        assert!(control.register_system("minidoc", "", vec![], vec![]).is_err());
        assert_eq!(control.find_system("minidoc").unwrap().id, system.id);
        assert_eq!(control.list_systems().len(), 1);
        assert_eq!(control.get_system(system.id).unwrap().charts.len(), 1);
    }

    #[test]
    fn system_from_definition_document() {
        let (control, _clock) = control_with_clock();
        let definition = obj! {
            "name" => "postgres",
            "description" => "relational db",
            "parameters" => chronos_json::arr![
                obj! {"name" => "fsync", "type" => "boolean", "default" => true}
            ],
            "charts" => chronos_json::arr![],
        };
        let system = control.register_system_from_definition(&definition).unwrap();
        assert_eq!(system.parameters.len(), 1);
        assert_eq!(system.parameters[0].name, "fsync");
    }

    #[test]
    fn evaluation_expansion_is_lazy() {
        let (control, _clock, evaluation, deployment) = demo_evaluation();
        assert!(evaluation.job_ids.is_empty(), "lazy evaluations start with no job documents");
        assert_eq!(evaluation.swept_params, vec!["engine", "threads"]);
        let source = evaluation.source.as_ref().unwrap();
        assert_eq!(source.total_points, 4); // 2 engines x 2 thread counts
        let status = control.evaluation_status(evaluation.id).unwrap();
        assert_eq!(status.remaining, Some(4));
        assert_eq!(status.total(), 4);
        assert_eq!(status.progress_percent(), 0, "nothing ran yet");
        assert!(!status.is_settled());
        // Claiming materializes points one at a time.
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(job.point_index, Some(0));
        let status = control.evaluation_status(evaluation.id).unwrap();
        assert_eq!(status.running, 1);
        assert_eq!(status.remaining, Some(3));
        assert_eq!(status.total(), 4);
        assert_eq!(control.list_jobs(evaluation.id).unwrap().len(), 1);
    }

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let (control, _clock, evaluation, deployment) = demo_evaluation();
        let mut claimed = Vec::new();
        while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
            assert_eq!(job.state, JobState::Running);
            assert_eq!(job.deployment_id, Some(deployment.id));
            assert_eq!(job.attempts, 1);
            assert_eq!(job.point_index, Some(claimed.len() as u64), "points issue in order");
            claimed.push(job.id);
        }
        assert_eq!(claimed.len(), 4);
        // Materialization order preserved.
        assert_eq!(claimed, control.get_evaluation(evaluation.id).unwrap().job_ids);
        assert!(control.claim_next_job(deployment.id, None).unwrap().is_none());
    }

    #[test]
    fn inactive_deployment_cannot_claim() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        control.set_deployment_active(deployment.id, false).unwrap();
        assert!(matches!(control.claim_next_job(deployment.id, None), Err(CoreError::Conflict(_))));
    }

    #[test]
    fn deployment_only_claims_its_system() {
        let (control, _clock, _evaluation, _deployment) = demo_evaluation();
        let other = control.register_system("otherdb", "", vec![], vec![]).unwrap();
        let other_deployment = control.create_deployment(other.id, "node-b", "1").unwrap();
        assert!(control.claim_next_job(other_deployment.id, None).unwrap().is_none());
    }

    #[test]
    fn full_job_lifecycle_with_result() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.heartbeat(job.id, Some(50), None).unwrap();
        control.append_log(job.id, "loading 1000 records").unwrap();
        control.append_log(job.id, "running transactions\n").unwrap();
        let result = control
            .finish_job(
                job.id,
                obj! {"throughput_ops_per_sec" => 1234.5},
                b"PK\x05\x06zip".to_vec(),
                None,
                None,
            )
            .unwrap();
        let job = control.get_job(job.id).unwrap();
        assert_eq!(job.state, JobState::Finished);
        assert_eq!(job.progress, 100);
        assert_eq!(job.result_id, Some(result.id));
        assert_eq!(job.log, "loading 1000 records\nrunning transactions\n");
        assert!(job.timeline.iter().any(|e| e.kind == "finished"));
        let fetched = control.result_for_job(job.id).unwrap().unwrap();
        assert_eq!(fetched.archive, b"PK\x05\x06zip");
        assert_eq!(
            fetched.data.get("throughput_ops_per_sec").and_then(Value::as_f64),
            Some(1234.5)
        );
    }

    #[test]
    fn failure_auto_reschedules_until_attempts_exhausted_then_quarantines() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        // Attempt 1 fails -> auto rescheduled.
        let failed = control.fail_job(job.id, "agent crashed", None).unwrap();
        assert_eq!(failed.state, JobState::Scheduled);
        assert_eq!(failed.attempts, 1);
        // Claim again (attempt 2) and fail: max_attempts=2 -> quarantined
        // (poison-job containment under automatic rescheduling).
        let again = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(again.id, job.id, "rescheduled job is claimed first (oldest)");
        let failed = control.fail_job(job.id, "agent crashed again", None).unwrap();
        assert_eq!(failed.state, JobState::Quarantined);
        assert_eq!(failed.failure.as_deref(), Some("agent crashed again"));
        assert!(failed.timeline.iter().any(|e| e.message.contains("quarantined after 2")));
        // Quarantine is terminal: no reschedule, no claim, never resurrects.
        assert!(matches!(control.reschedule_job(job.id), Err(CoreError::Conflict(_))));
        assert!(control.claim_next_job(deployment.id, None).unwrap().map(|j| j.id) != Some(job.id));
        // The roll-up reports it and treats it as settled work.
        let status = control.evaluation_status(failed.evaluation_id).unwrap();
        assert_eq!(status.quarantined, 1);
    }

    #[test]
    fn manual_scheduling_keeps_failed_jobs_reschedulable() {
        // With auto_reschedule off, exhausting attempts must NOT quarantine:
        // operators drive retries by hand and expect Failed -> Scheduled to
        // keep working exactly as before.
        let clock = MockClock::new(1_000_000);
        let control = ChronosControl::new(
            MetadataStore::in_memory(),
            Arc::new(clock.clone()),
            SchedulerConfig {
                heartbeat_timeout_millis: 10_000,
                max_attempts: 1,
                auto_reschedule: false,
            },
        );
        let system = demo_system(&control);
        let deployment = control.create_deployment(system.id, "node-a", "1.0").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("demo", "", owner.id).unwrap();
        let experiment = control
            .create_experiment(
                project.id,
                system.id,
                "engines",
                "",
                ParamAssignments::new().fix("engine", "wiredtiger").fix("threads", 1),
            )
            .unwrap();
        control.create_evaluation(experiment.id).unwrap();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        let failed = control.fail_job(job.id, "crashed", None).unwrap();
        assert_eq!(failed.state, JobState::Failed, "manual mode never quarantines");
        let rescheduled = control.reschedule_job(job.id).unwrap();
        assert_eq!(rescheduled.state, JobState::Scheduled);
        assert!(rescheduled.failure.is_none());
    }

    #[test]
    fn heartbeat_timeout_detection() {
        let (control, clock, _evaluation, deployment) = demo_evaluation();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        // Within the lease: nothing happens.
        clock.advance_millis(5_000);
        assert!(control.check_timeouts().unwrap().is_empty());
        control.heartbeat(job.id, None, None).unwrap();
        // Lease expires.
        clock.advance_millis(10_001);
        let timed_out = control.check_timeouts().unwrap();
        assert_eq!(timed_out, vec![job.id]);
        let job = control.get_job(job.id).unwrap();
        // Auto-rescheduled after the timeout failure.
        assert_eq!(job.state, JobState::Scheduled);
        assert!(job.timeline.iter().any(|e| e.message.contains("heartbeat timeout")));
    }

    #[test]
    fn abort_semantics() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        // Abort a scheduled job (a failed claim auto-reschedules into one).
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.fail_job(job.id, "agent crashed", None).unwrap();
        assert_eq!(control.get_job(job.id).unwrap().state, JobState::Scheduled);
        control.abort_job(job.id).unwrap();
        assert_eq!(control.get_job(job.id).unwrap().state, JobState::Aborted);
        // Abort a running job.
        let running = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.abort_job(running.id).unwrap();
        // Aborting a finished job fails.
        let next = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.finish_job(next.id, obj! {}, vec![], None, None).unwrap();
        assert!(matches!(control.abort_job(next.id), Err(CoreError::Conflict(_))));
        // Heartbeat on an aborted job fails.
        assert!(control.heartbeat(running.id, None, None).is_err());
    }

    #[test]
    fn project_access_control() {
        let (control, _clock) = control_with_clock();
        let owner = control.create_user("owner", "pw", Role::Member).unwrap();
        let outsider = control.create_user("outsider", "pw", Role::Member).unwrap();
        let admin = control.create_user("root", "pw", Role::Admin).unwrap();
        let project = control.create_project("private", "", owner.id).unwrap();
        assert!(control.require_project_access(project.id, &owner).is_ok());
        assert!(control.require_project_access(project.id, &outsider).is_err());
        assert!(control.require_project_access(project.id, &admin).is_ok());
        control.add_project_member(project.id, outsider.id).unwrap();
        assert!(control.require_project_access(project.id, &outsider).is_ok());
    }

    #[test]
    fn archived_entities_are_frozen() {
        let (control, _clock, _evaluation, _deployment) = demo_evaluation();
        let project = &control.list_projects()[0];
        let experiment = &control.list_experiments(Some(project.id))[0];
        control.archive_experiment(experiment.id).unwrap();
        assert!(matches!(control.create_evaluation(experiment.id), Err(CoreError::Conflict(_))));
        control.archive_project(project.id).unwrap();
        let system = control.find_system("minidoc").unwrap();
        assert!(matches!(
            control.create_experiment(project.id, system.id, "x", "", ParamAssignments::new()),
            Err(CoreError::Conflict(_))
        ));
    }

    #[test]
    fn parallel_claims_never_collide() {
        let (control, _clock, evaluation, deployment) = demo_evaluation();
        let control = Arc::new(control);
        let claimed: Vec<Option<Id>> = chronos_util::pool::scoped_indexed(8, |_| {
            control.claim_next_job(deployment.id, None).unwrap().map(|j| j.id)
        });
        let got: Vec<Id> = claimed.into_iter().flatten().collect();
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), got.len(), "double-claimed a job");
        assert_eq!(got.len(), 4, "every point materialized and claimed exactly once");
        let evaluation = control.get_evaluation(evaluation.id).unwrap();
        assert_eq!(evaluation.job_ids.len(), 4);
        let indices: std::collections::HashSet<_> = evaluation
            .job_ids
            .iter()
            .map(|id| control.get_job(*id).unwrap().point_index.unwrap())
            .collect();
        assert_eq!(indices.len(), 4, "concurrent claims duplicated a point");
    }

    #[test]
    fn claim_with_same_idempotency_key_returns_same_job() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        let first = control.claim_next_job(deployment.id, Some("claim-1")).unwrap().unwrap();
        // Retry after a dropped response: same key, same job, no new claim.
        let again = control.claim_next_job(deployment.id, Some("claim-1")).unwrap().unwrap();
        assert_eq!(again.id, first.id);
        assert_eq!(again.attempts, first.attempts);
        // A different key claims the *next* job.
        let other = control.claim_next_job(deployment.id, Some("claim-2")).unwrap().unwrap();
        assert_ne!(other.id, first.id);
    }

    #[test]
    fn duplicate_result_upload_is_deduplicated() {
        let (control, _clock, _evaluation, deployment) = demo_evaluation();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        let first = control
            .finish_job(job.id, obj! {"ok" => 1}, b"zip".to_vec(), Some(job.attempts), Some("up-1"))
            .unwrap();
        // Retry of the same upload (response was lost): stored result returned.
        let again = control
            .finish_job(job.id, obj! {"ok" => 1}, b"zip".to_vec(), Some(job.attempts), Some("up-1"))
            .unwrap();
        assert_eq!(again.id, first.id);
        assert_eq!(control.count_results(), 1, "duplicate upload stored a second result");
        // A *different* upload against the finished job is still rejected.
        assert!(matches!(
            control.finish_job(job.id, obj! {}, vec![], Some(job.attempts), Some("up-2")),
            Err(CoreError::LeaseLost(_))
        ));
    }

    #[test]
    fn stale_attempt_writes_are_fenced() {
        let (control, clock, _evaluation, deployment) = demo_evaluation();
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(job.attempts, 1);
        // The lease expires and the sweep reschedules the job.
        clock.advance(std::time::Duration::from_millis(20_000));
        assert_eq!(control.check_timeouts().unwrap(), vec![job.id]);
        // A second agent claims attempt 2 and the zombie's writes bounce.
        let second = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(second.id, job.id);
        assert_eq!(second.attempts, 2);
        assert!(matches!(
            control.heartbeat(job.id, Some(10), Some(1)),
            Err(CoreError::LeaseLost(_))
        ));
        assert!(matches!(
            control.finish_job(job.id, obj! {}, vec![], Some(1), Some("zombie-up")),
            Err(CoreError::LeaseLost(_))
        ));
        assert!(matches!(
            control.fail_job(job.id, "zombie says broken", Some(1)),
            Err(CoreError::LeaseLost(_))
        ));
        // The live attempt is unaffected and finishes normally.
        control.heartbeat(job.id, Some(50), Some(2)).unwrap();
        control.finish_job(job.id, obj! {"ok" => 1}, vec![], Some(2), Some("live-up")).unwrap();
        assert_eq!(control.get_job(job.id).unwrap().state, JobState::Finished);
        assert_eq!(control.count_results(), 1);
    }

    #[test]
    fn stalled_run_is_rescheduled_and_zombie_fenced_on_upload() {
        // Satellite: lease_expired + may_auto_reschedule integration. A run
        // heartbeats fine, stalls past the timeout, gets rescheduled, and
        // the zombie attempt's upload is fenced.
        let (control, clock) = control_with_clock();
        let system = demo_system(&control);
        let deployment = control.create_deployment(system.id, "node-a", "1.0").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("demo", "", owner.id).unwrap();
        let experiment = control
            .create_experiment(
                project.id,
                system.id,
                "lease",
                "",
                ParamAssignments::new().fix("threads", 2),
            )
            .unwrap();
        control.create_evaluation(experiment.id).unwrap();

        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        // Healthy heartbeats keep the lease alive across several sweeps.
        for _ in 0..3 {
            clock.advance(std::time::Duration::from_millis(5_000));
            control.heartbeat(job.id, None, Some(job.attempts)).unwrap();
            assert!(control.check_timeouts().unwrap().is_empty());
        }
        // Then the agent stalls past heartbeat_timeout_millis (10s).
        clock.advance(std::time::Duration::from_millis(10_001));
        assert_eq!(control.check_timeouts().unwrap(), vec![job.id]);
        let rescheduled = control.get_job(job.id).unwrap();
        assert_eq!(rescheduled.state, JobState::Scheduled, "may_auto_reschedule should apply");
        assert_eq!(rescheduled.deployment_id, None);

        // Attempt 2 claims and finishes; the stalled attempt-1 agent wakes
        // up and tries to upload — fenced, zero duplicate results.
        let second = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(second.attempts, 2);
        control.finish_job(job.id, obj! {"ok" => 2}, vec![], Some(2), Some("live")).unwrap();
        assert!(matches!(
            control.finish_job(job.id, obj! {"ok" => 1}, vec![], Some(1), Some("zombie")),
            Err(CoreError::LeaseLost(_))
        ));
        assert_eq!(control.count_results(), 1);
        // max_attempts = 2: a further failure would not be rescheduled.
        assert!(!control.scheduler_config().may_auto_reschedule(2));
    }

    #[test]
    fn control_state_survives_restart() {
        let path = std::env::temp_dir()
            .join(format!("chronos-control-restart-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let clock: Arc<dyn Clock> = Arc::new(SystemClock);
        let (system_id, evaluation_id, job_id);
        {
            let control = ChronosControl::new(
                MetadataStore::open(&path).unwrap(),
                Arc::clone(&clock),
                SchedulerConfig::default(),
            );
            let system = demo_system(&control);
            system_id = system.id;
            let deployment = control.create_deployment(system.id, "n", "1").unwrap();
            let owner = control.create_user("ada", "pw", Role::Member).unwrap();
            let project = control.create_project("p", "", owner.id).unwrap();
            let experiment = control
                .create_experiment(
                    project.id,
                    system.id,
                    "e",
                    "",
                    ParamAssignments::new().fix("threads", 2),
                )
                .unwrap();
            let evaluation = control.create_evaluation(experiment.id).unwrap();
            evaluation_id = evaluation.id;
            let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
            job_id = job.id;
            control.append_log(job.id, "halfway there").unwrap();
        }
        {
            let control = ChronosControl::new(
                MetadataStore::open(&path).unwrap(),
                clock,
                SchedulerConfig::default(),
            );
            assert_eq!(control.get_system(system_id).unwrap().name, "minidoc");
            assert_eq!(control.get_evaluation(evaluation_id).unwrap().job_ids.len(), 1);
            let job = control.get_job(job_id).unwrap();
            assert_eq!(job.state, JobState::Running);
            assert!(job.log.contains("halfway there"));
            // The restarted control can fail the orphaned job via timeout.
            let timed_out = control.check_timeouts().unwrap();
            assert!(timed_out.is_empty() || timed_out == vec![job_id]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn grid_claims_match_eager_expansion_oracle() {
        // The compatibility oracle: lazily materialized grid jobs carry
        // exactly the parameter documents the historic eager expansion
        // produced, in the same order.
        let (control, _clock, evaluation, deployment) = demo_evaluation();
        let experiment = control.get_experiment(evaluation.experiment_id).unwrap();
        let system = control.get_system(experiment.system_id).unwrap();
        let eager = experiment.assignments.expand(&system.parameters).unwrap();
        let mut lazy = Vec::new();
        while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
            lazy.push(job.parameters.clone());
        }
        assert_eq!(lazy, eager);
    }

    #[test]
    fn orphaned_materialization_is_adopted_not_duplicated() {
        let (control, _clock, evaluation, deployment) = demo_evaluation();
        // Simulate the crash window: the job document for point 0 landed
        // but the evaluation update never did.
        let experiment = control.get_experiment(evaluation.experiment_id).unwrap();
        let system = control.get_system(experiment.system_id).unwrap();
        let space = PointSpace::build(&experiment.assignments, &system.parameters).unwrap();
        let mut orphan =
            Job::new(evaluation.id, system.id, space.point_at(0).unwrap(), control.now());
        orphan.point_index = Some(0);
        control.store.put(KIND_JOB, &orphan.id.to_base32(), orphan.to_json()).unwrap();

        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        assert_eq!(job.id, orphan.id, "the orphan is adopted for point 0");
        assert_eq!(job.point_index, Some(0));
        assert_eq!(control.get_evaluation(evaluation.id).unwrap().job_ids, vec![orphan.id]);
        // Drain the rest: exactly one job per point, no duplicates.
        let mut total = 1;
        while control.claim_next_job(deployment.id, None).unwrap().is_some() {
            total += 1;
        }
        assert_eq!(total, 4);
        assert_eq!(control.get_evaluation(evaluation.id).unwrap().job_ids.len(), 4);
    }

    /// Drives an adaptive evaluation over a 16-point 1-d space whose metric
    /// peaks at x = 11; returns (jobs run, decision log, surviving index).
    fn run_adaptive_surface(control: &ChronosControl, seed: u64) -> (usize, Vec<Value>, u64) {
        let system = control
            .register_system(
                "surface",
                "",
                vec![ParamDef::new(
                    "x",
                    "",
                    ParamType::Interval { min: 0, max: 15, step: 1 },
                    Value::from(0),
                )
                .unwrap()],
                vec![],
            )
            .unwrap();
        let deployment = control.create_deployment(system.id, "node", "1").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("p", "", owner.id).unwrap();
        let experiment = control
            .create_experiment_with_strategy(
                project.id,
                system.id,
                "adaptive",
                "",
                ParamAssignments::new().sweep_all("x"),
                Strategy::Adaptive(AdaptiveConfig {
                    seed,
                    initial: Some(8),
                    eta: 2,
                    ..Default::default()
                }),
            )
            .unwrap();
        let evaluation = control.create_evaluation(experiment.id).unwrap();
        let mut jobs = 0;
        while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
            jobs += 1;
            let x = job.parameters.get("x").and_then(Value::as_i64).unwrap();
            let score = 1000.0 - ((x - 11) * (x - 11)) as f64;
            control
                .finish_job(
                    job.id,
                    obj! {"throughput_ops_per_sec" => score},
                    vec![],
                    Some(job.attempts),
                    None,
                )
                .unwrap();
        }
        let evaluation = control.get_evaluation(evaluation.id).unwrap();
        let frontier = evaluation.source.unwrap().frontier.unwrap();
        assert_eq!(frontier.candidates.len(), 1, "exactly one survivor");
        let status = control.evaluation_status(evaluation.id).unwrap();
        assert!(status.is_settled());
        assert_eq!(status.remaining, Some(0));
        (jobs, frontier.decisions.clone(), frontier.candidates[0])
    }

    #[test]
    fn adaptive_evaluation_prunes_to_best_candidate() {
        let (control, _clock) = control_with_clock();
        let (jobs, decisions, survivor) = run_adaptive_surface(&control, 7);
        // Rungs of 8, 4, 2, 1 candidates: 15 jobs, never the full 16-grid.
        assert_eq!(jobs, 8 + 4 + 2 + 1);
        assert_eq!(decisions.len(), 3, "one decision per completed rung");
        // The survivor is the best rung-0 candidate under the surface
        // (x = point index here, metric peaks at 11).
        let rung0: Vec<u64> = decisions[0]
            .pointer("/candidates")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        let best = rung0.iter().copied().min_by_key(|&c| (c as i64 - 11).abs()).unwrap();
        assert_eq!(survivor, best);
        // Replaying the same seed yields an identical decision log.
        let (control2, _clock2) = control_with_clock();
        let (jobs2, decisions2, survivor2) = run_adaptive_surface(&control2, 7);
        assert_eq!(jobs2, jobs);
        assert_eq!(decisions2, decisions);
        assert_eq!(survivor2, survivor);
    }

    /// Like [`run_adaptive_surface`], but the experiment carries a cpu
    /// budget and the point `x == poison_x` is a runaway: every attempt is
    /// killed with the typed budget failure, so it quarantines after
    /// `max_attempts` and must be scored as deterministically missing.
    /// Returns (decision log, surviving index, quarantined count).
    fn run_adaptive_surface_with_poison(
        control: &ChronosControl,
        seed: u64,
        poison_x: i64,
    ) -> (Vec<Value>, u64, usize) {
        let system = control
            .register_system(
                "surface",
                "",
                vec![ParamDef::new(
                    "x",
                    "",
                    ParamType::Interval { min: 0, max: 15, step: 1 },
                    Value::from(0),
                )
                .unwrap()],
                vec![],
            )
            .unwrap();
        let deployment = control.create_deployment(system.id, "node", "1").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("p", "", owner.id).unwrap();
        let experiment = control
            .create_experiment_with_options(
                project.id,
                system.id,
                "adaptive+budget",
                "",
                ParamAssignments::new().sweep_all("x"),
                Strategy::Adaptive(AdaptiveConfig {
                    seed,
                    initial: Some(8),
                    eta: 2,
                    ..Default::default()
                }),
                Some(chronos_api::v1::JobBudget { cpu_millis: Some(250), ..Default::default() }),
            )
            .unwrap();
        let evaluation = control.create_evaluation(experiment.id).unwrap();
        while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
            assert_eq!(
                job.budget.and_then(|b| b.cpu_millis),
                Some(250),
                "the experiment budget rides every materialized job"
            );
            let x = job.parameters.get("x").and_then(Value::as_i64).unwrap();
            if x == poison_x {
                control
                    .fail_job(
                        job.id,
                        "budget_exceeded:cpu_millis: measured 900 > budget 250",
                        Some(job.attempts),
                    )
                    .unwrap();
                continue;
            }
            let score = 1000.0 - ((x - 11) * (x - 11)) as f64;
            control
                .finish_job(
                    job.id,
                    obj! {"throughput_ops_per_sec" => score},
                    vec![],
                    Some(job.attempts),
                    None,
                )
                .unwrap();
        }
        let status = control.evaluation_status(evaluation.id).unwrap();
        assert!(status.is_settled(), "quarantined jobs settle the evaluation");
        let evaluation = control.get_evaluation(evaluation.id).unwrap();
        let frontier = evaluation.source.unwrap().frontier.unwrap();
        assert_eq!(frontier.candidates.len(), 1, "exactly one survivor");
        (frontier.decisions.clone(), frontier.candidates[0], status.quarantined)
    }

    #[test]
    fn quarantined_jobs_score_as_missing_and_replay_identically() {
        // Find the clean winner first, then poison exactly that point: its
        // budget kills quarantine it, the scorer ranks the missing result
        // last, and a different candidate must win.
        let (control, _clock) = control_with_clock();
        let (_, _, clean_survivor) = run_adaptive_surface(&control, 7);

        let (control_a, _clock_a) = control_with_clock();
        let (decisions_a, survivor_a, quarantined_a) =
            run_adaptive_surface_with_poison(&control_a, 7, clean_survivor as i64);
        assert_eq!(quarantined_a, 1, "the poisoned point ends quarantined");
        assert_ne!(survivor_a, clean_survivor, "a quarantined candidate cannot win");

        // Deterministic replay: a fresh control plane given the same seed
        // and the same poison produces an identical decision log — the
        // property PR 8's failover replay identity rests on.
        let (control_b, _clock_b) = control_with_clock();
        let (decisions_b, survivor_b, quarantined_b) =
            run_adaptive_surface_with_poison(&control_b, 7, clean_survivor as i64);
        assert_eq!(decisions_b, decisions_a);
        assert_eq!(survivor_b, survivor_a);
        assert_eq!(quarantined_b, quarantined_a);
    }
}
