//! Scheduling and reliability policy.
//!
//! Requirements *(ii)* and *(iii)* of the paper: support parallel execution
//! across multiple identical deployments, and keep long-running evaluations
//! alive through automated failure handling and recovery of failed runs.
//!
//! The mechanism: agents *claim* scheduled jobs for the system their
//! deployment runs (pull-based, so any number of identical deployments
//! drains the same queue in parallel); running jobs carry a heartbeat lease;
//! [`SchedulerConfig::heartbeat_timeout_millis`] without a heartbeat marks a
//! job failed; failed jobs are automatically re-scheduled up to
//! [`SchedulerConfig::max_attempts`].

/// Reliability and scheduling tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// A running job whose last heartbeat is older than this is failed.
    pub heartbeat_timeout_millis: u64,
    /// Total attempts (first run + automatic re-schedules) before a job
    /// stays failed and waits for manual rescheduling.
    pub max_attempts: u32,
    /// Whether timed-out/failed jobs are re-scheduled automatically.
    pub auto_reschedule: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { heartbeat_timeout_millis: 30_000, max_attempts: 3, auto_reschedule: true }
    }
}

impl SchedulerConfig {
    /// Whether a job with `attempts` completed attempts may be re-scheduled
    /// automatically.
    pub fn may_auto_reschedule(&self, attempts: u32) -> bool {
        self.auto_reschedule && attempts < self.max_attempts
    }

    /// Whether a running job's lease has expired.
    pub fn lease_expired(&self, heartbeat_at: Option<u64>, now: u64) -> bool {
        match heartbeat_at {
            Some(at) => now.saturating_sub(at) > self.heartbeat_timeout_millis,
            None => true, // running with no heartbeat at all: stale claim
        }
    }
}

/// Roll-up of an evaluation's job states (paper Fig. 3b).
///
/// Lazy evaluations also report `remaining`: points of the parameter space
/// that exist in the plan but have not been materialized as jobs yet. They
/// count toward the total and keep the evaluation unsettled — without
/// this, a freshly created lazy evaluation (zero jobs) would read as 100 %
/// complete and settled while every point is still pending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvaluationStatus {
    /// Jobs waiting for an agent.
    pub scheduled: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs completed with results.
    pub finished: usize,
    /// Jobs aborted by users.
    pub aborted: usize,
    /// Jobs in the failed state.
    pub failed: usize,
    /// Jobs quarantined after exhausting `max_attempts`.
    pub quarantined: usize,
    /// Not-yet-materialized points of a lazy evaluation's plan. `None` for
    /// fully-materialized (pre-refactor) evaluations.
    pub remaining: Option<usize>,
}

impl EvaluationStatus {
    /// Total planned work: materialized jobs plus unmaterialized points.
    pub fn total(&self) -> usize {
        self.scheduled
            + self.running
            + self.finished
            + self.aborted
            + self.failed
            + self.quarantined
            + self.remaining.unwrap_or(0)
    }

    /// Whether no further progress will happen without intervention.
    pub fn is_settled(&self) -> bool {
        self.scheduled == 0 && self.running == 0 && self.remaining.unwrap_or(0) == 0
    }

    /// Completed fraction in percent (finished + aborted count as settled;
    /// unmaterialized points count toward the denominator).
    pub fn progress_percent(&self) -> u8 {
        let total = self.total();
        if total == 0 {
            return 100;
        }
        ((self.finished + self.aborted + self.failed + self.quarantined) * 100 / total) as u8
    }

    /// The wire DTO with the derived roll-up fields filled in.
    pub fn dto(&self) -> chronos_api::v1::EvaluationStatusDto {
        chronos_api::v1::EvaluationStatusDto {
            scheduled: self.scheduled,
            running: self.running,
            finished: self.finished,
            aborted: self.aborted,
            failed: self.failed,
            quarantined: self.quarantined,
            total: self.total(),
            settled: self.is_settled(),
            progress_percent: self.progress_percent(),
            remaining_space: self.remaining.map(|r| r as u64),
        }
    }

    /// JSON shape served on the evaluation detail endpoint.
    pub fn to_json(&self) -> chronos_json::Value {
        use chronos_api::WireEncode;
        self.dto().to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expiry() {
        let config = SchedulerConfig { heartbeat_timeout_millis: 1_000, ..Default::default() };
        assert!(!config.lease_expired(Some(500), 1_000));
        assert!(!config.lease_expired(Some(500), 1_500));
        assert!(config.lease_expired(Some(500), 1_501));
        assert!(config.lease_expired(None, 0), "running without heartbeat is stale");
    }

    #[test]
    fn auto_reschedule_respects_attempts() {
        let config = SchedulerConfig { max_attempts: 3, ..Default::default() };
        assert!(config.may_auto_reschedule(0));
        assert!(config.may_auto_reschedule(2));
        assert!(!config.may_auto_reschedule(3));
        let off = SchedulerConfig { auto_reschedule: false, ..Default::default() };
        assert!(!off.may_auto_reschedule(0));
    }

    #[test]
    fn status_rollup() {
        let status = EvaluationStatus {
            scheduled: 1,
            running: 2,
            finished: 3,
            aborted: 0,
            failed: 1,
            ..Default::default()
        };
        assert_eq!(status.total(), 7);
        assert!(!status.is_settled());
        assert_eq!(status.progress_percent() as usize, 4 * 100 / 7);
        let done = EvaluationStatus { finished: 4, ..Default::default() };
        assert!(done.is_settled());
        assert_eq!(done.progress_percent(), 100);
        assert_eq!(EvaluationStatus::default().progress_percent(), 100);
    }

    #[test]
    fn quarantined_jobs_are_settled_work() {
        // A quarantined job is terminal: it counts toward the total, counts
        // as completed work in the percentage, and never keeps the
        // evaluation unsettled waiting for a retry that will not come.
        let status = EvaluationStatus { finished: 3, quarantined: 1, ..Default::default() };
        assert_eq!(status.total(), 4);
        assert!(status.is_settled());
        assert_eq!(status.progress_percent(), 100);
        let dto = status.dto();
        assert_eq!(dto.quarantined, 1);
        assert!(dto.settled);
    }

    #[test]
    fn lazy_status_counts_unmaterialized_points() {
        // Regression: a lazy evaluation with zero materialized jobs used to
        // report 100 % progress and settled while the whole space was pending.
        let fresh = EvaluationStatus { remaining: Some(10), ..Default::default() };
        assert_eq!(fresh.total(), 10);
        assert_eq!(fresh.progress_percent(), 0);
        assert!(!fresh.is_settled());

        let halfway = EvaluationStatus { finished: 5, remaining: Some(5), ..Default::default() };
        assert_eq!(halfway.total(), 10);
        assert_eq!(halfway.progress_percent(), 50);
        assert!(!halfway.is_settled());

        let drained = EvaluationStatus { finished: 10, remaining: Some(0), ..Default::default() };
        assert!(drained.is_settled());
        assert_eq!(drained.progress_percent(), 100);

        let dto = fresh.dto();
        assert_eq!(dto.remaining_space, Some(10));
        assert_eq!(dto.total, 10);
        assert!(!dto.settled);
    }

    #[test]
    fn status_json() {
        let j = EvaluationStatus { running: 1, ..Default::default() }.to_json();
        assert_eq!(j.get("running").and_then(chronos_json::Value::as_i64), Some(1));
        assert_eq!(j.get("settled").and_then(chronos_json::Value::as_bool), Some(false));
    }
}
