//! Users, roles and sessions.
//!
//! Chronos Control "comes with an advanced session and role-based user
//! management to support the deployment in a multi-user environment"
//! (paper §2.2). Access permissions are handled at the level of projects
//! (§2.1): every member of a project sees all of its experiments,
//! evaluations and results.

use chronos_json::{obj, Value};
use chronos_util::encode::{hex_encode, sha256};
use chronos_util::{Clock, Id};

use parking_lot::Mutex;

use crate::error::{CoreError, CoreResult};
use crate::model::{opt_str, parse_id, require_str};

/// Global roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full control: manage users, systems, deployments.
    Admin,
    /// Create projects/experiments, run evaluations.
    Member,
    /// Read-only access to projects they are a member of.
    Viewer,
}

impl Role {
    /// The lowercase role name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Admin => "admin",
            Role::Member => "member",
            Role::Viewer => "viewer",
        }
    }

    /// Parses the lowercase role name.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "admin" => Some(Role::Admin),
            "member" => Some(Role::Member),
            "viewer" => Some(Role::Viewer),
            _ => None,
        }
    }

    /// Whether this role may mutate (create/abort/reschedule...).
    pub fn can_write(&self) -> bool {
        matches!(self, Role::Admin | Role::Member)
    }

    /// Whether this role may administer systems, deployments and users.
    pub fn can_admin(&self) -> bool {
        matches!(self, Role::Admin)
    }
}

/// A user account.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// Unique id.
    pub id: Id,
    /// Unique login name.
    pub username: String,
    /// Salted, iterated SHA-256 password hash (`salt$hexdigest`).
    pub password_hash: String,
    /// Global role.
    pub role: Role,
    /// Creation time.
    pub created_at: u64,
}

impl User {
    /// Creates a user with a freshly salted password hash.
    pub fn new(username: &str, password: &str, role: Role, now: u64) -> User {
        let salt = Id::generate().to_base32();
        User {
            id: Id::generate(),
            username: username.to_string(),
            password_hash: hash_password(password, &salt),
            role,
            created_at: now,
        }
    }

    /// Verifies a password attempt.
    pub fn verify_password(&self, attempt: &str) -> bool {
        let Some((salt, _)) = self.password_hash.split_once('$') else {
            return false;
        };
        // Constant-time-ish comparison over fixed-length hex digests.
        let expected = hash_password(attempt, salt);
        let (a, b) = (expected.as_bytes(), self.password_hash.as_bytes());
        a.len() == b.len() && a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
    }

    /// JSON shape (includes the hash — used by the store, redacted by the
    /// API layer).
    pub fn to_json(&self) -> Value {
        obj! {
            "id" => self.id.to_base32(),
            "username" => self.username.as_str(),
            "password_hash" => self.password_hash.as_str(),
            "role" => self.role.as_str(),
            "created_at" => self.created_at,
        }
    }

    /// The served (wire) view of a user — the password hash never leaves
    /// the control plane.
    pub fn to_public_json(&self) -> Value {
        use chronos_api::WireEncode;
        chronos_api::v1::UserPublic {
            id: self.id,
            username: self.username.clone(),
            role: self.role.as_str().to_string(),
            created_at: self.created_at,
        }
        .to_value()
    }

    /// Parses [`User::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<User> {
        Ok(User {
            id: parse_id(value, "id")?,
            username: require_str(value, "username")?,
            password_hash: opt_str(value, "password_hash"),
            role: value
                .get("role")
                .and_then(Value::as_str)
                .and_then(Role::parse)
                .ok_or_else(|| CoreError::Invalid("user needs a valid role".into()))?,
            created_at: value.get("created_at").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// Salted, iterated SHA-256 (1000 rounds), rendered as `salt$hex`.
pub fn hash_password(password: &str, salt: &str) -> String {
    let mut digest = sha256(format!("{salt}:{password}").as_bytes());
    for _ in 0..999 {
        digest = sha256(&digest);
    }
    format!("{salt}${}", hex_encode(&digest))
}

/// Default session lifetime: 12 hours.
pub const SESSION_TTL_MILLIS: u64 = 12 * 60 * 60 * 1000;

/// Active login sessions (token → user), with expiry.
pub struct SessionManager {
    sessions: Mutex<Vec<(String, Id, u64)>>,
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionManager {
    /// Creates an empty session table.
    pub fn new() -> Self {
        SessionManager { sessions: Mutex::new(Vec::new()) }
    }

    /// Opens a session for `user_id`; returns the bearer token.
    pub fn create(&self, user_id: Id, clock: &dyn Clock) -> String {
        let token = format!("{}{}", Id::generate().to_base32(), Id::generate().to_base32());
        let expires = clock.now_millis() + SESSION_TTL_MILLIS;
        self.sessions.lock().push((token.clone(), user_id, expires));
        token
    }

    /// Resolves a token to a user id if the session is live.
    pub fn resolve(&self, token: &str, clock: &dyn Clock) -> Option<Id> {
        let now = clock.now_millis();
        let mut sessions = self.sessions.lock();
        sessions.retain(|(_, _, expires)| *expires > now);
        sessions.iter().find(|(t, _, _)| t == token).map(|(_, id, _)| *id)
    }

    /// Terminates a session; returns whether it existed.
    pub fn revoke(&self, token: &str) -> bool {
        let mut sessions = self.sessions.lock();
        let before = sessions.len();
        sessions.retain(|(t, _, _)| t != token);
        sessions.len() != before
    }

    /// Number of live sessions (expired ones may linger until next resolve).
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_util::MockClock;

    #[test]
    fn password_verification() {
        let user = User::new("ada", "s3cret", Role::Member, 0);
        assert!(user.verify_password("s3cret"));
        assert!(!user.verify_password("S3cret"));
        assert!(!user.verify_password(""));
    }

    #[test]
    fn hashes_are_salted() {
        let a = User::new("ada", "same", Role::Member, 0);
        let b = User::new("bob", "same", Role::Member, 0);
        assert_ne!(a.password_hash, b.password_hash);
    }

    #[test]
    fn hash_is_deterministic_given_salt() {
        assert_eq!(hash_password("pw", "salt1"), hash_password("pw", "salt1"));
        assert_ne!(hash_password("pw", "salt1"), hash_password("pw", "salt2"));
    }

    #[test]
    fn role_permissions() {
        assert!(Role::Admin.can_write() && Role::Admin.can_admin());
        assert!(Role::Member.can_write() && !Role::Member.can_admin());
        assert!(!Role::Viewer.can_write() && !Role::Viewer.can_admin());
    }

    #[test]
    fn role_name_roundtrip() {
        for r in [Role::Admin, Role::Member, Role::Viewer] {
            assert_eq!(Role::parse(r.as_str()), Some(r));
        }
        assert_eq!(Role::parse("root"), None);
    }

    #[test]
    fn user_json_roundtrip() {
        let user = User::new("ada", "pw", Role::Admin, 42);
        let parsed = User::from_json(&user.to_json()).unwrap();
        assert_eq!(parsed, user);
        assert!(parsed.verify_password("pw"), "hash must survive the roundtrip");
    }

    #[test]
    fn sessions_resolve_and_expire() {
        let clock = MockClock::new(1_000);
        let sessions = SessionManager::new();
        let user = Id::generate();
        let token = sessions.create(user, &clock);
        assert_eq!(sessions.resolve(&token, &clock), Some(user));
        assert_eq!(sessions.resolve("bogus", &clock), None);
        clock.advance_millis(SESSION_TTL_MILLIS + 1);
        assert_eq!(sessions.resolve(&token, &clock), None, "session must expire");
    }

    #[test]
    fn sessions_revoke() {
        let clock = MockClock::new(0);
        let sessions = SessionManager::new();
        let token = sessions.create(Id::generate(), &clock);
        assert!(sessions.revoke(&token));
        assert!(!sessions.revoke(&token));
        assert_eq!(sessions.resolve(&token, &clock), None);
    }

    #[test]
    fn tokens_are_unique() {
        let clock = MockClock::new(0);
        let sessions = SessionManager::new();
        let a = sessions.create(Id::generate(), &clock);
        let b = sessions.create(Id::generate(), &clock);
        assert_ne!(a, b);
        assert_eq!(sessions.len(), 2);
    }
}
