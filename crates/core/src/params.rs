//! Experiment parameters and evaluation-space expansion.
//!
//! Chronos Control "provides several parameter [...] types. Parameter types
//! include Boolean, check box, and value types as well [as] intervals and
//! ratios" (paper, §2.2). A system declares its parameters as
//! [`ParamDef`]s; an experiment assigns each one either a single value or a
//! *sweep* over several values; creating an evaluation expands the cartesian
//! product of all sweeps into one job per point — the paper's running
//! example ("every job would execute the benchmark for a specific number of
//! threads for each engine") is exactly a 2-parameter expansion.

use chronos_json::{obj, Map, Value};

use crate::error::{CoreError, CoreResult};

/// The type of a system parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamType {
    /// `true` / `false`.
    Boolean,
    /// One or more choices from a fixed option list.
    Checkbox {
        /// The selectable options.
        options: Vec<String>,
    },
    /// A free-form scalar (string or number).
    Value,
    /// An integer range with a step; sweeping it yields every point.
    Interval {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
        /// Step between points (≥ 1).
        step: i64,
    },
    /// A fraction in `[0, 1]` (e.g. a read/write ratio).
    Ratio,
}

impl ParamType {
    /// The lowercase type tag used in JSON definitions.
    pub fn tag(&self) -> &'static str {
        match self {
            ParamType::Boolean => "boolean",
            ParamType::Checkbox { .. } => "checkbox",
            ParamType::Value => "value",
            ParamType::Interval { .. } => "interval",
            ParamType::Ratio => "ratio",
        }
    }

    /// Serializes to the system-definition JSON shape.
    pub fn to_json(&self) -> Value {
        match self {
            ParamType::Checkbox { options } => obj! {
                "type" => "checkbox",
                "options" => Value::Array(options.iter().map(|o| Value::from(o.as_str())).collect()),
            },
            ParamType::Interval { min, max, step } => obj! {
                "type" => "interval",
                "min" => *min,
                "max" => *max,
                "step" => *step,
            },
            other => obj! { "type" => other.tag() },
        }
    }

    /// Parses the shape produced by [`ParamType::to_json`].
    pub fn from_json(value: &Value) -> CoreResult<ParamType> {
        let tag = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| CoreError::Invalid("parameter type missing \"type\"".into()))?;
        match tag {
            "boolean" => Ok(ParamType::Boolean),
            "value" => Ok(ParamType::Value),
            "ratio" => Ok(ParamType::Ratio),
            "checkbox" => {
                let options = value
                    .get("options")
                    .and_then(Value::as_array)
                    .ok_or_else(|| CoreError::Invalid("checkbox needs \"options\"".into()))?
                    .iter()
                    .map(|o| {
                        o.as_str().map(str::to_string).ok_or_else(|| {
                            CoreError::Invalid("checkbox options must be strings".into())
                        })
                    })
                    .collect::<CoreResult<Vec<_>>>()?;
                if options.is_empty() {
                    return Err(CoreError::Invalid("checkbox needs at least one option".into()));
                }
                Ok(ParamType::Checkbox { options })
            }
            "interval" => {
                let get = |k: &str| {
                    value.get(k).and_then(Value::as_i64).ok_or_else(|| {
                        CoreError::Invalid(format!("interval needs integer \"{k}\""))
                    })
                };
                let (min, max) = (get("min")?, get("max")?);
                let step = value.get("step").and_then(Value::as_i64).unwrap_or(1);
                if step < 1 {
                    return Err(CoreError::Invalid("interval step must be ≥ 1".into()));
                }
                if max < min {
                    return Err(CoreError::Invalid("interval max must be ≥ min".into()));
                }
                Ok(ParamType::Interval { min, max, step })
            }
            other => Err(CoreError::Invalid(format!("unknown parameter type {other:?}"))),
        }
    }

    /// Checks a single assigned value against this type.
    pub fn validate_value(&self, value: &Value) -> CoreResult<()> {
        let ok = match self {
            ParamType::Boolean => value.as_bool().is_some(),
            ParamType::Checkbox { options } => {
                value.as_str().map(|s| options.iter().any(|o| o == s)).unwrap_or(false)
            }
            ParamType::Value => {
                matches!(value, Value::String(_) | Value::Number(_) | Value::Bool(_))
            }
            ParamType::Interval { min, max, .. } => {
                value.as_i64().map(|v| v >= *min && v <= *max).unwrap_or(false)
            }
            ParamType::Ratio => value.as_f64().map(|v| (0.0..=1.0).contains(&v)).unwrap_or(false),
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::Invalid(format!("value {value} is not a valid {}", self.tag())))
        }
    }

    /// All points of a full sweep over this type (used when an experiment
    /// assigns `{"sweep": "all"}`). Only finite types can be fully swept.
    pub fn sweep_all(&self) -> CoreResult<Vec<Value>> {
        match self {
            ParamType::Boolean => Ok(vec![Value::Bool(false), Value::Bool(true)]),
            ParamType::Checkbox { options } => {
                Ok(options.iter().map(|o| Value::from(o.as_str())).collect())
            }
            ParamType::Interval { min, max, step } => {
                let mut points = Vec::new();
                let mut v = *min;
                while v <= *max {
                    points.push(Value::from(v));
                    v += step;
                }
                Ok(points)
            }
            other => Err(CoreError::Invalid(format!(
                "parameter type {} cannot be fully swept; list explicit values",
                other.tag()
            ))),
        }
    }
}

/// A named parameter a system accepts.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Parameter name (unique within a system).
    pub name: String,
    /// Human-readable description shown in the experiment form.
    pub description: String,
    /// The type.
    pub param_type: ParamType,
    /// Default value when an experiment leaves it unassigned.
    pub default: Value,
}

impl ParamDef {
    /// Creates a definition, validating the default against the type.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        param_type: ParamType,
        default: Value,
    ) -> CoreResult<Self> {
        param_type.validate_value(&default)?;
        Ok(ParamDef { name: name.into(), description: description.into(), param_type, default })
    }

    /// Serializes to the system-definition JSON shape.
    pub fn to_json(&self) -> Value {
        let mut j = self.param_type.to_json();
        j.set("name", self.name.as_str());
        j.set("description", self.description.as_str());
        j.set("default", self.default.clone());
        j
    }

    /// Parses the shape produced by [`ParamDef::to_json`].
    pub fn from_json(value: &Value) -> CoreResult<ParamDef> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| CoreError::Invalid("parameter needs a \"name\"".into()))?;
        let description =
            value.get("description").and_then(Value::as_str).unwrap_or("").to_string();
        let param_type = ParamType::from_json(value)?;
        let default = value
            .get("default")
            .cloned()
            .ok_or_else(|| CoreError::Invalid(format!("parameter {name} needs a default")))?;
        ParamDef::new(name, description, param_type, default)
    }
}

/// How an experiment assigns one parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Assignment {
    /// A single fixed value for all jobs.
    Fixed(Value),
    /// An explicit list of values to sweep.
    Sweep(Vec<Value>),
    /// Sweep every point the type allows (finite types only).
    SweepAll,
}

impl Assignment {
    /// Parses the experiment-JSON shape: a bare value is `Fixed`, an object
    /// `{"sweep": [...]}` or `{"sweep": "all"}` selects a sweep.
    pub fn from_json(value: &Value) -> CoreResult<Assignment> {
        if let Some(sweep) = value.get("sweep") {
            return match sweep {
                Value::String(s) if s == "all" => Ok(Assignment::SweepAll),
                Value::Array(items) => {
                    if items.is_empty() {
                        Err(CoreError::Invalid("sweep list cannot be empty".into()))
                    } else {
                        Ok(Assignment::Sweep(items.clone()))
                    }
                }
                _ => Err(CoreError::Invalid("\"sweep\" must be a value list or \"all\"".into())),
            };
        }
        Ok(Assignment::Fixed(value.clone()))
    }

    /// Serializes to the experiment-JSON shape.
    pub fn to_json(&self) -> Value {
        match self {
            Assignment::Fixed(v) => v.clone(),
            Assignment::Sweep(values) => obj! { "sweep" => Value::Array(values.clone()) },
            Assignment::SweepAll => obj! { "sweep" => "all" },
        }
    }
}

/// The full parameter assignment of an experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamAssignments {
    entries: Vec<(String, Assignment)>,
}

impl ParamAssignments {
    /// Creates an empty assignment set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a fixed value.
    pub fn fix(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.entries.push((name.to_string(), Assignment::Fixed(value.into())));
        self
    }

    /// Assigns an explicit sweep.
    pub fn sweep(mut self, name: &str, values: Vec<Value>) -> Self {
        self.entries.push((name.to_string(), Assignment::Sweep(values)));
        self
    }

    /// Assigns a full sweep.
    pub fn sweep_all(mut self, name: &str) -> Self {
        self.entries.push((name.to_string(), Assignment::SweepAll));
        self
    }

    /// Looks up an assignment.
    pub fn get(&self, name: &str) -> Option<&Assignment> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// Parses the experiment-JSON object `{param: assignment, ...}`.
    pub fn from_json(value: &Value) -> CoreResult<Self> {
        let map = value
            .as_object()
            .ok_or_else(|| CoreError::Invalid("parameters must be an object".into()))?;
        let mut entries = Vec::with_capacity(map.len());
        for (name, v) in map.iter() {
            entries.push((name.to_string(), Assignment::from_json(v)?));
        }
        Ok(ParamAssignments { entries })
    }

    /// Serializes to the experiment-JSON object.
    pub fn to_json(&self) -> Value {
        let mut map = Map::with_capacity(self.entries.len());
        for (name, a) in &self.entries {
            map.insert(name.clone(), a.to_json());
        }
        Value::Object(map)
    }

    /// Eagerly expands the assignments against a system's parameter schema
    /// into the **evaluation space**: one concrete parameter object per job.
    ///
    /// Kept as the reference enumeration (and oracle in tests): the lazy
    /// [`PointSpace`] used by the scheduler must produce the identical
    /// sequence via `point_at(0..total)`. The eager path keeps the historic
    /// 100 000-point materialization cap.
    pub fn expand(&self, schema: &[ParamDef]) -> CoreResult<Vec<Value>> {
        let space = PointSpace::build(self, schema)?;
        const MAX_JOBS: u64 = 100_000;
        let total = space.total();
        if total > MAX_JOBS {
            return Err(CoreError::Invalid(format!(
                "evaluation space has {total} points (limit {MAX_JOBS})"
            )));
        }
        let mut points = Vec::with_capacity(total as usize);
        let mut indexes = vec![0usize; space.axes.len()];
        loop {
            let mut map = Map::with_capacity(space.axes.len());
            for (axis, &i) in space.axes.iter().zip(&indexes) {
                map.insert(axis.0.clone(), axis.1[i].clone());
            }
            points.push(Value::Object(map));
            // Odometer increment, last axis fastest.
            let mut pos = space.axes.len();
            loop {
                if pos == 0 {
                    return Ok(points);
                }
                pos -= 1;
                indexes[pos] += 1;
                if indexes[pos] < space.axes[pos].1.len() {
                    break;
                }
                indexes[pos] = 0;
            }
        }
    }

    /// The names of swept (multi-valued) parameters, in assignment order —
    /// these become the x-axis / series keys during analysis.
    pub fn swept_names(&self, schema: &[ParamDef]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(name, a)| match a {
                Assignment::Fixed(_) => false,
                Assignment::Sweep(vs) => vs.len() > 1,
                Assignment::SweepAll => schema
                    .iter()
                    .find(|d| &d.name == name)
                    .and_then(|d| d.param_type.sweep_all().ok())
                    .map(|vs| vs.len() > 1)
                    .unwrap_or(false),
            })
            .map(|(name, _)| name.clone())
            .collect()
    }
}

/// The evaluation space as an **indexed point codec**: the same axes the
/// eager [`ParamAssignments::expand`] builds, but points are decoded on
/// demand by index instead of being materialized up front.
///
/// Point `i` is the mixed-radix decomposition of `i` over the axis sizes,
/// last axis fastest — exactly the odometer order of `expand`, so
/// `(0..total).map(point_at)` reproduces the eager sequence value-for-value.
/// This is what lets the scheduler treat a 10^5-point space as O(in-flight)
/// storage: only claimed points ever become job documents.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpace {
    /// Per schema parameter, in schema order: the values it takes.
    axes: Vec<(String, Vec<Value>)>,
    /// Product of all axis sizes.
    total: u64,
}

impl PointSpace {
    /// Hard cap on the *addressable* space. Far above the eager
    /// materialization cap — lazy evaluations never allocate per point, so
    /// the limit only guards against nonsensical experiment definitions.
    pub const MAX_POINTS: u64 = 10_000_000;

    /// Validates `assignments` against `schema` and builds the space.
    /// Performs the same checks the eager expansion always did (unknown
    /// parameters, per-value type validation) without materializing points.
    pub fn build(assignments: &ParamAssignments, schema: &[ParamDef]) -> CoreResult<PointSpace> {
        for (name, _) in &assignments.entries {
            if !schema.iter().any(|d| &d.name == name) {
                return Err(CoreError::Invalid(format!("unknown parameter {name:?}")));
            }
        }
        let mut axes: Vec<(String, Vec<Value>)> = Vec::with_capacity(schema.len());
        let mut total: u64 = 1;
        for def in schema {
            let values = match assignments.get(&def.name) {
                None => vec![def.default.clone()],
                Some(Assignment::Fixed(v)) => vec![v.clone()],
                Some(Assignment::Sweep(vs)) => vs.clone(),
                Some(Assignment::SweepAll) => def.param_type.sweep_all()?,
            };
            for v in &values {
                def.param_type
                    .validate_value(v)
                    .map_err(|e| CoreError::Invalid(format!("parameter {:?}: {e}", def.name)))?;
            }
            total = total
                .checked_mul(values.len() as u64)
                .filter(|&t| t <= Self::MAX_POINTS)
                .ok_or_else(|| {
                    CoreError::Invalid(format!(
                        "evaluation space exceeds {} points",
                        Self::MAX_POINTS
                    ))
                })?;
            axes.push((def.name.clone(), values));
        }
        Ok(PointSpace { axes, total })
    }

    /// Number of points in the space (≥ 1: the empty product is the single
    /// all-defaults point).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Decodes point `index` into its concrete parameter object, or `None`
    /// when `index >= total()`. Mixed-radix, last axis fastest.
    pub fn point_at(&self, index: u64) -> Option<Value> {
        if index >= self.total {
            return None;
        }
        let mut map = Map::with_capacity(self.axes.len());
        let mut stride = self.total;
        for (name, values) in &self.axes {
            stride /= values.len() as u64;
            let i = (index / stride) % values.len() as u64;
            map.insert(name.clone(), values[i as usize].clone());
        }
        Some(Value::Object(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Vec<ParamDef> {
        vec![
            ParamDef::new(
                "engine",
                "storage engine",
                ParamType::Checkbox { options: vec!["wiredtiger".into(), "mmapv1".into()] },
                Value::from("wiredtiger"),
            )
            .unwrap(),
            ParamDef::new(
                "threads",
                "client threads",
                ParamType::Interval { min: 1, max: 64, step: 1 },
                Value::from(1),
            )
            .unwrap(),
            ParamDef::new(
                "compression",
                "block compression",
                ParamType::Boolean,
                Value::Bool(true),
            )
            .unwrap(),
            ParamDef::new("read_ratio", "fraction of reads", ParamType::Ratio, Value::from(0.5))
                .unwrap(),
        ]
    }

    #[test]
    fn type_json_roundtrip() {
        for t in [
            ParamType::Boolean,
            ParamType::Value,
            ParamType::Ratio,
            ParamType::Checkbox { options: vec!["a".into(), "b".into()] },
            ParamType::Interval { min: 1, max: 10, step: 2 },
        ] {
            assert_eq!(ParamType::from_json(&t.to_json()).unwrap(), t);
        }
    }

    #[test]
    fn bad_type_json_rejected() {
        assert!(ParamType::from_json(&obj! {"type" => "alien"}).is_err());
        assert!(ParamType::from_json(&obj! {"type" => "checkbox"}).is_err());
        assert!(ParamType::from_json(&obj! {"type" => "interval", "min" => 5, "max" => 1}).is_err());
        assert!(ParamType::from_json(
            &obj! {"type" => "interval", "min" => 1, "max" => 5, "step" => 0}
        )
        .is_err());
    }

    #[test]
    fn value_validation() {
        let schema = demo_schema();
        assert!(schema[0].param_type.validate_value(&Value::from("mmapv1")).is_ok());
        assert!(schema[0].param_type.validate_value(&Value::from("rocksdb")).is_err());
        assert!(schema[1].param_type.validate_value(&Value::from(64)).is_ok());
        assert!(schema[1].param_type.validate_value(&Value::from(65)).is_err());
        assert!(schema[2].param_type.validate_value(&Value::Bool(false)).is_ok());
        assert!(schema[2].param_type.validate_value(&Value::from(1)).is_err());
        assert!(schema[3].param_type.validate_value(&Value::from(0.75)).is_ok());
        assert!(schema[3].param_type.validate_value(&Value::from(1.5)).is_err());
    }

    #[test]
    fn paper_example_expansion() {
        // "compare the performance of two storage engines [...] for
        // different numbers of threads; every job would execute the
        // benchmark for a specific number of threads for each engine."
        let schema = demo_schema();
        let assignments = ParamAssignments::new()
            .sweep_all("engine")
            .sweep("threads", vec![Value::from(1), Value::from(2), Value::from(4)]);
        let points = assignments.expand(&schema).unwrap();
        assert_eq!(points.len(), 6); // 2 engines x 3 thread counts
                                     // Defaults filled in:
        assert_eq!(points[0].get("compression"), Some(&Value::Bool(true)));
        assert_eq!(points[0].get("read_ratio"), Some(&Value::from(0.5)));
        // Schema order, last axis fastest:
        assert_eq!(points[0].get("engine").unwrap().as_str(), Some("wiredtiger"));
        assert_eq!(points[0].get("threads").unwrap().as_i64(), Some(1));
        assert_eq!(points[1].get("threads").unwrap().as_i64(), Some(2));
        assert_eq!(points[3].get("engine").unwrap().as_str(), Some("mmapv1"));
        // Swept names:
        assert_eq!(assignments.swept_names(&schema), vec!["engine", "threads"]);
    }

    #[test]
    fn single_point_when_everything_fixed() {
        let schema = demo_schema();
        let points = ParamAssignments::new()
            .fix("engine", "mmapv1")
            .fix("threads", 8)
            .expand(&schema)
            .unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get("engine").unwrap().as_str(), Some("mmapv1"));
        assert_eq!(points[0].get("threads").unwrap().as_i64(), Some(8));
    }

    #[test]
    fn interval_sweep_all_respects_step() {
        let def = ParamDef::new(
            "n",
            "",
            ParamType::Interval { min: 2, max: 10, step: 3 },
            Value::from(2),
        )
        .unwrap();
        let points = ParamAssignments::new().sweep_all("n").expand(&[def]).unwrap();
        let values: Vec<i64> =
            points.iter().map(|p| p.get("n").unwrap().as_i64().unwrap()).collect();
        assert_eq!(values, vec![2, 5, 8]);
    }

    #[test]
    fn unknown_parameter_rejected() {
        let schema = demo_schema();
        let err = ParamAssignments::new().fix("warp", 9).expand(&schema);
        assert!(matches!(err, Err(CoreError::Invalid(_))));
    }

    #[test]
    fn invalid_sweep_value_rejected() {
        let schema = demo_schema();
        let err = ParamAssignments::new()
            .sweep("threads", vec![Value::from(1), Value::from(9999)])
            .expand(&schema);
        assert!(matches!(err, Err(CoreError::Invalid(_))));
    }

    #[test]
    fn sweep_all_on_unbounded_type_rejected() {
        let def = ParamDef::new("name", "", ParamType::Value, Value::from("x")).unwrap();
        let err = ParamAssignments::new().sweep_all("name").expand(&[def]);
        assert!(matches!(err, Err(CoreError::Invalid(_))));
    }

    #[test]
    fn space_size_limit_enforced() {
        let defs: Vec<ParamDef> = (0..4)
            .map(|i| {
                ParamDef::new(
                    format!("p{i}"),
                    "",
                    ParamType::Interval { min: 0, max: 99, step: 1 },
                    Value::from(0),
                )
                .unwrap()
            })
            .collect();
        let mut a = ParamAssignments::new();
        for i in 0..4 {
            a = a.sweep_all(&format!("p{i}"));
        }
        assert!(matches!(a.expand(&defs), Err(CoreError::Invalid(_)))); // 100^4 points
    }

    #[test]
    fn assignment_json_roundtrip() {
        let a = ParamAssignments::new()
            .fix("engine", "mmapv1")
            .sweep("threads", vec![Value::from(1), Value::from(2)])
            .sweep_all("compression");
        let parsed = ParamAssignments::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn param_def_json_roundtrip() {
        for def in demo_schema() {
            assert_eq!(ParamDef::from_json(&def.to_json()).unwrap(), def);
        }
    }

    #[test]
    fn default_must_match_type() {
        assert!(ParamDef::new("x", "", ParamType::Boolean, Value::from(3)).is_err());
    }

    #[test]
    fn point_space_matches_eager_expansion() {
        // The oracle: lazy nth-point decode must reproduce the eager
        // odometer sequence value-for-value, for several axis shapes.
        let schema = demo_schema();
        for assignments in [
            ParamAssignments::new()
                .sweep_all("engine")
                .sweep("threads", vec![Value::from(1), Value::from(2), Value::from(4)]),
            ParamAssignments::new().fix("engine", "mmapv1").fix("threads", 8),
            ParamAssignments::new()
                .sweep_all("engine")
                .sweep_all("compression")
                .sweep("read_ratio", vec![Value::from(0.1), Value::from(0.9)]),
            ParamAssignments::new(),
        ] {
            let eager = assignments.expand(&schema).unwrap();
            let space = PointSpace::build(&assignments, &schema).unwrap();
            assert_eq!(space.total() as usize, eager.len());
            let lazy: Vec<Value> = (0..space.total()).map(|i| space.point_at(i).unwrap()).collect();
            assert_eq!(lazy, eager);
            assert_eq!(space.point_at(space.total()), None);
        }
    }

    #[test]
    fn point_space_random_access_is_o1_on_huge_spaces() {
        // 4 axes of 50 points = 6.25M points: addressable lazily, far past
        // the eager materialization cap.
        let defs: Vec<ParamDef> = (0..4)
            .map(|i| {
                ParamDef::new(
                    format!("p{i}"),
                    "",
                    ParamType::Interval { min: 0, max: 49, step: 1 },
                    Value::from(0),
                )
                .unwrap()
            })
            .collect();
        let mut a = ParamAssignments::new();
        for i in 0..4 {
            a = a.sweep_all(&format!("p{i}"));
        }
        assert!(a.expand(&defs).is_err(), "eager path keeps its cap");
        let space = PointSpace::build(&a, &defs).unwrap();
        assert_eq!(space.total(), 50u64.pow(4));
        // Last axis fastest: index 51 = [0, 0, 1, 1].
        let p = space.point_at(51).unwrap();
        assert_eq!(p.get("p0").unwrap().as_i64(), Some(0));
        assert_eq!(p.get("p2").unwrap().as_i64(), Some(1));
        assert_eq!(p.get("p3").unwrap().as_i64(), Some(1));
        // And the very last point is all-max.
        let last = space.point_at(space.total() - 1).unwrap();
        assert!((0..4).all(|i| last.get(&format!("p{i}")).unwrap().as_i64() == Some(49)));
    }

    #[test]
    fn point_space_rejects_oversized_spaces() {
        let defs: Vec<ParamDef> = (0..4)
            .map(|i| {
                ParamDef::new(
                    format!("p{i}"),
                    "",
                    ParamType::Interval { min: 0, max: 99, step: 1 },
                    Value::from(0),
                )
                .unwrap()
            })
            .collect();
        let mut a = ParamAssignments::new();
        for i in 0..4 {
            a = a.sweep_all(&format!("p{i}"));
        }
        // 100^4 = 10^8 > MAX_POINTS.
        assert!(matches!(PointSpace::build(&a, &defs), Err(CoreError::Invalid(_))));
    }
}
