//! Result analysis (paper Fig. 3d and requirement *(vi)*).
//!
//! Analysis turns an evaluation's per-job result documents into plottable
//! series: the experiment's swept parameters become the x axis and the
//! series split, the chart's `value_path` pointer selects the measurement.
//! A tabular summary and cross-series comparisons (who wins, by what
//! factor) are derived from the same data.

use chronos_analytics::{
    detect_change_points, sum_count, Cell, ChangePoint, ChangePointConfig, ParamColumn,
    RegressionFlag, ResultTable,
};
use chronos_json::{obj, Value};
use chronos_util::Id;

use crate::charts::{ChartData, ChartSpec};
use crate::control::ChronosControl;
use crate::error::{CoreError, CoreResult};
use crate::model::JobState;

/// The standard metric columns (requirement *(vi)*): display label plus
/// the JSON pointer into a result document. Shared by the summary
/// endpoints, the CSV export, and the columnar ingest path.
pub const STANDARD_METRIC_COLUMNS: [(&str, &str); 6] = [
    ("execution_time_millis", "/wall_millis"),
    ("throughput_ops_per_sec", "/throughput_ops_per_sec"),
    ("total_ops", "/total_ops"),
    ("total_errors", "/total_errors"),
    ("read_latency_p99_micros", "/operations/read/latency_micros/p99"),
    ("update_latency_p99_micros", "/operations/update/latency_micros/p99"),
];

/// Just the pointers of [`STANDARD_METRIC_COLUMNS`] — the `json_paths`
/// argument of columnar ingestion (non-scalar values at these pointers
/// are captured verbatim so summaries stay byte-identical).
pub const STANDARD_METRIC_PATHS: [&str; 6] = [
    "/wall_millis",
    "/throughput_ops_per_sec",
    "/total_ops",
    "/total_errors",
    "/operations/read/latency_micros/p99",
    "/operations/update/latency_micros/p99",
];

/// One analyzable data point: a finished job's parameters + measurements.
#[derive(Debug, Clone)]
pub struct ResultPoint {
    /// Job id.
    pub job_id: Id,
    /// The job's concrete parameters.
    pub parameters: Value,
    /// The uploaded measurement document.
    pub data: Value,
}

/// Collects the finished jobs of an evaluation as result points.
pub fn collect_points(control: &ChronosControl, evaluation_id: Id) -> CoreResult<Vec<ResultPoint>> {
    let jobs = control.list_jobs(evaluation_id)?;
    let mut points = Vec::new();
    for job in jobs {
        if job.state != JobState::Finished {
            continue;
        }
        if let Some(result) = control.result_for_job(job.id)? {
            points.push(ResultPoint {
                job_id: job.id,
                parameters: job.parameters.clone(),
                data: result.data,
            });
        }
    }
    Ok(points)
}

/// Renders one parameter value as a stable label.
fn param_label(value: Option<&Value>) -> String {
    match value {
        None | Some(Value::Null) => "-".to_string(),
        Some(Value::String(s)) => s.clone(),
        Some(other) => other.to_string(),
    }
}

/// Sorts labels numerically when they all parse as numbers, else
/// lexicographically (thread counts must order 1, 2, 10 — not 1, 10, 2).
fn sort_labels(labels: &mut Vec<String>) {
    let all_numeric = labels.iter().all(|l| l.parse::<f64>().is_ok());
    if all_numeric {
        labels.sort_by(|a, b| {
            a.parse::<f64>()
                .unwrap_or(0.0)
                .partial_cmp(&b.parse::<f64>().unwrap_or(0.0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        labels.sort();
    }
    labels.dedup();
}

/// An evaluation's columnar table plus its rows gathered in canonical
/// `job_ids` order — the exact row set and iteration order of
/// [`collect_points`], so every columnar aggregation below is
/// bit-identical to the row path it replaced.
fn columnar_rows(
    control: &ChronosControl,
    evaluation_id: Id,
) -> CoreResult<(ResultTable, Vec<usize>)> {
    let evaluation = control.get_evaluation(evaluation_id)?;
    let table = control.columnar_table(evaluation_id)?;
    let order = table.gather(evaluation.job_ids.iter().map(Id::as_u128));
    Ok((table, order))
}

/// The display label of `row` in a parameter column — `"-"` for an
/// absent/null parameter, matching [`param_label`] on the row path.
fn column_label(column: Option<&ParamColumn>, row: usize) -> &str {
    column.and_then(|c| c.label_at(row)).unwrap_or("-")
}

/// Builds the [`ChartData`] for `spec` from an evaluation's results.
///
/// Multiple points landing in the same (x, series) cell are averaged —
/// repeated evaluations of the same experiment refine the measurement.
/// Served from the columnar store: one table decode replaces the
/// decode-every-job-and-result JSON scan.
pub fn chart_data(
    control: &ChronosControl,
    evaluation_id: Id,
    spec: &ChartSpec,
) -> CoreResult<ChartData> {
    let (table, order) = columnar_rows(control, evaluation_id)?;
    Ok(chart_data_from_table(&table, &order, spec))
}

/// [`chart_data`] over a columnar table: same labels, same ordering, same
/// left-to-right float accumulation as [`chart_data_from_points`] —
/// bit-identical output.
pub fn chart_data_from_table(table: &ResultTable, order: &[usize], spec: &ChartSpec) -> ChartData {
    let x_col = table.param_column(&spec.x_param);
    let mut x_labels: Vec<String> =
        order.iter().map(|&row| column_label(x_col, row).to_string()).collect();
    sort_labels(&mut x_labels);
    let series_col = spec.series_param.as_ref().and_then(|p| table.param_column(p));
    let mut series_names: Vec<String> = match &spec.series_param {
        Some(_) => {
            let mut names: Vec<String> =
                order.iter().map(|&row| column_label(series_col, row).to_string()).collect();
            names.sort();
            names.dedup();
            names
        }
        None => vec![spec.y_label.clone()],
    };
    if series_names.is_empty() {
        series_names.push(spec.y_label.clone());
    }
    // One dense numeric vector per physical row; the accumulation loop
    // below never touches a JSON value.
    let values: Vec<Option<f64>> = match table.data_column(&spec.value_path) {
        Some(column) => column.materialize().iter().map(Cell::as_f64).collect(),
        None => Vec::new(),
    };
    // (series, x) -> (sum, count)
    let mut cells: Vec<Vec<(f64, u32)>> = vec![vec![(0.0, 0); x_labels.len()]; series_names.len()];
    for &row in order {
        let Some(value) = values.get(row).copied().flatten() else {
            continue;
        };
        let x = column_label(x_col, row);
        let series = match &spec.series_param {
            Some(_) => column_label(series_col, row),
            None => spec.y_label.as_str(),
        };
        let (Some(xi), Some(si)) =
            (x_labels.iter().position(|l| l == x), series_names.iter().position(|s| s == series))
        else {
            continue;
        };
        cells[si][xi].0 += value;
        cells[si][xi].1 += 1;
    }
    let series = series_names
        .into_iter()
        .zip(cells)
        .map(|(name, row)| {
            let values = row
                .into_iter()
                .map(|(sum, n)| if n == 0 { None } else { Some(sum / n as f64) })
                .collect();
            (name, values)
        })
        .collect();
    ChartData { x_labels, series }
}

/// [`chart_data`] over pre-collected points (used by archives and tests).
pub fn chart_data_from_points(points: &[ResultPoint], spec: &ChartSpec) -> CoreResult<ChartData> {
    let mut x_labels: Vec<String> =
        points.iter().map(|p| param_label(p.parameters.get(&spec.x_param))).collect();
    sort_labels(&mut x_labels);
    let mut series_names: Vec<String> = match &spec.series_param {
        Some(param) => {
            let mut names: Vec<String> =
                points.iter().map(|p| param_label(p.parameters.get(param))).collect();
            names.sort();
            names.dedup();
            names
        }
        None => vec![spec.y_label.clone()],
    };
    if series_names.is_empty() {
        series_names.push(spec.y_label.clone());
    }
    // (series, x) -> (sum, count)
    let mut cells: Vec<Vec<(f64, u32)>> = vec![vec![(0.0, 0); x_labels.len()]; series_names.len()];
    for point in points {
        let x = param_label(point.parameters.get(&spec.x_param));
        let series = match &spec.series_param {
            Some(param) => param_label(point.parameters.get(param)),
            None => spec.y_label.clone(),
        };
        let Some(value) = point.data.pointer(&spec.value_path).and_then(Value::as_f64) else {
            continue;
        };
        let (Some(xi), Some(si)) =
            (x_labels.iter().position(|l| *l == x), series_names.iter().position(|s| *s == series))
        else {
            continue;
        };
        cells[si][xi].0 += value;
        cells[si][xi].1 += 1;
    }
    let series = series_names
        .into_iter()
        .zip(cells)
        .map(|(name, row)| {
            let values = row
                .into_iter()
                .map(|(sum, n)| if n == 0 { None } else { Some(sum / n as f64) })
                .collect();
            (name, values)
        })
        .collect();
    Ok(ChartData { x_labels, series })
}

/// A tabular summary of an evaluation: one row per finished job with its
/// parameters and the standard metrics found in the result document.
/// Served from the columnar store (parameter documents round-trip through
/// their canonical serialization, so the body is byte-identical to the
/// old row scan).
pub fn summary_table(control: &ChronosControl, evaluation_id: Id) -> CoreResult<Value> {
    let (table, order) = columnar_rows(control, evaluation_id)?;
    let metric_cells: Vec<(&str, Option<Vec<Cell<'_>>>)> = STANDARD_METRIC_COLUMNS
        .iter()
        .map(|&(label, pointer)| (label, table.data_column(pointer).map(|c| c.materialize())))
        .collect();
    let rows: Vec<Value> = order
        .iter()
        .map(|&row| {
            let parameters = table
                .params_json(row)
                .and_then(|s| chronos_json::parse(s).ok())
                .unwrap_or(Value::Null);
            let mut metrics = obj! {};
            for (label, cells) in &metric_cells {
                if let Some(v) = cells.as_ref().and_then(|c| c[row].to_value()) {
                    metrics.set(label, v);
                }
            }
            obj! {
                "job_id" => Id::from_u128(table.row_id(row)).to_base32(),
                "parameters" => parameters,
                "metrics" => metrics,
            }
        })
        .collect();
    Ok(obj! {
        "evaluation_id" => evaluation_id.to_base32(),
        "rows" => Value::Array(rows),
    })
}

/// Extracts the standard metrics (requirement *(vi)*: "standard metrics for
/// measurements (e.g., execution time)") from a result document, tolerating
/// missing fields.
pub fn standard_metrics(data: &Value) -> Value {
    let mut metrics = obj! {};
    for (label, pointer) in STANDARD_METRIC_COLUMNS {
        if let Some(v) = data.pointer(pointer) {
            metrics.set(label, v.clone());
        }
    }
    metrics
}

/// Compares two series of a chart: per-x ratio `a / b` and the overall
/// winner. This is the "who wins, by what factor" readout of the demo.
pub fn compare_series(data: &ChartData, series_a: &str, series_b: &str) -> CoreResult<Value> {
    let find = |name: &str| {
        data.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ys)| ys)
            .ok_or_else(|| CoreError::Invalid(format!("no series {name:?}")))
    };
    let a = find(series_a)?;
    let b = find(series_b)?;
    let mut ratios = Vec::new();
    let mut a_wins = 0usize;
    let mut comparisons = 0usize;
    for (i, label) in data.x_labels.iter().enumerate() {
        let Some(va) = a.get(i).copied().flatten() else { continue };
        let Some(vb) = b.get(i).copied().flatten() else { continue };
        if vb == 0.0 {
            continue;
        }
        comparisons += 1;
        if va > vb {
            a_wins += 1;
        }
        ratios.push(obj! {
            "x" => label.as_str(),
            "ratio" => va / vb,
        });
    }
    Ok(obj! {
        "a" => series_a,
        "b" => series_b,
        "comparisons" => comparisons,
        "a_wins" => a_wins,
        "ratios" => Value::Array(ratios),
    })
}

/// Escapes one CSV cell (RFC 4180 quoting).
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders an evaluation's finished jobs as CSV: one row per job, columns
/// for every parameter (union across jobs, sorted) followed by the standard
/// metrics. The export analysts pull into spreadsheets/R.
pub fn summary_csv(control: &ChronosControl, evaluation_id: Id) -> CoreResult<String> {
    let (table, order) = columnar_rows(control, evaluation_id)?;
    // Column union over parameters (the table already holds the union of
    // keys that appeared in any row).
    let mut param_names: Vec<&str> = table.param_names().collect();
    param_names.sort_unstable();
    let param_columns: Vec<Option<&ParamColumn>> =
        param_names.iter().map(|n| table.param_column(n)).collect();
    let metric_cells: Vec<Option<Vec<Cell<'_>>>> = STANDARD_METRIC_COLUMNS
        .iter()
        .map(|&(_, pointer)| table.data_column(pointer).map(|c| c.materialize()))
        .collect();
    let mut out = String::from("job_id");
    for column in &param_names {
        out.push(',');
        out.push_str(&csv_cell(column));
    }
    for (label, _) in STANDARD_METRIC_COLUMNS {
        out.push(',');
        out.push_str(label);
    }
    out.push('\n');
    for &row in &order {
        out.push_str(&Id::from_u128(table.row_id(row)).to_base32());
        for column in &param_columns {
            out.push(',');
            let cell = column.and_then(|c| c.label_at(row)).unwrap_or("");
            out.push_str(&csv_cell(cell));
        }
        for cells in &metric_cells {
            out.push(',');
            match cells.as_ref().map(|c| c[row]) {
                None | Some(Cell::Missing) => {}
                Some(Cell::Str(s)) => out.push_str(&csv_cell(s)),
                Some(other) => {
                    if let Some(v) = other.to_value() {
                        out.push_str(&v.to_string());
                    }
                }
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Performance trend of an experiment across its successive evaluations
/// (paper §3: re-running evaluations "for the quality assurance monitoring
/// the performance of an SuE over subsequent change sets").
///
/// For each evaluation (in creation order) the mean of `value_path` over
/// its finished jobs is computed; consecutive evaluations are compared and
/// drops beyond `regression_threshold` (e.g. `0.1` = 10%) are flagged.
/// Higher values are assumed better (throughput-style metrics); pass a
/// latency path through [`compare_series`] semantics by negating offline.
pub fn experiment_trend(
    control: &ChronosControl,
    experiment_id: Id,
    value_path: &str,
    regression_threshold: f64,
) -> CoreResult<Value> {
    let evaluations = control.list_evaluations(Some(experiment_id));
    let mut runs: Vec<Value> = Vec::new();
    let mut previous: Option<f64> = None;
    let mut regressions = 0usize;
    for evaluation in &evaluations {
        let Some((mean, measured)) = evaluation_mean(control, evaluation.id, value_path)? else {
            continue; // evaluation has no finished results yet
        };
        let change = previous.map(|prev| if prev == 0.0 { 0.0 } else { (mean - prev) / prev });
        let regressed = change.map(|c| c < -regression_threshold).unwrap_or(false);
        if regressed {
            regressions += 1;
        }
        runs.push(obj! {
            "evaluation_id" => evaluation.id.to_base32(),
            "created_at" => evaluation.created_at,
            "jobs_measured" => measured,
            "mean" => mean,
            "change" => change.map(Value::from).unwrap_or(Value::Null),
            "regressed" => regressed,
        });
        previous = Some(mean);
    }
    Ok(obj! {
        "experiment_id" => experiment_id.to_base32(),
        "value_path" => value_path,
        "regression_threshold" => regression_threshold,
        "runs" => Value::Array(runs),
        "regressions" => regressions,
    })
}

/// The mean of `value_path` over an evaluation's finished jobs, served
/// from the columnar store (left-to-right accumulation in `job_ids`
/// order, bit-identical to the row scan). `None` when no finished job
/// carries a numeric value at the pointer.
fn evaluation_mean(
    control: &ChronosControl,
    evaluation_id: Id,
    value_path: &str,
) -> CoreResult<Option<(f64, u64)>> {
    let (table, order) = columnar_rows(control, evaluation_id)?;
    let Some(column) = table.data_column(value_path) else {
        return Ok(None);
    };
    let cells = column.materialize();
    let agg = sum_count(&cells, &order);
    Ok(agg.mean().map(|mean| (mean, agg.count)))
}

/// One evaluation run of a regression scan: identity plus measured mean.
#[derive(Debug, Clone)]
pub struct RegressionRun {
    /// Evaluation id.
    pub evaluation_id: Id,
    /// Evaluation creation time (unix millis).
    pub created_at: u64,
    /// Number of finished jobs carrying the metric.
    pub jobs_measured: u64,
    /// Mean of the metric over those jobs.
    pub mean: f64,
}

/// The change-point scan of one experiment's metric history.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Experiment id.
    pub experiment_id: Id,
    /// Metric pointer the scan ran over.
    pub value_path: String,
    /// Detection parameters (seeded — identical requests yield identical
    /// responses).
    pub config: ChangePointConfig,
    /// Per-evaluation mean history, creation order.
    pub runs: Vec<RegressionRun>,
    /// Detected change points, by run index.
    pub change_points: Vec<ChangePoint>,
    /// True when any change point lowered the metric (higher-is-better
    /// semantics, as with throughput).
    pub regressed: bool,
}

/// Automatic regression detection over an experiment's evaluation history
/// (paper §3: quality-assurance monitoring over subsequent change sets).
///
/// The per-evaluation means of `value_path` form a series (creation
/// order); seeded E-Divisive-mean change-point detection splits it into
/// statistically distinct regimes. The outcome is cached on the control
/// as the experiment's regression flag.
pub fn experiment_regressions(
    control: &ChronosControl,
    experiment_id: Id,
    value_path: &str,
    config: ChangePointConfig,
) -> CoreResult<RegressionReport> {
    control.get_experiment(experiment_id)?;
    let mut runs = Vec::new();
    for evaluation in control.list_evaluations(Some(experiment_id)) {
        let Some((mean, measured)) = evaluation_mean(control, evaluation.id, value_path)? else {
            continue;
        };
        runs.push(RegressionRun {
            evaluation_id: evaluation.id,
            created_at: evaluation.created_at,
            jobs_measured: measured,
            mean,
        });
    }
    let series: Vec<f64> = runs.iter().map(|r| r.mean).collect();
    let change_points = detect_change_points(&series, &config);
    let regressed = change_points.iter().any(|cp| cp.after_mean < cp.before_mean);
    let report = RegressionReport {
        experiment_id,
        value_path: value_path.to_string(),
        config,
        runs,
        change_points,
        regressed,
    };
    control.set_regression_flag(
        experiment_id,
        RegressionFlag {
            value_path: report.value_path.clone(),
            change_points: report.change_points.len() as u64,
            regressed: report.regressed,
            runs: report.runs.len() as u64,
            scanned_at: control.now(),
        },
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<ResultPoint> {
        let mut out = Vec::new();
        for (engine, threads, tp) in [
            ("wiredtiger", 1, 100.0),
            ("wiredtiger", 2, 190.0),
            ("wiredtiger", 10, 800.0),
            ("mmapv1", 1, 95.0),
            ("mmapv1", 2, 120.0),
            ("mmapv1", 10, 130.0),
        ] {
            out.push(ResultPoint {
                job_id: Id::generate(),
                parameters: obj! {"engine" => engine, "threads" => threads},
                data: obj! {"throughput_ops_per_sec" => tp},
            });
        }
        out
    }

    fn spec() -> ChartSpec {
        ChartSpec {
            kind: "line".into(),
            title: "tp".into(),
            x_param: "threads".into(),
            series_param: Some("engine".into()),
            value_path: "/throughput_ops_per_sec".into(),
            y_label: "ops/s".into(),
        }
    }

    #[test]
    fn chart_data_builds_series() {
        let data = chart_data_from_points(&points(), &spec()).unwrap();
        assert_eq!(data.x_labels, vec!["1", "2", "10"], "numeric x sort");
        assert_eq!(data.series.len(), 2);
        assert_eq!(data.series[0].0, "mmapv1");
        assert_eq!(data.series[1].0, "wiredtiger");
        assert_eq!(data.series[1].1, vec![Some(100.0), Some(190.0), Some(800.0)]);
    }

    #[test]
    fn duplicate_cells_are_averaged() {
        let mut pts = points();
        pts.push(ResultPoint {
            job_id: Id::generate(),
            parameters: obj! {"engine" => "mmapv1", "threads" => 1},
            data: obj! {"throughput_ops_per_sec" => 105.0},
        });
        let data = chart_data_from_points(&pts, &spec()).unwrap();
        let mmap = &data.series[0].1;
        assert_eq!(mmap[0], Some(100.0)); // (95 + 105) / 2
    }

    #[test]
    fn missing_measurements_are_none() {
        let mut pts = points();
        pts.remove(2); // drop wiredtiger@10
        let data = chart_data_from_points(&pts, &spec()).unwrap();
        let wt = &data.series[1].1;
        assert_eq!(wt[2], None);
    }

    #[test]
    fn no_series_param_uses_single_series() {
        let mut s = spec();
        s.series_param = None;
        let data = chart_data_from_points(&points(), &s).unwrap();
        assert_eq!(data.series.len(), 1);
        assert_eq!(data.series[0].0, "ops/s");
        // Cross-engine points at the same x are averaged into the one series.
        assert_eq!(data.series[0].1[0], Some(97.5));
    }

    #[test]
    fn non_numeric_labels_sort_lexicographically() {
        let mut s = spec();
        s.x_param = "engine".into();
        s.series_param = None;
        let data = chart_data_from_points(&points(), &s).unwrap();
        assert_eq!(data.x_labels, vec!["mmapv1", "wiredtiger"]);
    }

    #[test]
    fn comparison_reports_winner_and_factors() {
        let data = chart_data_from_points(&points(), &spec()).unwrap();
        let cmp = compare_series(&data, "wiredtiger", "mmapv1").unwrap();
        assert_eq!(cmp.get("comparisons").and_then(Value::as_i64), Some(3));
        assert_eq!(cmp.get("a_wins").and_then(Value::as_i64), Some(3));
        let r10 = cmp.pointer("/ratios/2/ratio").and_then(Value::as_f64).unwrap();
        assert!((r10 - 800.0 / 130.0).abs() < 1e-9);
        assert!(compare_series(&data, "wiredtiger", "rocksdb").is_err());
    }

    mod columnar {
        use super::super::*;
        use crate::auth::Role;
        use crate::params::{ParamAssignments, ParamDef, ParamType};
        use crate::scheduler::SchedulerConfig;
        use crate::store::MetadataStore;
        use chronos_json::obj;
        use chronos_util::SystemClock;
        use std::sync::Arc;

        /// A finished evaluation with messy result documents: mixed
        /// numeric types, a present-null, a container at a standard
        /// metric pointer, a missing metric, and one job left running.
        fn fixture(store: MetadataStore) -> (ChronosControl, Id) {
            let control =
                ChronosControl::new(store, Arc::new(SystemClock), SchedulerConfig::default());
            let system = control
                .register_system(
                    "db",
                    "",
                    vec![
                        ParamDef::new(
                            "engine",
                            "",
                            ParamType::Checkbox { options: vec!["a".into(), "b".into()] },
                            Value::from("a"),
                        )
                        .unwrap(),
                        ParamDef::new(
                            "threads",
                            "",
                            ParamType::Interval { min: 1, max: 4, step: 1 },
                            Value::from(1),
                        )
                        .unwrap(),
                    ],
                    vec![],
                )
                .unwrap();
            let deployment = control.create_deployment(system.id, "n", "1").unwrap();
            let owner = control.create_user("ada", "pw", Role::Member).unwrap();
            let project = control.create_project("p", "", owner.id).unwrap();
            let experiment = control
                .create_experiment(
                    project.id,
                    system.id,
                    "e",
                    "",
                    ParamAssignments::new()
                        .sweep_all("engine")
                        .sweep("threads", vec![Value::from(1), Value::from(2)]),
                )
                .unwrap();
            let evaluation = control.create_evaluation(experiment.id).unwrap();
            let mut claimed = Vec::new();
            while let Some(job) = control.claim_next_job(deployment.id, None).unwrap() {
                claimed.push(job);
            }
            assert_eq!(claimed.len(), 4);
            let docs = [
                Some(obj! {
                    "throughput_ops_per_sec" => 100.25,
                    "wall_millis" => 2000,
                    "total_ops" => obj! {"x" => 1}, // container at a standard pointer
                    "operations" => obj! {
                        "read" => obj! {"latency_micros" => obj! {"p99" => 420}},
                    },
                }),
                Some(obj! {"throughput_ops_per_sec" => 190.5, "total_errors" => Value::Null}),
                None, // left running: must not appear in any endpoint
                Some(obj! {"throughput_ops_per_sec" => 130.125, "wall_millis" => 1800}),
            ];
            for (job, doc) in claimed.iter().zip(docs) {
                if let Some(data) = doc {
                    control.finish_job(job.id, data, vec![], None, None).unwrap();
                }
            }
            (control, evaluation.id)
        }

        fn spec() -> ChartSpec {
            ChartSpec {
                kind: "line".into(),
                title: "tp".into(),
                x_param: "threads".into(),
                series_param: Some("engine".into()),
                value_path: "/throughput_ops_per_sec".into(),
                y_label: "ops/s".into(),
            }
        }

        /// The pre-columnar row scan, kept verbatim as the oracle.
        fn row_path_summary(control: &ChronosControl, evaluation_id: Id) -> Value {
            let points = collect_points(control, evaluation_id).unwrap();
            let rows: Vec<Value> = points
                .iter()
                .map(|p| {
                    obj! {
                        "job_id" => p.job_id.to_base32(),
                        "parameters" => p.parameters.clone(),
                        "metrics" => standard_metrics(&p.data),
                    }
                })
                .collect();
            obj! {
                "evaluation_id" => evaluation_id.to_base32(),
                "rows" => Value::Array(rows),
            }
        }

        /// The pre-columnar CSV renderer, kept verbatim as the oracle.
        fn row_path_csv(control: &ChronosControl, evaluation_id: Id) -> String {
            let points = collect_points(control, evaluation_id).unwrap();
            let mut param_columns: Vec<String> = Vec::new();
            for point in &points {
                if let Some(map) = point.parameters.as_object() {
                    for key in map.keys() {
                        if !param_columns.iter().any(|c| c == key) {
                            param_columns.push(key.to_string());
                        }
                    }
                }
            }
            param_columns.sort();
            let mut out = String::from("job_id");
            for column in &param_columns {
                out.push(',');
                out.push_str(&csv_cell(column));
            }
            for (label, _) in STANDARD_METRIC_COLUMNS {
                out.push(',');
                out.push_str(label);
            }
            out.push('\n');
            for point in &points {
                out.push_str(&point.job_id.to_base32());
                for column in &param_columns {
                    out.push(',');
                    let cell = match point.parameters.get(column) {
                        None | Some(Value::Null) => String::new(),
                        Some(Value::String(s)) => s.clone(),
                        Some(other) => other.to_string(),
                    };
                    out.push_str(&csv_cell(&cell));
                }
                for (_, pointer) in STANDARD_METRIC_COLUMNS {
                    out.push(',');
                    if let Some(v) = point.data.pointer(pointer) {
                        match v {
                            Value::String(s) => out.push_str(&csv_cell(s)),
                            other => out.push_str(&other.to_string()),
                        }
                    }
                }
                out.push('\n');
            }
            out
        }

        #[test]
        fn chart_matches_row_path_byte_for_byte() {
            let (control, evaluation_id) = fixture(MetadataStore::in_memory());
            let points = collect_points(&control, evaluation_id).unwrap();
            let with_series = spec();
            let columnar = chart_data(&control, evaluation_id, &with_series).unwrap();
            let rows = chart_data_from_points(&points, &with_series).unwrap();
            assert_eq!(columnar, rows);
            let mut single = spec();
            single.series_param = None;
            let columnar = chart_data(&control, evaluation_id, &single).unwrap();
            let rows = chart_data_from_points(&points, &single).unwrap();
            assert_eq!(columnar, rows);
            // A pointer nobody uploaded: both paths serve an all-None series.
            let mut absent = spec();
            absent.value_path = "/does/not/exist".into();
            let columnar = chart_data(&control, evaluation_id, &absent).unwrap();
            let rows = chart_data_from_points(&points, &absent).unwrap();
            assert_eq!(columnar, rows);
        }

        #[test]
        fn summary_matches_row_path_byte_for_byte() {
            let (control, evaluation_id) = fixture(MetadataStore::in_memory());
            let columnar = summary_table(&control, evaluation_id).unwrap();
            assert_eq!(columnar.to_string(), row_path_summary(&control, evaluation_id).to_string());
            // Spot-check the tricky cells survived columnarization.
            assert_eq!(
                columnar.pointer("/rows/0/metrics/total_ops/x").and_then(Value::as_i64),
                Some(1),
                "container at a standard pointer"
            );
            assert!(
                matches!(columnar.pointer("/rows/1/metrics/total_errors"), Some(Value::Null)),
                "present-null is served, not dropped"
            );
            assert_eq!(columnar.pointer("/rows").and_then(Value::as_array).unwrap().len(), 3);
        }

        #[test]
        fn csv_matches_row_path_byte_for_byte() {
            let (control, evaluation_id) = fixture(MetadataStore::in_memory());
            assert_eq!(
                summary_csv(&control, evaluation_id).unwrap(),
                row_path_csv(&control, evaluation_id)
            );
        }

        #[test]
        fn reopened_store_is_lazily_backfilled() {
            let path = std::env::temp_dir()
                .join(format!("chronos-analytics-backfill-{}.log", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let (summary, csv, chart, evaluation_id);
            {
                let (control, eid) = fixture(MetadataStore::open(&path).unwrap());
                evaluation_id = eid;
                summary = summary_table(&control, eid).unwrap().to_string();
                csv = summary_csv(&control, eid).unwrap();
                chart = chart_data(&control, eid, &spec()).unwrap();
            }
            // A fresh control has an empty analytics store: the first read
            // rebuilds the table from the row store, later reads hit the
            // installed table. Both must serve the same bytes as before.
            let control = ChronosControl::new(
                MetadataStore::open(&path).unwrap(),
                Arc::new(SystemClock),
                SchedulerConfig::default(),
            );
            for _ in 0..2 {
                assert_eq!(summary_table(&control, evaluation_id).unwrap().to_string(), summary);
                assert_eq!(summary_csv(&control, evaluation_id).unwrap(), csv);
                assert_eq!(chart_data(&control, evaluation_id, &spec()).unwrap(), chart);
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn standard_metrics_extraction() {
        let data = obj! {
            "wall_millis" => 2000,
            "throughput_ops_per_sec" => 500.0,
            "total_ops" => 1000,
            "operations" => obj! {
                "read" => obj! {"latency_micros" => obj! {"p99" => 420}},
            },
        };
        let metrics = standard_metrics(&data);
        assert_eq!(metrics.get("execution_time_millis").and_then(Value::as_i64), Some(2000));
        assert_eq!(metrics.get("read_latency_p99_micros").and_then(Value::as_i64), Some(420));
        assert!(metrics.get("update_latency_p99_micros").is_none());
    }
}
