//! Result analysis (paper Fig. 3d and requirement *(vi)*).
//!
//! Analysis turns an evaluation's per-job result documents into plottable
//! series: the experiment's swept parameters become the x axis and the
//! series split, the chart's `value_path` pointer selects the measurement.
//! A tabular summary and cross-series comparisons (who wins, by what
//! factor) are derived from the same data.

use chronos_json::{obj, Value};
use chronos_util::Id;

use crate::charts::{ChartData, ChartSpec};
use crate::control::ChronosControl;
use crate::error::{CoreError, CoreResult};
use crate::model::JobState;

/// One analyzable data point: a finished job's parameters + measurements.
#[derive(Debug, Clone)]
pub struct ResultPoint {
    /// Job id.
    pub job_id: Id,
    /// The job's concrete parameters.
    pub parameters: Value,
    /// The uploaded measurement document.
    pub data: Value,
}

/// Collects the finished jobs of an evaluation as result points.
pub fn collect_points(control: &ChronosControl, evaluation_id: Id) -> CoreResult<Vec<ResultPoint>> {
    let jobs = control.list_jobs(evaluation_id)?;
    let mut points = Vec::new();
    for job in jobs {
        if job.state != JobState::Finished {
            continue;
        }
        if let Some(result) = control.result_for_job(job.id)? {
            points.push(ResultPoint {
                job_id: job.id,
                parameters: job.parameters.clone(),
                data: result.data,
            });
        }
    }
    Ok(points)
}

/// Renders one parameter value as a stable label.
fn param_label(value: Option<&Value>) -> String {
    match value {
        None | Some(Value::Null) => "-".to_string(),
        Some(Value::String(s)) => s.clone(),
        Some(other) => other.to_string(),
    }
}

/// Sorts labels numerically when they all parse as numbers, else
/// lexicographically (thread counts must order 1, 2, 10 — not 1, 10, 2).
fn sort_labels(labels: &mut Vec<String>) {
    let all_numeric = labels.iter().all(|l| l.parse::<f64>().is_ok());
    if all_numeric {
        labels.sort_by(|a, b| {
            a.parse::<f64>()
                .unwrap_or(0.0)
                .partial_cmp(&b.parse::<f64>().unwrap_or(0.0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        labels.sort();
    }
    labels.dedup();
}

/// Builds the [`ChartData`] for `spec` from an evaluation's results.
///
/// Multiple points landing in the same (x, series) cell are averaged —
/// repeated evaluations of the same experiment refine the measurement.
pub fn chart_data(
    control: &ChronosControl,
    evaluation_id: Id,
    spec: &ChartSpec,
) -> CoreResult<ChartData> {
    let points = collect_points(control, evaluation_id)?;
    chart_data_from_points(&points, spec)
}

/// [`chart_data`] over pre-collected points (used by archives and tests).
pub fn chart_data_from_points(points: &[ResultPoint], spec: &ChartSpec) -> CoreResult<ChartData> {
    let mut x_labels: Vec<String> =
        points.iter().map(|p| param_label(p.parameters.get(&spec.x_param))).collect();
    sort_labels(&mut x_labels);
    let mut series_names: Vec<String> = match &spec.series_param {
        Some(param) => {
            let mut names: Vec<String> =
                points.iter().map(|p| param_label(p.parameters.get(param))).collect();
            names.sort();
            names.dedup();
            names
        }
        None => vec![spec.y_label.clone()],
    };
    if series_names.is_empty() {
        series_names.push(spec.y_label.clone());
    }
    // (series, x) -> (sum, count)
    let mut cells: Vec<Vec<(f64, u32)>> = vec![vec![(0.0, 0); x_labels.len()]; series_names.len()];
    for point in points {
        let x = param_label(point.parameters.get(&spec.x_param));
        let series = match &spec.series_param {
            Some(param) => param_label(point.parameters.get(param)),
            None => spec.y_label.clone(),
        };
        let Some(value) = point.data.pointer(&spec.value_path).and_then(Value::as_f64) else {
            continue;
        };
        let (Some(xi), Some(si)) =
            (x_labels.iter().position(|l| *l == x), series_names.iter().position(|s| *s == series))
        else {
            continue;
        };
        cells[si][xi].0 += value;
        cells[si][xi].1 += 1;
    }
    let series = series_names
        .into_iter()
        .zip(cells)
        .map(|(name, row)| {
            let values = row
                .into_iter()
                .map(|(sum, n)| if n == 0 { None } else { Some(sum / n as f64) })
                .collect();
            (name, values)
        })
        .collect();
    Ok(ChartData { x_labels, series })
}

/// A tabular summary of an evaluation: one row per finished job with its
/// parameters and the standard metrics found in the result document.
pub fn summary_table(control: &ChronosControl, evaluation_id: Id) -> CoreResult<Value> {
    let points = collect_points(control, evaluation_id)?;
    let rows: Vec<Value> = points
        .iter()
        .map(|p| {
            obj! {
                "job_id" => p.job_id.to_base32(),
                "parameters" => p.parameters.clone(),
                "metrics" => standard_metrics(&p.data),
            }
        })
        .collect();
    Ok(obj! {
        "evaluation_id" => evaluation_id.to_base32(),
        "rows" => Value::Array(rows),
    })
}

/// Extracts the standard metrics (requirement *(vi)*: "standard metrics for
/// measurements (e.g., execution time)") from a result document, tolerating
/// missing fields.
pub fn standard_metrics(data: &Value) -> Value {
    let mut metrics = obj! {};
    for (label, pointer) in [
        ("execution_time_millis", "/wall_millis"),
        ("throughput_ops_per_sec", "/throughput_ops_per_sec"),
        ("total_ops", "/total_ops"),
        ("total_errors", "/total_errors"),
        ("read_latency_p99_micros", "/operations/read/latency_micros/p99"),
        ("update_latency_p99_micros", "/operations/update/latency_micros/p99"),
    ] {
        if let Some(v) = data.pointer(pointer) {
            metrics.set(label, v.clone());
        }
    }
    metrics
}

/// Compares two series of a chart: per-x ratio `a / b` and the overall
/// winner. This is the "who wins, by what factor" readout of the demo.
pub fn compare_series(data: &ChartData, series_a: &str, series_b: &str) -> CoreResult<Value> {
    let find = |name: &str| {
        data.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ys)| ys)
            .ok_or_else(|| CoreError::Invalid(format!("no series {name:?}")))
    };
    let a = find(series_a)?;
    let b = find(series_b)?;
    let mut ratios = Vec::new();
    let mut a_wins = 0usize;
    let mut comparisons = 0usize;
    for (i, label) in data.x_labels.iter().enumerate() {
        let Some(va) = a.get(i).copied().flatten() else { continue };
        let Some(vb) = b.get(i).copied().flatten() else { continue };
        if vb == 0.0 {
            continue;
        }
        comparisons += 1;
        if va > vb {
            a_wins += 1;
        }
        ratios.push(obj! {
            "x" => label.as_str(),
            "ratio" => va / vb,
        });
    }
    Ok(obj! {
        "a" => series_a,
        "b" => series_b,
        "comparisons" => comparisons,
        "a_wins" => a_wins,
        "ratios" => Value::Array(ratios),
    })
}

/// Escapes one CSV cell (RFC 4180 quoting).
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders an evaluation's finished jobs as CSV: one row per job, columns
/// for every parameter (union across jobs, sorted) followed by the standard
/// metrics. The export analysts pull into spreadsheets/R.
pub fn summary_csv(control: &ChronosControl, evaluation_id: Id) -> CoreResult<String> {
    let points = collect_points(control, evaluation_id)?;
    // Column union over parameters.
    let mut param_columns: Vec<String> = Vec::new();
    for point in &points {
        if let Some(map) = point.parameters.as_object() {
            for key in map.keys() {
                if !param_columns.iter().any(|c| c == key) {
                    param_columns.push(key.to_string());
                }
            }
        }
    }
    param_columns.sort();
    const METRIC_COLUMNS: [(&str, &str); 6] = [
        ("execution_time_millis", "/wall_millis"),
        ("throughput_ops_per_sec", "/throughput_ops_per_sec"),
        ("total_ops", "/total_ops"),
        ("total_errors", "/total_errors"),
        ("read_latency_p99_micros", "/operations/read/latency_micros/p99"),
        ("update_latency_p99_micros", "/operations/update/latency_micros/p99"),
    ];
    let mut out = String::from("job_id");
    for column in &param_columns {
        out.push(',');
        out.push_str(&csv_cell(column));
    }
    for (label, _) in METRIC_COLUMNS {
        out.push(',');
        out.push_str(label);
    }
    out.push('\n');
    for point in &points {
        out.push_str(&point.job_id.to_base32());
        for column in &param_columns {
            out.push(',');
            let cell = match point.parameters.get(column) {
                None | Some(Value::Null) => String::new(),
                Some(Value::String(s)) => s.clone(),
                Some(other) => other.to_string(),
            };
            out.push_str(&csv_cell(&cell));
        }
        for (_, pointer) in METRIC_COLUMNS {
            out.push(',');
            if let Some(v) = point.data.pointer(pointer) {
                match v {
                    Value::String(s) => out.push_str(&csv_cell(s)),
                    other => out.push_str(&other.to_string()),
                }
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Performance trend of an experiment across its successive evaluations
/// (paper §3: re-running evaluations "for the quality assurance monitoring
/// the performance of an SuE over subsequent change sets").
///
/// For each evaluation (in creation order) the mean of `value_path` over
/// its finished jobs is computed; consecutive evaluations are compared and
/// drops beyond `regression_threshold` (e.g. `0.1` = 10%) are flagged.
/// Higher values are assumed better (throughput-style metrics); pass a
/// latency path through [`compare_series`] semantics by negating offline.
pub fn experiment_trend(
    control: &ChronosControl,
    experiment_id: Id,
    value_path: &str,
    regression_threshold: f64,
) -> CoreResult<Value> {
    let evaluations = control.list_evaluations(Some(experiment_id));
    let mut runs: Vec<Value> = Vec::new();
    let mut previous: Option<f64> = None;
    let mut regressions = 0usize;
    for evaluation in &evaluations {
        let points = collect_points(control, evaluation.id)?;
        let values: Vec<f64> = points
            .iter()
            .filter_map(|p| p.data.pointer(value_path).and_then(Value::as_f64))
            .collect();
        if values.is_empty() {
            continue; // evaluation has no finished results yet
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let change = previous.map(|prev| if prev == 0.0 { 0.0 } else { (mean - prev) / prev });
        let regressed = change.map(|c| c < -regression_threshold).unwrap_or(false);
        if regressed {
            regressions += 1;
        }
        runs.push(obj! {
            "evaluation_id" => evaluation.id.to_base32(),
            "created_at" => evaluation.created_at,
            "jobs_measured" => values.len(),
            "mean" => mean,
            "change" => change.map(Value::from).unwrap_or(Value::Null),
            "regressed" => regressed,
        });
        previous = Some(mean);
    }
    Ok(obj! {
        "experiment_id" => experiment_id.to_base32(),
        "value_path" => value_path,
        "regression_threshold" => regression_threshold,
        "runs" => Value::Array(runs),
        "regressions" => regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<ResultPoint> {
        let mut out = Vec::new();
        for (engine, threads, tp) in [
            ("wiredtiger", 1, 100.0),
            ("wiredtiger", 2, 190.0),
            ("wiredtiger", 10, 800.0),
            ("mmapv1", 1, 95.0),
            ("mmapv1", 2, 120.0),
            ("mmapv1", 10, 130.0),
        ] {
            out.push(ResultPoint {
                job_id: Id::generate(),
                parameters: obj! {"engine" => engine, "threads" => threads},
                data: obj! {"throughput_ops_per_sec" => tp},
            });
        }
        out
    }

    fn spec() -> ChartSpec {
        ChartSpec {
            kind: "line".into(),
            title: "tp".into(),
            x_param: "threads".into(),
            series_param: Some("engine".into()),
            value_path: "/throughput_ops_per_sec".into(),
            y_label: "ops/s".into(),
        }
    }

    #[test]
    fn chart_data_builds_series() {
        let data = chart_data_from_points(&points(), &spec()).unwrap();
        assert_eq!(data.x_labels, vec!["1", "2", "10"], "numeric x sort");
        assert_eq!(data.series.len(), 2);
        assert_eq!(data.series[0].0, "mmapv1");
        assert_eq!(data.series[1].0, "wiredtiger");
        assert_eq!(data.series[1].1, vec![Some(100.0), Some(190.0), Some(800.0)]);
    }

    #[test]
    fn duplicate_cells_are_averaged() {
        let mut pts = points();
        pts.push(ResultPoint {
            job_id: Id::generate(),
            parameters: obj! {"engine" => "mmapv1", "threads" => 1},
            data: obj! {"throughput_ops_per_sec" => 105.0},
        });
        let data = chart_data_from_points(&pts, &spec()).unwrap();
        let mmap = &data.series[0].1;
        assert_eq!(mmap[0], Some(100.0)); // (95 + 105) / 2
    }

    #[test]
    fn missing_measurements_are_none() {
        let mut pts = points();
        pts.remove(2); // drop wiredtiger@10
        let data = chart_data_from_points(&pts, &spec()).unwrap();
        let wt = &data.series[1].1;
        assert_eq!(wt[2], None);
    }

    #[test]
    fn no_series_param_uses_single_series() {
        let mut s = spec();
        s.series_param = None;
        let data = chart_data_from_points(&points(), &s).unwrap();
        assert_eq!(data.series.len(), 1);
        assert_eq!(data.series[0].0, "ops/s");
        // Cross-engine points at the same x are averaged into the one series.
        assert_eq!(data.series[0].1[0], Some(97.5));
    }

    #[test]
    fn non_numeric_labels_sort_lexicographically() {
        let mut s = spec();
        s.x_param = "engine".into();
        s.series_param = None;
        let data = chart_data_from_points(&points(), &s).unwrap();
        assert_eq!(data.x_labels, vec!["mmapv1", "wiredtiger"]);
    }

    #[test]
    fn comparison_reports_winner_and_factors() {
        let data = chart_data_from_points(&points(), &spec()).unwrap();
        let cmp = compare_series(&data, "wiredtiger", "mmapv1").unwrap();
        assert_eq!(cmp.get("comparisons").and_then(Value::as_i64), Some(3));
        assert_eq!(cmp.get("a_wins").and_then(Value::as_i64), Some(3));
        let r10 = cmp.pointer("/ratios/2/ratio").and_then(Value::as_f64).unwrap();
        assert!((r10 - 800.0 / 130.0).abs() < 1e-9);
        assert!(compare_series(&data, "wiredtiger", "rocksdb").is_err());
    }

    #[test]
    fn standard_metrics_extraction() {
        let data = obj! {
            "wall_millis" => 2000,
            "throughput_ops_per_sec" => 500.0,
            "total_ops" => 1000,
            "operations" => obj! {
                "read" => obj! {"latency_micros" => obj! {"p99" => 420}},
            },
        };
        let metrics = standard_metrics(&data);
        assert_eq!(metrics.get("execution_time_millis").and_then(Value::as_i64), Some(2000));
        assert_eq!(metrics.get("read_latency_p99_micros").and_then(Value::as_i64), Some(420));
        assert!(metrics.get("update_latency_p99_micros").is_none());
    }
}
