//! Archiving (requirement *(iv)*): "mechanisms for archiving the results of
//! the evaluations as well as of all parameter settings which have led to
//! these results."
//!
//! A project archive is a single zip bundle containing every setting and
//! every result: the project document, each experiment with its parameter
//! assignments, each evaluation with its jobs (state, parameters, log,
//! timeline) and each job's result JSON + uploaded zip, plus a manifest
//! with SHA-256 fingerprints so archives are verifiable years later.

use chronos_json::{obj, Value};
use chronos_util::encode::{hex_encode, sha256};
use chronos_util::Id;
use chronos_zip::ZipWriter;

use crate::control::ChronosControl;
use crate::error::CoreResult;

/// Archives a whole project into a zip bundle.
pub fn archive_project(control: &ChronosControl, project_id: Id) -> CoreResult<Vec<u8>> {
    let project = control.get_project(project_id)?;
    let mut zip = ZipWriter::new();
    let mut manifest_entries: Vec<Value> = Vec::new();
    let mut add = |zip: &mut ZipWriter, name: String, bytes: &[u8]| -> CoreResult<()> {
        zip.add_file(&name, bytes)?;
        manifest_entries.push(obj! {
            "path" => name,
            "bytes" => bytes.len(),
            "sha256" => hex_encode(&sha256(bytes)),
        });
        Ok(())
    };

    add(&mut zip, "project.json".into(), project.to_json().to_pretty_string().as_bytes())?;

    for experiment in control.list_experiments(Some(project_id)) {
        let exp_dir = format!("experiments/{}", experiment.id);
        add(
            &mut zip,
            format!("{exp_dir}/experiment.json"),
            experiment.to_json().to_pretty_string().as_bytes(),
        )?;
        // The system definition the experiment ran against is part of the
        // settings that produced the results.
        if let Ok(system) = control.get_system(experiment.system_id) {
            add(
                &mut zip,
                format!("{exp_dir}/system.json"),
                system.to_json().to_pretty_string().as_bytes(),
            )?;
        }
        for evaluation in control.list_evaluations(Some(experiment.id)) {
            let eval_dir = format!("{exp_dir}/evaluations/{}", evaluation.id);
            add(
                &mut zip,
                format!("{eval_dir}/evaluation.json"),
                evaluation.to_json().to_pretty_string().as_bytes(),
            )?;
            for job in control.list_jobs(evaluation.id)? {
                let job_dir = format!("{eval_dir}/jobs/{}", job.id);
                add(
                    &mut zip,
                    format!("{job_dir}/job.json"),
                    job.to_json().to_pretty_string().as_bytes(),
                )?;
                if !job.log.is_empty() {
                    add(&mut zip, format!("{job_dir}/log.txt"), job.log.as_bytes())?;
                }
                if let Some(result) = control.result_for_job(job.id)? {
                    add(
                        &mut zip,
                        format!("{job_dir}/result.json"),
                        result.data.to_pretty_string().as_bytes(),
                    )?;
                    if !result.archive.is_empty() {
                        add(&mut zip, format!("{job_dir}/result.zip"), &result.archive)?;
                    }
                }
            }
        }
    }

    let manifest = obj! {
        "archive_format" => 1,
        "project_id" => project_id.to_base32(),
        "project_name" => project.name.as_str(),
        "created_at" => control.now(),
        "entries" => Value::Array(manifest_entries),
    };
    zip.add_file("manifest.json", manifest.to_pretty_string().as_bytes())?;
    Ok(zip.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::Role;
    use crate::params::{ParamAssignments, ParamDef, ParamType};
    use chronos_zip::ZipArchive;

    fn populated_control() -> (ChronosControl, Id) {
        let control = ChronosControl::in_memory();
        let system = control
            .register_system(
                "sut",
                "",
                vec![ParamDef::new(
                    "threads",
                    "",
                    ParamType::Interval { min: 1, max: 4, step: 1 },
                    Value::from(1),
                )
                .unwrap()],
                vec![],
            )
            .unwrap();
        let deployment = control.create_deployment(system.id, "n", "1").unwrap();
        let owner = control.create_user("ada", "pw", Role::Member).unwrap();
        let project = control.create_project("demo", "archive me", owner.id).unwrap();
        let experiment = control
            .create_experiment(
                project.id,
                system.id,
                "e1",
                "",
                ParamAssignments::new().sweep("threads", vec![Value::from(1), Value::from(2)]),
            )
            .unwrap();
        control.create_evaluation(experiment.id).unwrap();
        // Run one job to completion so the archive has a result.
        let job = control.claim_next_job(deployment.id, None).unwrap().unwrap();
        control.append_log(job.id, "did some work").unwrap();
        control
            .finish_job(
                job.id,
                obj! {"throughput_ops_per_sec" => 42.0},
                b"inner-zip".to_vec(),
                None,
                None,
            )
            .unwrap();
        (control, project.id)
    }

    #[test]
    fn archive_contains_settings_and_results() {
        let (control, project_id) = populated_control();
        let bytes = archive_project(&control, project_id).unwrap();
        let archive = ZipArchive::parse(&bytes).unwrap();
        let names = archive.names();
        assert!(names.contains(&"project.json"));
        assert!(names.contains(&"manifest.json"));
        assert!(names.iter().any(|n| n.ends_with("/experiment.json")));
        assert!(names.iter().any(|n| n.ends_with("/system.json")));
        assert!(names.iter().any(|n| n.ends_with("/evaluation.json")));
        assert!(names.iter().any(|n| n.ends_with("/job.json")));
        assert!(names.iter().any(|n| n.ends_with("/log.txt")));
        assert!(names.iter().any(|n| n.ends_with("/result.json")));
        assert!(names.iter().any(|n| n.ends_with("/result.zip")));
    }

    #[test]
    fn manifest_fingerprints_are_correct() {
        let (control, project_id) = populated_control();
        let bytes = archive_project(&control, project_id).unwrap();
        let archive = ZipArchive::parse(&bytes).unwrap();
        let manifest = chronos_json::parse(
            &String::from_utf8(archive.read("manifest.json").unwrap()).unwrap(),
        )
        .unwrap();
        let entries = manifest.get("entries").and_then(Value::as_array).unwrap();
        assert!(!entries.is_empty());
        for entry in entries {
            let path = entry.get("path").and_then(Value::as_str).unwrap();
            let expected = entry.get("sha256").and_then(Value::as_str).unwrap();
            let data = archive.read(path).unwrap();
            assert_eq!(hex_encode(&sha256(&data)), expected, "fingerprint of {path}");
        }
    }

    #[test]
    fn archived_result_payload_roundtrips() {
        let (control, project_id) = populated_control();
        let bytes = archive_project(&control, project_id).unwrap();
        let archive = ZipArchive::parse(&bytes).unwrap();
        let result_zip = archive
            .names()
            .iter()
            .find(|n| n.ends_with("/result.zip"))
            .map(|n| n.to_string())
            .unwrap();
        assert_eq!(archive.read(&result_zip).unwrap(), b"inner-zip");
    }

    #[test]
    fn missing_project_errors() {
        let control = ChronosControl::in_memory();
        assert!(archive_project(&control, Id::generate()).is_err());
    }
}
