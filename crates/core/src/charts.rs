//! Result visualization: bar, line and pie diagrams.
//!
//! "For the result visualization, Chronos provides bar, line, and pie
//! diagrams. If more [...] diagrams are required, the built-in set of types
//! can be extended" (paper §2.2). Charts are *declared* on the system
//! ([`ChartSpec`]), *filled* by the analysis layer
//! ([`ChartData`]), and *rendered* by a [`ChartRegistry`] — the registry is
//! the extension point: registering a new renderer under a new kind string
//! is all a custom diagram type needs.
//!
//! Two renderers ship for every kind: SVG (the web UI artifact) and ASCII
//! (for terminals and logs).

use chronos_json::{obj, Value};

use crate::error::{CoreError, CoreResult};

/// A chart declaration attached to a system.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSpec {
    /// Chart kind: `"bar"`, `"line"`, `"pie"`, or a custom registered kind.
    pub kind: String,
    /// Chart title.
    pub title: String,
    /// The swept parameter providing the x axis (bar/line) or slice labels
    /// (pie).
    pub x_param: String,
    /// Optional swept parameter splitting the data into series
    /// (e.g. `"engine"` → one line per engine).
    pub series_param: Option<String>,
    /// JSON pointer into each job's result document selecting the plotted
    /// value (e.g. `"/throughput_ops_per_sec"`).
    pub value_path: String,
    /// Y-axis label.
    pub y_label: String,
}

impl ChartSpec {
    /// JSON shape used in system definitions.
    pub fn to_json(&self) -> Value {
        obj! {
            "kind" => self.kind.as_str(),
            "title" => self.title.as_str(),
            "x_param" => self.x_param.as_str(),
            "series_param" => self.series_param.clone().map(Value::from).unwrap_or(Value::Null),
            "value_path" => self.value_path.as_str(),
            "y_label" => self.y_label.as_str(),
        }
    }

    /// Parses [`ChartSpec::to_json`] output.
    pub fn from_json(value: &Value) -> CoreResult<ChartSpec> {
        let get = |f: &str| {
            value
                .get(f)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| CoreError::Invalid(format!("chart needs {f:?}")))
        };
        Ok(ChartSpec {
            kind: get("kind")?,
            title: get("title")?,
            x_param: get("x_param")?,
            series_param: value.get("series_param").and_then(Value::as_str).map(str::to_string),
            value_path: get("value_path")?,
            y_label: value.get("y_label").and_then(Value::as_str).unwrap_or("").to_string(),
        })
    }
}

/// Data ready to plot: x categories and one or more named series.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartData {
    /// X-axis category labels.
    pub x_labels: Vec<String>,
    /// `(series name, y values)`; `None` marks a missing measurement.
    pub series: Vec<(String, Vec<Option<f64>>)>,
}

impl ChartData {
    /// The largest finite value across all series (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.series.iter().flat_map(|(_, ys)| ys.iter().flatten()).fold(0.0f64, |m, &v| m.max(v))
    }

    /// True when no values are present.
    pub fn is_empty(&self) -> bool {
        self.series.iter().all(|(_, ys)| ys.iter().all(Option::is_none))
    }
}

/// A renderer for one chart kind.
pub trait ChartRenderer: Send + Sync {
    /// Renders to SVG.
    fn render_svg(&self, spec: &ChartSpec, data: &ChartData) -> String;
    /// Renders to fixed-width ASCII.
    fn render_ascii(&self, spec: &ChartSpec, data: &ChartData) -> String;
}

/// The registry of chart kinds; extensible per the paper.
pub struct ChartRegistry {
    renderers: Vec<(String, Box<dyn ChartRenderer>)>,
}

impl Default for ChartRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ChartRegistry {
    /// A registry with the paper's built-in kinds: bar, line, pie.
    pub fn with_builtins() -> Self {
        let mut registry = ChartRegistry { renderers: Vec::new() };
        registry.register("bar", Box::new(BarRenderer));
        registry.register("line", Box::new(LineRenderer));
        registry.register("pie", Box::new(PieRenderer));
        registry
    }

    /// Registers (or replaces) a renderer for `kind`.
    pub fn register(&mut self, kind: &str, renderer: Box<dyn ChartRenderer>) {
        self.renderers.retain(|(k, _)| k != kind);
        self.renderers.push((kind.to_string(), renderer));
    }

    /// The registered kind names.
    pub fn kinds(&self) -> Vec<&str> {
        self.renderers.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Renders `spec` with `data` to SVG.
    pub fn render_svg(&self, spec: &ChartSpec, data: &ChartData) -> CoreResult<String> {
        self.renderer(&spec.kind).map(|r| r.render_svg(spec, data))
    }

    /// Renders `spec` with `data` to ASCII.
    pub fn render_ascii(&self, spec: &ChartSpec, data: &ChartData) -> CoreResult<String> {
        self.renderer(&spec.kind).map(|r| r.render_ascii(spec, data))
    }

    fn renderer(&self, kind: &str) -> CoreResult<&dyn ChartRenderer> {
        self.renderers
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, r)| r.as_ref())
            .ok_or_else(|| CoreError::Invalid(format!("unknown chart kind {kind:?}")))
    }
}

const SVG_W: f64 = 640.0;
const SVG_H: f64 = 400.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_B: f64 = 50.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_R: f64 = 20.0;
const PALETTE: [&str; 6] = ["#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2"];

fn svg_header(title: &str) -> String {
    format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n",
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
            "<text x=\"{cx}\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">{title}</text>\n"
        ),
        w = SVG_W,
        h = SVG_H,
        cx = SVG_W / 2.0,
        title = xml_escape(title),
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn axes_and_legend(spec: &ChartSpec, data: &ChartData, out: &mut String) {
    let plot_h = SVG_H - MARGIN_T - MARGIN_B;
    // Y axis with 5 gridlines.
    let max = data.max_value().max(1e-12);
    for i in 0..=5 {
        let frac = i as f64 / 5.0;
        let y = MARGIN_T + plot_h * (1.0 - frac);
        out.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>\n",
            SVG_W - MARGIN_R
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{}</text>\n",
            MARGIN_L - 6.0,
            y + 3.0,
            format_value(max * frac)
        ));
    }
    out.push_str(&format!(
        "<text x=\"16\" y=\"{}\" font-size=\"11\" transform=\"rotate(-90 16 {})\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(&spec.y_label)
    ));
    // Legend.
    for (i, (name, _)) in data.series.iter().enumerate() {
        let x = MARGIN_L + 110.0 * i as f64;
        let y = SVG_H - 12.0;
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
            y - 9.0,
            PALETTE[i % PALETTE.len()]
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{y}\" font-size=\"11\">{}</text>\n",
            x + 14.0,
            xml_escape(name)
        ));
    }
}

fn format_value(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if v >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Grouped bar chart.
struct BarRenderer;

impl ChartRenderer for BarRenderer {
    fn render_svg(&self, spec: &ChartSpec, data: &ChartData) -> String {
        let mut out = svg_header(&spec.title);
        axes_and_legend(spec, data, &mut out);
        let plot_w = SVG_W - MARGIN_L - MARGIN_R;
        let plot_h = SVG_H - MARGIN_T - MARGIN_B;
        let max = data.max_value().max(1e-12);
        let groups = data.x_labels.len().max(1);
        let group_w = plot_w / groups as f64;
        let bar_w = (group_w * 0.8) / data.series.len().max(1) as f64;
        for (gi, label) in data.x_labels.iter().enumerate() {
            let gx = MARGIN_L + group_w * gi as f64;
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
                gx + group_w / 2.0,
                SVG_H - MARGIN_B + 16.0,
                xml_escape(label)
            ));
            for (si, (_, ys)) in data.series.iter().enumerate() {
                if let Some(Some(v)) = ys.get(gi) {
                    let h = plot_h * (v / max);
                    let x = gx + group_w * 0.1 + bar_w * si as f64;
                    let y = MARGIN_T + plot_h - h;
                    out.push_str(&format!(
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" fill=\"{}\"><title>{}</title></rect>\n",
                        PALETTE[si % PALETTE.len()],
                        format_value(*v)
                    ));
                }
            }
        }
        out.push_str("</svg>\n");
        out
    }

    fn render_ascii(&self, spec: &ChartSpec, data: &ChartData) -> String {
        let mut out = format!("{}\n", spec.title);
        let max = data.max_value().max(1e-12);
        const WIDTH: usize = 40;
        for (gi, label) in data.x_labels.iter().enumerate() {
            for (name, ys) in &data.series {
                if let Some(Some(v)) = ys.get(gi) {
                    let bars = ((v / max) * WIDTH as f64).round() as usize;
                    out.push_str(&format!(
                        "{label:>12} {name:<12} |{:<WIDTH$}| {}\n",
                        "#".repeat(bars),
                        format_value(*v)
                    ));
                }
            }
        }
        out
    }
}

/// Multi-series line chart.
struct LineRenderer;

impl ChartRenderer for LineRenderer {
    fn render_svg(&self, spec: &ChartSpec, data: &ChartData) -> String {
        let mut out = svg_header(&spec.title);
        axes_and_legend(spec, data, &mut out);
        let plot_w = SVG_W - MARGIN_L - MARGIN_R;
        let plot_h = SVG_H - MARGIN_T - MARGIN_B;
        let max = data.max_value().max(1e-12);
        let n = data.x_labels.len().max(2);
        let step = plot_w / (n - 1) as f64;
        for (gi, label) in data.x_labels.iter().enumerate() {
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
                MARGIN_L + step * gi as f64,
                SVG_H - MARGIN_B + 16.0,
                xml_escape(label)
            ));
        }
        for (si, (_, ys)) in data.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let points: Vec<String> = ys
                .iter()
                .enumerate()
                .filter_map(|(i, v)| {
                    v.map(|v| {
                        format!(
                            "{:.1},{:.1}",
                            MARGIN_L + step * i as f64,
                            MARGIN_T + plot_h * (1.0 - v / max)
                        )
                    })
                })
                .collect();
            if !points.is_empty() {
                out.push_str(&format!(
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
                    points.join(" ")
                ));
                for p in &points {
                    let (x, y) = p.split_once(',').expect("formatted point");
                    out.push_str(&format!(
                        "<circle cx=\"{x}\" cy=\"{y}\" r=\"3\" fill=\"{color}\"/>\n"
                    ));
                }
            }
        }
        out.push_str("</svg>\n");
        out
    }

    fn render_ascii(&self, spec: &ChartSpec, data: &ChartData) -> String {
        // A compact table: line charts in ASCII read best as aligned values.
        let mut out = format!("{}\n", spec.title);
        out.push_str(&format!("{:>12}", spec.x_param));
        for (name, _) in &data.series {
            out.push_str(&format!(" {name:>14}"));
        }
        out.push('\n');
        for (gi, label) in data.x_labels.iter().enumerate() {
            out.push_str(&format!("{label:>12}"));
            for (_, ys) in &data.series {
                match ys.get(gi).copied().flatten() {
                    Some(v) => out.push_str(&format!(" {:>14}", format_value(v))),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Pie chart (first series only; x labels are the slices).
struct PieRenderer;

impl ChartRenderer for PieRenderer {
    fn render_svg(&self, spec: &ChartSpec, data: &ChartData) -> String {
        let mut out = svg_header(&spec.title);
        let (cx, cy, r) = (SVG_W / 2.0, (SVG_H + MARGIN_T) / 2.0 - 20.0, 120.0);
        let values: Vec<(usize, f64)> = data
            .series
            .first()
            .map(|(_, ys)| {
                ys.iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.filter(|v| *v > 0.0).map(|v| (i, v)))
                    .collect()
            })
            .unwrap_or_default();
        let total: f64 = values.iter().map(|(_, v)| v).sum();
        let mut angle: f64 = -std::f64::consts::FRAC_PI_2;
        for (slice, (label_idx, v)) in values.iter().enumerate() {
            let frac = v / total.max(1e-12);
            let sweep = frac * std::f64::consts::TAU;
            let (x0, y0) = (cx + r * angle.cos(), cy + r * angle.sin());
            let end = angle + sweep;
            let (x1, y1) = (cx + r * end.cos(), cy + r * end.sin());
            let large = if sweep > std::f64::consts::PI { 1 } else { 0 };
            out.push_str(&format!(
                "<path d=\"M{cx:.1},{cy:.1} L{x0:.1},{y0:.1} A{r:.1},{r:.1} 0 {large} 1 {x1:.1},{y1:.1} Z\" fill=\"{}\"/>\n",
                PALETTE[slice % PALETTE.len()]
            ));
            // Label at mid-angle.
            let mid = angle + sweep / 2.0;
            let (lx, ly) = (cx + (r + 24.0) * mid.cos(), cy + (r + 24.0) * mid.sin());
            let label = data.x_labels.get(*label_idx).cloned().unwrap_or_default();
            out.push_str(&format!(
                "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\" font-size=\"11\">{} ({:.0}%)</text>\n",
                xml_escape(&label),
                frac * 100.0
            ));
            angle = end;
        }
        out.push_str("</svg>\n");
        out
    }

    fn render_ascii(&self, spec: &ChartSpec, data: &ChartData) -> String {
        let mut out = format!("{}\n", spec.title);
        let values: Vec<(String, f64)> = data
            .series
            .first()
            .map(|(_, ys)| {
                data.x_labels
                    .iter()
                    .zip(ys)
                    .filter_map(|(l, v)| v.map(|v| (l.clone(), v)))
                    .collect()
            })
            .unwrap_or_default();
        let total: f64 = values.iter().map(|(_, v)| v).sum::<f64>().max(1e-12);
        for (label, v) in values {
            let pct = v / total * 100.0;
            let bars = (pct / 2.5).round() as usize;
            out.push_str(&format!("{label:>12} |{:<40}| {pct:.1}%\n", "#".repeat(bars)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: &str) -> ChartSpec {
        ChartSpec {
            kind: kind.into(),
            title: "Throughput by thread count".into(),
            x_param: "threads".into(),
            series_param: Some("engine".into()),
            value_path: "/throughput_ops_per_sec".into(),
            y_label: "ops/s".into(),
        }
    }

    fn data() -> ChartData {
        ChartData {
            x_labels: vec!["1".into(), "2".into(), "4".into()],
            series: vec![
                ("wiredtiger".into(), vec![Some(100.0), Some(190.0), Some(360.0)]),
                ("mmapv1".into(), vec![Some(95.0), Some(120.0), None]),
            ],
        }
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = spec("bar");
        assert_eq!(ChartSpec::from_json(&s.to_json()).unwrap(), s);
        let mut no_series = spec("line");
        no_series.series_param = None;
        assert_eq!(ChartSpec::from_json(&no_series.to_json()).unwrap(), no_series);
    }

    #[test]
    fn builtin_kinds_render_svg() {
        let registry = ChartRegistry::with_builtins();
        assert_eq!(registry.kinds(), vec!["bar", "line", "pie"]);
        for kind in ["bar", "line", "pie"] {
            let svg = registry.render_svg(&spec(kind), &data()).unwrap();
            assert!(svg.starts_with("<svg"), "{kind}");
            assert!(svg.ends_with("</svg>\n"), "{kind}");
            assert!(svg.contains("Throughput by thread count"), "{kind}");
        }
    }

    #[test]
    fn bar_svg_has_bars_per_value() {
        let registry = ChartRegistry::with_builtins();
        let svg = registry.render_svg(&spec("bar"), &data()).unwrap();
        // 5 present values -> 5 data rects (plus 1 background + 2 legend).
        assert_eq!(svg.matches("<rect").count(), 5 + 1 + 2);
    }

    #[test]
    fn line_svg_has_polyline_per_series() {
        let registry = ChartRegistry::with_builtins();
        let svg = registry.render_svg(&spec("line"), &data()).unwrap();
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn pie_percentages_sum_to_100() {
        let registry = ChartRegistry::with_builtins();
        let ascii = registry.render_ascii(&spec("pie"), &data()).unwrap();
        let total: f64 = ascii
            .lines()
            .filter_map(|l| {
                l.rsplit_once("| ").and_then(|(_, p)| p.trim_end_matches('%').parse::<f64>().ok())
            })
            .sum();
        assert!((total - 100.0).abs() < 0.5, "{ascii}");
    }

    #[test]
    fn ascii_renders_missing_values_as_dash() {
        let registry = ChartRegistry::with_builtins();
        let ascii = registry.render_ascii(&spec("line"), &data()).unwrap();
        assert!(ascii.contains('-'), "{ascii}");
        assert!(ascii.contains("wiredtiger"));
    }

    #[test]
    fn unknown_kind_rejected() {
        let registry = ChartRegistry::with_builtins();
        assert!(registry.render_svg(&spec("radar"), &data()).is_err());
    }

    #[test]
    fn custom_renderer_registration() {
        struct Flat;
        impl ChartRenderer for Flat {
            fn render_svg(&self, _: &ChartSpec, _: &ChartData) -> String {
                "<svg>flat</svg>".into()
            }
            fn render_ascii(&self, _: &ChartSpec, _: &ChartData) -> String {
                "flat".into()
            }
        }
        let mut registry = ChartRegistry::with_builtins();
        registry.register("flat", Box::new(Flat));
        assert_eq!(registry.render_ascii(&spec("flat"), &data()).unwrap(), "flat");
        // Replacing a builtin works too.
        registry.register("bar", Box::new(Flat));
        assert_eq!(registry.render_ascii(&spec("bar"), &data()).unwrap(), "flat");
        assert_eq!(registry.kinds().len(), 4);
    }

    #[test]
    fn xml_escaping() {
        let mut s = spec("bar");
        s.title = "a < b & \"c\"".into();
        let registry = ChartRegistry::with_builtins();
        let svg = registry.render_svg(&s, &data()).unwrap();
        assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    fn empty_data_renders_without_panic() {
        let registry = ChartRegistry::with_builtins();
        let empty = ChartData { x_labels: vec![], series: vec![] };
        for kind in ["bar", "line", "pie"] {
            let _ = registry.render_svg(&spec(kind), &empty).unwrap();
            let _ = registry.render_ascii(&spec(kind), &empty).unwrap();
        }
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(3.25), "3.25");
        assert_eq!(format_value(42.0), "42");
        assert_eq!(format_value(1_500.0), "1.5k");
        assert_eq!(format_value(2_500_000.0), "2.5M");
    }
}
