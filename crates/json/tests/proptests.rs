//! Property-based tests for the JSON substrate: any value the model can
//! represent must serialize to text that parses back to an equal value, in
//! both compact and pretty form.

use chronos_json::{parse, Map, Number, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        // Finite floats only; JSON has no NaN/Infinity.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|f| Value::Number(Number::Float(f))),
        ".*".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::vec((".*", inner), 0..8).prop_map(|pairs| {
                let mut map = Map::new();
                for (k, v) in pairs {
                    map.insert(k, v);
                }
                Value::Object(map)
            }),
        ]
    })
}

/// The obviously-correct serializer the bulk-copy fast path must match
/// byte for byte: one char at a time, escaping per RFC 8259.
fn reference_escape(s: &str) -> String {
    let mut out = String::from('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

proptest! {
    #[test]
    fn compact_roundtrip(v in arb_value()) {
        let text = v.to_string();
        let back = parse(&text).expect("writer output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let text = v.to_pretty_string();
        let back = parse(&text).expect("pretty output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parse_never_panics(s in ".*") {
        let _ = parse(&s);
    }

    #[test]
    fn parse_json_like_never_panics(s in r#"[\[\]{}",:0-9eE+\-. \\unltrfabcd]*"#) {
        let _ = parse(&s);
    }

    #[test]
    fn fast_path_string_writer_matches_reference_escaper(
        // Escape-heavy input: `.` is biased toward quotes, backslashes,
        // and control characters, and each is followed by a short plain
        // run (including multi-byte text), forcing the bulk-copy fast
        // path on and off repeatedly at every boundary.
        s in "(.[ a-zé😀]{0,6}){0,12}",
    ) {
        let fast = Value::from(s.clone()).to_string();
        prop_assert_eq!(&fast, &reference_escape(&s), "input: {:?}", s);
        let mut streamed = Vec::new();
        Value::from(s.clone()).write_to(&mut streamed).unwrap();
        prop_assert_eq!(fast.as_bytes(), &streamed[..]);
    }

    #[test]
    fn write_into_matches_display_on_any_value(v in arb_value()) {
        let mut buf = String::new();
        v.write_into(&mut buf);
        prop_assert_eq!(&buf, &v.to_string());
    }

    #[test]
    fn pointer_finds_every_object_field(
        keys in prop::collection::hash_set("[a-z]{1,8}", 1..6),
    ) {
        let mut map = Map::new();
        for (i, k) in keys.iter().enumerate() {
            map.insert(k.clone(), Value::from(i as i64));
        }
        let v = Value::Object(map);
        for k in &keys {
            let ptr = format!("/{k}");
            prop_assert!(v.pointer(&ptr).is_some());
        }
    }
}
