//! Parse error reporting with line/column positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// A malformed literal (`true`/`false`/`null` misspelled).
    BadLiteral,
    /// A malformed number.
    BadNumber,
    /// A malformed string escape sequence.
    BadEscape,
    /// An unpaired UTF-16 surrogate in a `\u` escape.
    BadSurrogate,
    /// A raw control character inside a string.
    ControlChar(u8),
    /// Nesting exceeded the configured depth limit.
    TooDeep(usize),
    /// Valid JSON value followed by trailing non-whitespace input.
    TrailingData,
}

/// A parse error with the byte offset, line and column where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Error classification.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ParseErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            ParseErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ParseErrorKind::BadLiteral => "malformed literal".to_string(),
            ParseErrorKind::BadNumber => "malformed number".to_string(),
            ParseErrorKind::BadEscape => "malformed string escape".to_string(),
            ParseErrorKind::BadSurrogate => "unpaired UTF-16 surrogate".to_string(),
            ParseErrorKind::ControlChar(b) => {
                format!("raw control character 0x{b:02x} in string")
            }
            ParseErrorKind::TooDeep(limit) => format!("nesting exceeds depth limit {limit}"),
            ParseErrorKind::TrailingData => "trailing data after value".to_string(),
        };
        write!(f, "{} at line {} column {}", what, self.line, self.column)
    }
}

impl std::error::Error for ParseError {}
