//! The JSON document model.

use std::fmt;

use crate::Number;

/// An object map preserving insertion order.
///
/// Chronos system definitions and result documents are written by humans and
/// read back by humans (and diffed in archives), so key order must survive a
/// parse/serialize round trip. The map is a vector of pairs with linear key
/// lookup — Chronos objects are small (tens of keys), where a vector beats a
/// hash map and keeps ordering for free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Creates an empty map with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Map { entries: Vec::with_capacity(capacity) }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fast key comparison for the linear scan: checking the length
    /// first skips the pointer chase into mismatched keys' bytes, which
    /// is most of them in documents with heterogeneous field names.
    #[inline]
    fn key_matches(candidate: &str, key: &str) -> bool {
        candidate.len() == key.len() && candidate == key
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| Self::key_matches(k, key)).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| Self::key_matches(k, key)).map(|(_, v)| v)
    }

    /// Inserts or replaces a key, returning the previous value if any.
    /// Replacement keeps the key's original position.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| Self::key_matches(k, &key)) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| Self::key_matches(k, key))?;
        Some(self.entries.remove(idx).1)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (exact integer or double).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with stable key order.
    Object(Map),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The array payload, mutably.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The object payload, mutably.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element lookup; `None` for non-arrays and out-of-range indexes.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// Sets `key` on an object value. Converts `Null` into an empty object
    /// first; returns `false` (and does nothing) for other non-object values.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> bool {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                m.insert(key.to_string(), value.into());
                true
            }
            _ => false,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes to compact JSON. (Also available via `Display`.)
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        crate::write::write_compact(self)
    }

    /// Serializes to pretty-printed JSON with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        crate::write::write_pretty(self)
    }

    /// Appends compact JSON to `out`, reusing its capacity — the
    /// hot-path form for callers that serialize in a loop (WAL appends,
    /// HTTP response bodies) and want zero steady-state allocations.
    pub fn write_into(&self, out: &mut String) {
        crate::write::write_into(out, self);
    }

    /// Appends pretty-printed JSON to `out`, reusing its capacity.
    pub fn write_pretty_into(&self, out: &mut String) {
        crate::write::write_pretty_into(out, self);
    }

    /// Streams compact JSON to `writer` without building an intermediate
    /// `String`. Pass a buffered sink (e.g. a `Vec<u8>`); emission
    /// happens in many small pieces.
    pub fn write_to<W: std::io::Write + ?Sized>(&self, writer: &mut W) -> std::io::Result<()> {
        crate::write::write_to(writer, self)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::write::write_fmt(f, self)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::Int(v))
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Number(Number::Int(v as i64))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::Int(v as i64))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::Float(v as f64)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        // JSON cannot represent NaN/Infinity; map them to null so writers
        // never emit invalid documents.
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Number(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1));
        m.insert("a".into(), Value::from(2));
        m.insert("m".into(), Value::from(3));
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1));
        m.insert("b".into(), Value::from(2));
        let old = m.insert("a".into(), Value::from(9));
        assert_eq!(old, Some(Value::from(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::from(9)));
    }

    #[test]
    fn map_remove() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1));
        assert_eq!(m.remove("a"), Some(Value::from(1)));
        assert_eq!(m.remove("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Value::from("text");
        assert!(v.as_bool().is_none());
        assert!(v.as_i64().is_none());
        assert!(v.as_array().is_none());
        assert!(v.as_object().is_none());
        assert_eq!(v.as_str(), Some("text"));
        assert_eq!(v.type_name(), "string");
    }

    #[test]
    fn from_u64_preserves_large_values() {
        let small = Value::from(42u64);
        assert_eq!(small.as_i64(), Some(42));
        let huge = Value::from(u64::MAX);
        assert!(huge.as_f64().unwrap() > 1e19);
    }

    #[test]
    fn from_f64_maps_nonfinite_to_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert!(Value::from(f64::INFINITY).is_null());
        assert!(!Value::from(1.5).is_null());
    }

    #[test]
    fn set_on_null_creates_object() {
        let mut v = Value::Null;
        assert!(v.set("k", 1));
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(1));
        let mut s = Value::from("x");
        assert!(!s.set("k", 1));
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Value::from(Some(5i64)), Value::from(5));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }
}
