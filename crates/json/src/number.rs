//! JSON number semantics.
//!
//! Chronos results mix integer counts (operations executed, thread counts)
//! with floating-point measurements (latencies, throughput). To avoid silent
//! precision loss on large counters, integers and floats are kept distinct:
//! a number parsed without a fraction or exponent stays an `i64` as long as
//! it fits.

use std::cmp::Ordering;
use std::fmt;

/// A JSON number: either an exact 64-bit integer or an IEEE double.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits in `i64` exactly.
    Int(i64),
    /// Any other finite double. (JSON has no NaN/Infinity; constructors
    /// normalize non-finite input to null at the [`Value`](crate::Value)
    /// level.)
    Float(f64),
}

impl Number {
    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `u64` if exactly representable and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// True when the number is stored as an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.partial_cmp(b),
            _ => self.as_f64().partial_cmp(&other.as_f64()),
        }
    }
}

impl Number {
    /// Renders the canonical JSON form into a stack buffer — the
    /// serializer hot path, with no heap allocation.
    pub(crate) fn render(&self, buf: &mut ShortBuf) {
        use fmt::Write;
        match *self {
            Number::Int(i) => {
                let _ = write!(buf, "{i}");
            }
            Number::Float(v) => {
                // `{}` on f64 never prints NaN/inf here (constructors
                // forbid them) and prints shortest round-trip form.
                let _ = write!(buf, "{v}");
                // Ensure a decimal marker, checked in place on the bytes
                // just written, so the value re-parses as a float.
                let needs_marker = !buf.as_str().bytes().any(|b| matches!(b, b'.' | b'e' | b'E'));
                if needs_marker {
                    let _ = buf.write_str(".0");
                }
            }
        }
    }

    /// Appends the canonical JSON rendering to `out` without allocating.
    pub fn write_into(&self, out: &mut String) {
        let mut buf = ShortBuf::new();
        self.render(&mut buf);
        out.push_str(buf.as_str());
    }
}

/// A stack buffer for number rendering. `f64`'s `Display` never uses
/// scientific notation, so the longest output is a subnormal's full
/// decimal expansion (sign + `0.` + 307 leading zeros + 17 significant
/// digits = 327 bytes); the capacity leaves headroom beyond that.
pub(crate) struct ShortBuf {
    bytes: [u8; 352],
    len: usize,
}

impl ShortBuf {
    pub(crate) fn new() -> Self {
        ShortBuf { bytes: [0; 352], len: 0 }
    }

    pub(crate) fn as_str(&self) -> &str {
        // Only `fmt::Write` appends here, so the contents are valid UTF-8
        // (and in practice pure ASCII).
        std::str::from_utf8(&self.bytes[..self.len]).expect("number rendering is ascii")
    }
}

impl fmt::Write for ShortBuf {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let end = self.len + s.len();
        if end > self.bytes.len() {
            return Err(fmt::Error);
        }
        self.bytes[self.len..end].copy_from_slice(s.as_bytes());
        self.len = end;
        Ok(())
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = ShortBuf::new();
        self.render(&mut buf);
        f.write_str(buf.as_str())
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        let n = Number::Int(42);
        assert_eq!(n.as_i64(), Some(42));
        assert_eq!(n.as_u64(), Some(42));
        assert_eq!(n.as_f64(), 42.0);
        assert!(n.is_int());
    }

    #[test]
    fn negative_int_has_no_u64() {
        assert_eq!(Number::Int(-1).as_u64(), None);
        assert_eq!(Number::Int(-1).as_i64(), Some(-1));
    }

    #[test]
    fn whole_float_converts_to_int() {
        assert_eq!(Number::Float(7.0).as_i64(), Some(7));
        assert_eq!(Number::Float(7.5).as_i64(), None);
        assert_eq!(Number::Float(1e30).as_i64(), None);
    }

    #[test]
    fn display_int_vs_float() {
        assert_eq!(Number::Int(5).to_string(), "5");
        assert_eq!(Number::Float(5.0).to_string(), "5.0");
        assert_eq!(Number::Float(2.5).to_string(), "2.5");
        assert_eq!(Number::Int(i64::MIN).to_string(), "-9223372036854775808");
    }

    #[test]
    fn write_into_appends_without_marker_damage() {
        let mut out = String::from("x=");
        Number::Float(5.0).write_into(&mut out);
        out.push(',');
        Number::Float(2.5).write_into(&mut out);
        out.push(',');
        Number::Int(i64::MIN).write_into(&mut out);
        assert_eq!(out, "x=5.0,2.5,-9223372036854775808");
    }

    #[test]
    fn extreme_floats_render_in_full() {
        // Rust's f64 Display expands these fully (no exponent), which
        // must fit the render buffer and keep a decimal marker.
        for v in [f64::MAX, -f64::MAX, f64::MIN_POSITIVE, 5e-324, 1e300, -1e300] {
            let mut out = String::new();
            Number::Float(v).write_into(&mut out);
            assert!(
                out.contains('.') || out.contains(['e', 'E']),
                "missing decimal marker in {out:?}"
            );
            assert_eq!(out.parse::<f64>().unwrap(), v, "did not round-trip: {out:?}");
        }
    }

    #[test]
    fn cross_type_equality() {
        assert_eq!(Number::Int(3), Number::Float(3.0));
        assert_ne!(Number::Int(3), Number::Float(3.5));
    }

    #[test]
    fn ordering() {
        assert!(Number::Int(2) < Number::Float(2.5));
        assert!(Number::Float(-1.0) < Number::Int(0));
    }
}
