//! RFC 6901 JSON Pointer lookup.
//!
//! The Chronos analysis layer addresses measurements inside result documents
//! with pointers like `/metrics/latency/p99`; agents use them to declare
//! which fields a chart should plot.

use crate::value::Value;

impl Value {
    /// Resolves an RFC 6901 JSON Pointer against this value.
    ///
    /// The empty string resolves to the value itself. Tokens are separated by
    /// `/`; `~1` unescapes to `/` and `~0` to `~`. Array tokens must be
    /// canonical base-10 indexes (no leading zeros, no `-`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for raw in pointer[1..].split('/') {
            let token = unescape(raw);
            current = match current {
                Value::Object(map) => map.get(&token)?,
                Value::Array(items) => items.get(parse_index(&token)?)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// Mutable variant of [`Value::pointer`].
    pub fn pointer_mut(&mut self, pointer: &str) -> Option<&mut Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for raw in pointer[1..].split('/') {
            let token = unescape(raw);
            current = match current {
                Value::Object(map) => map.get_mut(&token)?,
                Value::Array(items) => {
                    let idx = parse_index(&token)?;
                    items.get_mut(idx)?
                }
                _ => return None,
            };
        }
        Some(current)
    }
}

fn unescape(token: &str) -> String {
    if !token.contains('~') {
        return token.to_string();
    }
    token.replace("~1", "/").replace("~0", "~")
}

fn parse_index(token: &str) -> Option<usize> {
    if token.is_empty() || (token.len() > 1 && token.starts_with('0')) {
        return None;
    }
    token.parse().ok()
}

#[cfg(test)]
mod tests {
    use crate::{parse, Value};

    fn doc() -> Value {
        // The RFC 6901 example document.
        parse(
            r#"{
            "foo": ["bar", "baz"],
            "": 0,
            "a/b": 1,
            "c%d": 2,
            "e^f": 3,
            "g|h": 4,
            "i\\j": 5,
            "k\"l": 6,
            " ": 7,
            "m~n": 8
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn rfc6901_examples() {
        let d = doc();
        assert_eq!(d.pointer(""), Some(&d));
        assert_eq!(d.pointer("/foo/0").and_then(Value::as_str), Some("bar"));
        assert_eq!(d.pointer("/").and_then(Value::as_i64), Some(0));
        assert_eq!(d.pointer("/a~1b").and_then(Value::as_i64), Some(1));
        assert_eq!(d.pointer("/c%d").and_then(Value::as_i64), Some(2));
        assert_eq!(d.pointer("/i\\j").and_then(Value::as_i64), Some(5));
        assert_eq!(d.pointer("/ ").and_then(Value::as_i64), Some(7));
        assert_eq!(d.pointer("/m~0n").and_then(Value::as_i64), Some(8));
    }

    #[test]
    fn missing_paths_return_none() {
        let d = doc();
        assert_eq!(d.pointer("/nope"), None);
        assert_eq!(d.pointer("/foo/7"), None);
        assert_eq!(d.pointer("/foo/0/deeper"), None);
        assert_eq!(d.pointer("no-slash"), None);
    }

    #[test]
    fn array_indexes_must_be_canonical() {
        let d = doc();
        assert_eq!(d.pointer("/foo/00"), None);
        assert_eq!(d.pointer("/foo/-"), None);
        assert_eq!(d.pointer("/foo/1").and_then(Value::as_str), Some("baz"));
    }

    #[test]
    fn pointer_mut_allows_updates() {
        let mut d = doc();
        *d.pointer_mut("/foo/0").unwrap() = Value::from("patched");
        assert_eq!(d.pointer("/foo/0").and_then(Value::as_str), Some("patched"));
        assert!(d.pointer_mut("/missing").is_none());
    }
}
