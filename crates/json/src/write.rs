//! Compact and pretty JSON writers.

use crate::value::Value;

/// Serializes `value` as compact JSON (no whitespace).
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes `value` as pretty JSON with two-space indentation.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Writes a JSON string literal, escaping per RFC 8259.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{arr, obj, parse, Value};

    #[test]
    fn compact_output() {
        let v = obj! { "a" => 1, "b" => arr![true, Value::Null], "c" => "x\ny" };
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\ny"}"#);
    }

    #[test]
    fn pretty_output() {
        let v = obj! { "a" => 1, "b" => arr![2] };
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v = obj! { "a" => obj! {}, "b" => arr![] };
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": {},\n  \"b\": []\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::from("\u{0001}\u{001F}");
        assert_eq!(v.to_string(), "\"\\u0001\\u001f\"");
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::from("héllo 😀");
        assert_eq!(v.to_string(), "\"héllo 😀\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Value::from(2.0);
        let reparsed = parse(&v.to_string()).unwrap();
        assert!(matches!(reparsed, Value::Number(crate::Number::Float(_))));
    }

    #[test]
    fn compact_roundtrips() {
        let docs = [
            r#"{"jobs":[{"id":"j1","state":"finished","metrics":{"tp":1234.5,"p99":0.75}}]}"#,
            r#"[[[]],{},{"":""},-0.5,1e-7]"#,
            "\"\\u0000\"",
        ];
        for doc in docs {
            let v = parse(doc).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "roundtrip failed for {doc}");
            assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
        }
    }
}
