//! Compact and pretty JSON writers.
//!
//! Serialization sits on the control-plane hot path twice over: every WAL
//! append frames a document, and every HTTP response renders one. The
//! writer is therefore allocation-free past the output buffer itself:
//! one generic core drives three sinks (append to a caller-owned
//! `String`, stream to `io::Write`, or feed a `fmt::Formatter`), strings
//! without escapes are copied in one bulk `memcpy` instead of
//! char-by-char, and numbers render through a stack buffer rather than
//! `format!` temporaries.

use std::io;

use crate::number::ShortBuf;
use crate::value::Value;

/// Serializes `value` as compact JSON (no whitespace).
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_into(&mut out, value);
    out
}

/// Serializes `value` as pretty JSON with two-space indentation.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty_into(&mut out, value);
    out
}

/// Appends compact JSON for `value` to `out`, reusing its capacity.
///
/// This is the hot-path entry point: callers that serialize in a loop
/// (WAL appends, response bodies) keep one buffer and `clear()` it
/// between documents, so steady state performs no allocations at all.
pub fn write_into(out: &mut String, value: &Value) {
    let mut sink = StringSink(out);
    match write_value(&mut sink, value, None, 0) {
        Ok(()) => {}
        Err(never) => match never {},
    }
}

/// Appends pretty JSON for `value` to `out`, reusing its capacity.
pub fn write_pretty_into(out: &mut String, value: &Value) {
    let mut sink = StringSink(out);
    match write_value(&mut sink, value, Some(2), 0) {
        Ok(()) => {}
        Err(never) => match never {},
    }
}

/// Streams compact JSON for `value` to `writer` without building an
/// intermediate `String`.
///
/// Emission happens in many small pieces; hand in a `Vec<u8>`, a
/// `BufWriter`, or another buffered sink rather than a raw file or
/// socket.
pub fn write_to<W: io::Write + ?Sized>(writer: &mut W, value: &Value) -> io::Result<()> {
    write_value(&mut IoSink(writer), value, None, 0)
}

/// Drives `value` into a `fmt::Write` sink (how `Display` avoids
/// allocating a full intermediate rendering).
pub(crate) fn write_fmt(f: &mut dyn std::fmt::Write, value: &Value) -> std::fmt::Result {
    write_value(&mut FmtSink(f), value, None, 0)
}

/// Output abstraction for the single writer core. Only `put_str` is
/// required; everything the writer emits is valid UTF-8 text.
trait Sink {
    type Error;
    fn put_str(&mut self, s: &str) -> Result<(), Self::Error>;
}

/// Infallible append to a caller-owned `String`.
struct StringSink<'a>(&'a mut String);

impl Sink for StringSink<'_> {
    type Error = std::convert::Infallible;
    #[inline]
    fn put_str(&mut self, s: &str) -> Result<(), Self::Error> {
        self.0.push_str(s);
        Ok(())
    }
}

/// Streaming to byte sinks (files, sockets, `Vec<u8>`).
struct IoSink<'a, W: io::Write + ?Sized>(&'a mut W);

impl<W: io::Write + ?Sized> Sink for IoSink<'_, W> {
    type Error = io::Error;
    #[inline]
    fn put_str(&mut self, s: &str) -> Result<(), Self::Error> {
        self.0.write_all(s.as_bytes())
    }
}

/// Feeding a `fmt::Formatter` (the `Display` impl).
struct FmtSink<'a>(&'a mut dyn std::fmt::Write);

impl Sink for FmtSink<'_> {
    type Error = std::fmt::Error;
    #[inline]
    fn put_str(&mut self, s: &str) -> Result<(), Self::Error> {
        self.0.write_str(s)
    }
}

fn write_value<S: Sink>(
    sink: &mut S,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), S::Error> {
    match value {
        Value::Null => sink.put_str("null"),
        Value::Bool(true) => sink.put_str("true"),
        Value::Bool(false) => sink.put_str("false"),
        Value::Number(n) => {
            let mut buf = ShortBuf::new();
            n.render(&mut buf);
            sink.put_str(buf.as_str())
        }
        Value::String(s) => write_json_string(sink, s),
        Value::Array(items) => {
            if items.is_empty() {
                return sink.put_str("[]");
            }
            sink.put_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    sink.put_str(",")?;
                }
                newline_indent(sink, indent, level + 1)?;
                write_value(sink, item, indent, level + 1)?;
            }
            newline_indent(sink, indent, level)?;
            sink.put_str("]")
        }
        Value::Object(map) => {
            if map.is_empty() {
                return sink.put_str("{}");
            }
            sink.put_str("{")?;
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    sink.put_str(",")?;
                }
                newline_indent(sink, indent, level + 1)?;
                write_json_string(sink, key)?;
                sink.put_str(if indent.is_some() { ": " } else { ":" })?;
                write_value(sink, val, indent, level + 1)?;
            }
            newline_indent(sink, indent, level)?;
            sink.put_str("}")
        }
    }
}

fn newline_indent<S: Sink>(
    sink: &mut S,
    indent: Option<usize>,
    level: usize,
) -> Result<(), S::Error> {
    const SPACES: &str = "                                ";
    if let Some(width) = indent {
        sink.put_str("\n")?;
        let mut remaining = width * level;
        while remaining > 0 {
            let chunk = remaining.min(SPACES.len());
            sink.put_str(&SPACES[..chunk])?;
            remaining -= chunk;
        }
    }
    Ok(())
}

/// True for bytes that cannot appear verbatim inside a JSON string.
/// Multi-byte UTF-8 units are all `>= 0x80` and pass through untouched,
/// so the scan can work on raw bytes.
#[inline]
fn needs_escape(b: u8) -> bool {
    b < 0x20 || b == b'"' || b == b'\\'
}

fn write_json_string<S: Sink>(sink: &mut S, s: &str) -> Result<(), S::Error> {
    sink.put_str("\"")?;
    let bytes = s.as_bytes();
    // Bulk-copy maximal escape-free runs; the common case (IDs, kinds,
    // field names, most payloads) is a single run covering the whole
    // string, i.e. one memcpy instead of a per-char loop.
    let mut run_start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if needs_escape(b) {
            if run_start < i {
                sink.put_str(&s[run_start..i])?;
            }
            run_start = i + 1;
            match b {
                b'"' => sink.put_str("\\\"")?,
                b'\\' => sink.put_str("\\\\")?,
                b'\n' => sink.put_str("\\n")?,
                b'\r' => sink.put_str("\\r")?,
                b'\t' => sink.put_str("\\t")?,
                0x08 => sink.put_str("\\b")?,
                0x0C => sink.put_str("\\f")?,
                b => {
                    const HEX: &[u8; 16] = b"0123456789abcdef";
                    let esc = [
                        b'\\',
                        b'u',
                        b'0',
                        b'0',
                        HEX[usize::from(b >> 4)],
                        HEX[usize::from(b & 0xF)],
                    ];
                    // The buffer is pure ASCII by construction.
                    sink.put_str(std::str::from_utf8(&esc).expect("ascii escape"))?;
                }
            }
        }
    }
    if run_start < bytes.len() {
        sink.put_str(&s[run_start..])?;
    }
    sink.put_str("\"")
}

/// Appends a JSON string literal (escaped per RFC 8259) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    let mut sink = StringSink(out);
    match write_json_string(&mut sink, s) {
        Ok(()) => {}
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use crate::{arr, obj, parse, Value};

    #[test]
    fn compact_output() {
        let v = obj! { "a" => 1, "b" => arr![true, Value::Null], "c" => "x\ny" };
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\ny"}"#);
    }

    #[test]
    fn pretty_output() {
        let v = obj! { "a" => 1, "b" => arr![2] };
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v = obj! { "a" => obj! {}, "b" => arr![] };
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": {},\n  \"b\": []\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::from("\u{0001}\u{001F}");
        assert_eq!(v.to_string(), "\"\\u0001\\u001f\"");
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::from("héllo 😀");
        assert_eq!(v.to_string(), "\"héllo 😀\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Value::from(2.0);
        let reparsed = parse(&v.to_string()).unwrap();
        assert!(matches!(reparsed, Value::Number(crate::Number::Float(_))));
    }

    #[test]
    fn compact_roundtrips() {
        let docs = [
            r#"{"jobs":[{"id":"j1","state":"finished","metrics":{"tp":1234.5,"p99":0.75}}]}"#,
            r#"[[[]],{},{"":""},-0.5,1e-7]"#,
            "\"\\u0000\"",
        ];
        for doc in docs {
            let v = parse(doc).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "roundtrip failed for {doc}");
            assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
        }
    }

    #[test]
    fn write_into_appends_and_reuses_capacity() {
        let v = obj! { "a" => 1 };
        let mut buf = String::from("prefix:");
        v.write_into(&mut buf);
        assert_eq!(buf, r#"prefix:{"a":1}"#);

        buf.clear();
        let capacity = buf.capacity();
        v.write_into(&mut buf);
        assert_eq!(buf, r#"{"a":1}"#);
        assert_eq!(buf.capacity(), capacity, "reuse must not reallocate");
    }

    #[test]
    fn write_to_streams_identical_bytes() {
        let v = obj! {
            "name" => "esc\"aped\\str\ting",
            "nums" => arr![1, -2.5, 1e300],
            "nested" => obj! { "deep" => arr![obj! {}, Value::Null] },
        };
        let mut bytes = Vec::new();
        v.write_to(&mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), v.to_string());
    }

    #[test]
    fn display_matches_to_string() {
        let v = obj! { "k" => arr!["v", 1.5, false] };
        assert_eq!(format!("{v}"), v.to_string());
    }

    #[test]
    fn escape_free_fast_path_handles_boundaries() {
        // Escapes at the start, middle, end, back-to-back, and none.
        for s in ["\"abc", "ab\"cd", "abc\"", "a\\\"\nb", "plain ascii", "", "😀é"] {
            let v = Value::from(s);
            let parsed = parse(&v.to_string()).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }
}
