//! Strict recursive-descent JSON parser.
//!
//! Accepts exactly RFC 8259 JSON: no comments, no trailing commas, no
//! unquoted keys, no NaN/Infinity literals. The parser enforces a nesting
//! depth limit so untrusted result uploads cannot overflow the stack of the
//! Chronos Control server.

use crate::error::{ParseError, ParseErrorKind};
use crate::number::Number;
use crate::value::{Map, Value};

/// Default maximum nesting depth for arrays/objects.
pub const DEFAULT_DEPTH_LIMIT: usize = 128;

/// Parses a complete JSON document with the default depth limit.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    parse_with_limit(input, DEFAULT_DEPTH_LIMIT)
}

/// Parses a complete JSON document with an explicit depth limit.
pub fn parse_with_limit(input: &str, depth_limit: usize) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth_limit };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error(ParseErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth_limit: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, kind: ParseErrorKind) -> ParseError {
        self.error_at(kind, self.pos)
    }

    fn error_at(&self, kind: ParseErrorKind, offset: usize) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..offset.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError { kind, offset, line, column: col }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.error_at(ParseErrorKind::UnexpectedChar(b as char), self.pos - 1)),
            None => Err(self.error(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > self.depth_limit {
            return Err(self.error(ParseErrorKind::TooDeep(self.depth_limit)));
        }
        match self.peek() {
            None => Err(self.error(ParseErrorKind::UnexpectedEof)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(ParseErrorKind::UnexpectedChar(b as char))),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error_at(ParseErrorKind::BadLiteral, start))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(b) => {
                    return Err(
                        self.error_at(ParseErrorKind::UnexpectedChar(b as char), self.pos - 1)
                    )
                }
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(match self.peek() {
                    Some(b) => self.error(ParseErrorKind::UnexpectedChar(b as char)),
                    None => self.error(ParseErrorKind::UnexpectedEof),
                });
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                Some(b) => {
                    return Err(
                        self.error_at(ParseErrorKind::UnexpectedChar(b as char), self.pos - 1)
                    )
                }
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is &str, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.parse_escape(&mut out)?,
                Some(b) if b < 0x20 => {
                    return Err(self.error_at(ParseErrorKind::ControlChar(b), self.pos - 1))
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let at = self.pos - 1;
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.parse_hex4(at)?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uXXXX low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.error_at(ParseErrorKind::BadSurrogate, at));
                    }
                    let lo = self.parse_hex4(at)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.error_at(ParseErrorKind::BadSurrogate, at));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    out.push(char::from_u32(cp).expect("valid supplementary code point"));
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error_at(ParseErrorKind::BadSurrogate, at));
                } else {
                    out.push(char::from_u32(hi).expect("valid BMP code point"));
                }
            }
            Some(_) => return Err(self.error_at(ParseErrorKind::BadEscape, at)),
            None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
        }
        Ok(())
    }

    fn parse_hex4(&mut self, err_at: usize) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.error(ParseErrorKind::UnexpectedEof))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error_at(ParseErrorKind::BadEscape, err_at))?;
            v = (v << 4) | digit;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by digits.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error_at(ParseErrorKind::BadNumber, start)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error_at(ParseErrorKind::BadNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error_at(ParseErrorKind::BadNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            // Integer out of i64 range: fall through to f64.
        }
        let f: f64 = text.parse().map_err(|_| self.error_at(ParseErrorKind::BadNumber, start))?;
        if f.is_finite() {
            Ok(Value::Number(Number::Float(f)))
        } else {
            Err(self.error_at(ParseErrorKind::BadNumber, start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &str) -> Value {
        parse(s).unwrap_or_else(|e| panic!("{s:?} should parse: {e}"))
    }

    fn err_kind(s: &str) -> ParseErrorKind {
        parse(s).expect_err(&format!("{s:?} should fail")).kind
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(ok("null"), Value::Null);
        assert_eq!(ok("true"), Value::Bool(true));
        assert_eq!(ok("false"), Value::Bool(false));
        assert_eq!(ok("0"), Value::from(0));
        assert_eq!(ok("-12"), Value::from(-12));
        assert_eq!(ok("3.25"), Value::from(3.25));
        assert_eq!(ok("1e3"), Value::from(1000.0));
        assert_eq!(ok("2E-2"), Value::from(0.02));
        assert_eq!(ok("\"hi\""), Value::from("hi"));
    }

    #[test]
    fn integer_vs_float_detection() {
        assert!(matches!(ok("7"), Value::Number(Number::Int(7))));
        assert!(matches!(ok("7.0"), Value::Number(Number::Float(_))));
        assert!(matches!(ok("7e0"), Value::Number(Number::Float(_))));
    }

    #[test]
    fn big_integers_degrade_to_float() {
        assert_eq!(ok("9223372036854775807").as_i64(), Some(i64::MAX));
        let too_big = ok("9223372036854775808");
        assert!(matches!(too_big, Value::Number(Number::Float(_))));
    }

    #[test]
    fn parses_containers() {
        let v = ok(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#);
        assert_eq!(v.pointer("/a/2/b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
        assert_eq!(ok("[]"), Value::Array(vec![]));
        assert_eq!(ok("{}"), Value::Object(Map::new()));
        assert_eq!(ok(" [ 1 , 2 ] "), Value::Array(vec![Value::from(1), Value::from(2)]));
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            ok(r#""\" \\ \/ \b \f \n \r \t""#).as_str().unwrap(),
            "\" \\ / \u{8} \u{c} \n \r \t"
        );
        assert_eq!(ok(r#""A""#).as_str().unwrap(), "A");
        assert_eq!(ok(r#""é""#).as_str().unwrap(), "é");
        assert_eq!(ok(r#""😀""#).as_str().unwrap(), "😀");
    }

    #[test]
    fn parses_raw_utf8() {
        assert_eq!(ok("\"héllo wörld 😀\"").as_str().unwrap(), "héllo wörld 😀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(err_kind(""), ParseErrorKind::UnexpectedEof);
        assert_eq!(err_kind("tru"), ParseErrorKind::BadLiteral);
        assert_eq!(err_kind("nul"), ParseErrorKind::BadLiteral);
        assert_eq!(err_kind("01"), ParseErrorKind::TrailingData);
        assert_eq!(err_kind("1."), ParseErrorKind::BadNumber);
        assert_eq!(err_kind("-"), ParseErrorKind::BadNumber);
        assert_eq!(err_kind("1e"), ParseErrorKind::BadNumber);
        assert_eq!(err_kind("[1,]"), ParseErrorKind::UnexpectedChar(']'));
        assert_eq!(err_kind("[1 2]"), ParseErrorKind::UnexpectedChar('2'));
        assert_eq!(err_kind("{\"a\" 1}"), ParseErrorKind::UnexpectedChar('1'));
        assert_eq!(err_kind("{a: 1}"), ParseErrorKind::UnexpectedChar('a'));
        assert_eq!(err_kind("\"abc"), ParseErrorKind::UnexpectedEof);
        assert_eq!(err_kind("[1, 2"), ParseErrorKind::UnexpectedEof);
        assert_eq!(err_kind("1 2"), ParseErrorKind::TrailingData);
        assert_eq!(err_kind(r#""\q""#), ParseErrorKind::BadEscape);
        assert_eq!(err_kind(r#""\uZZZZ""#), ParseErrorKind::BadEscape);
        assert_eq!(err_kind(r#""\uD800""#), ParseErrorKind::BadSurrogate);
        assert_eq!(err_kind(r#""\uDC00""#), ParseErrorKind::BadSurrogate);
        assert_eq!(err_kind("\"a\x01b\""), ParseErrorKind::ControlChar(1));
    }

    #[test]
    fn reports_positions() {
        let e = parse("{\n  \"a\": x\n}").unwrap_err();
        assert_eq!((e.line, e.column), (2, 8));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(matches!(parse(&deep).unwrap_err().kind, ParseErrorKind::TooDeep(_)));
        assert!(parse_with_limit(&deep, 300).is_ok());
        let shallow = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&shallow).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_last_value() {
        let v = ok(r#"{"a": 1, "a": 2}"#);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }
}
