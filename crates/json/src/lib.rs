//! Self-contained JSON support for Chronos.
//!
//! In Chronos, JSON is load-bearing: every REST request and response body is
//! JSON, every job result is "a JSON and a zip file" (paper, §2.1), system
//! definitions and parameter schemas are JSON documents, and the metadata
//! store persists its log in JSON. This crate implements the whole format
//! from scratch so the toolkit has no external serialization dependency:
//!
//! * [`Value`] — the document model (null, bool, number, string, array,
//!   object with stable insertion order).
//! * [`parse`](fn@parse) — a strict recursive-descent parser with a
//!   configurable depth limit and precise error positions.
//! * [`Value::to_string`] / [`Value::to_pretty_string`] — compact and
//!   indented writers that round-trip every value.
//! * [`Value::pointer`] — RFC 6901 JSON-Pointer lookup used by the analysis
//!   layer to pull series out of result documents.
//!
//! The [`obj!`] and [`arr!`] macros build documents ergonomically:
//!
//! ```
//! use chronos_json::{obj, arr, Value};
//! let doc = obj! {
//!     "system" => "minidoc",
//!     "threads" => 8,
//!     "engines" => arr!["wiredtiger", "mmapv1"],
//! };
//! assert_eq!(doc.pointer("/engines/1").and_then(Value::as_str), Some("mmapv1"));
//! ```

mod error;
mod number;
mod parse;
mod path;
mod value;
mod write;

pub use error::{ParseError, ParseErrorKind};
pub use number::Number;
pub use parse::{parse, parse_with_limit, DEFAULT_DEPTH_LIMIT};
pub use value::{Map, Value};
pub use write::{write_into, write_pretty_into, write_string, write_to};

/// Builds a [`Value::Object`] from `key => value` pairs.
#[macro_export]
macro_rules! obj {
    () => { $crate::Value::Object($crate::Map::new()) };
    ($($key:expr => $val:expr),+ $(,)?) => {{
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )+
        $crate::Value::Object(map)
    }};
}

/// Builds a [`Value::Array`] from a list of values.
#[macro_export]
macro_rules! arr {
    () => { $crate::Value::Array(Vec::new()) };
    ($($val:expr),+ $(,)?) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($val) ),+ ])
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::Value;

    #[test]
    fn obj_macro_builds_object() {
        let v = obj! { "a" => 1, "b" => true, "c" => "x" };
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn arr_macro_builds_array() {
        let v = arr![1, 2, 3];
        assert_eq!(v.as_array().map(Vec::len), Some(3));
    }

    #[test]
    fn empty_macros() {
        assert_eq!(obj! {}.to_string(), "{}");
        assert_eq!(arr![].to_string(), "[]");
    }

    #[test]
    fn nested_macros() {
        let v = obj! { "rows" => arr![obj! {"x" => 1}, obj! {"x" => 2}] };
        assert_eq!(v.pointer("/rows/1/x").and_then(Value::as_i64), Some(2));
    }
}
