//! Property tests: both storage engines must behave identically to a
//! reference model (a `BTreeMap`) under arbitrary operation sequences —
//! the engines differ in *how* they store, never in *what* they store.

use std::collections::BTreeMap;

use chronos_json::obj;
use minidoc::{Database, DbConfig, EngineKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, usize),
    Update(u8, usize),
    Upsert(u8, usize),
    Delete(u8),
    Get(u8),
    Scan(u8, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0..512usize).prop_map(|(k, n)| Op::Insert(k, n)),
        (any::<u8>(), 0..512usize).prop_map(|(k, n)| Op::Update(k, n)),
        (any::<u8>(), 0..512usize).prop_map(|(k, n)| Op::Upsert(k, n)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        (any::<u8>(), 1..20usize).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn payload(n: usize) -> chronos_json::Value {
    obj! {"data" => "v".repeat(n), "len" => n}
}

fn run_against_model(db: &Database, ops: &[Op]) {
    let engine = db.engine_kind();
    let coll = db.collection("t");
    let mut model: BTreeMap<String, usize> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, n) => {
                let key = format!("key{k:03}");
                let result = coll.insert(&key, &payload(*n));
                if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                    result.unwrap();
                    e.insert(*n);
                } else {
                    assert!(result.is_err(), "{engine}: dup insert must fail");
                }
            }
            Op::Update(k, n) => {
                let key = format!("key{k:03}");
                let result = coll.update(&key, &payload(*n));
                if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(key) {
                    result.unwrap();
                    e.insert(*n);
                } else {
                    assert!(result.is_err(), "{engine}: update of missing must fail");
                }
            }
            Op::Upsert(k, n) => {
                let key = format!("key{k:03}");
                coll.upsert(&key, &payload(*n)).unwrap();
                model.insert(key, *n);
            }
            Op::Delete(k) => {
                let key = format!("key{k:03}");
                let existed = coll.delete(&key).unwrap();
                assert_eq!(existed, model.remove(&key).is_some(), "{engine}: delete {key}");
            }
            Op::Get(k) => {
                let key = format!("key{k:03}");
                let found = coll.get(&key).unwrap();
                match model.get(&key) {
                    Some(&n) => assert_eq!(found.unwrap(), payload(n), "{engine}: get {key}"),
                    None => assert!(found.is_none(), "{engine}: phantom {key}"),
                }
            }
            Op::Scan(k, limit) => {
                let start = format!("key{k:03}");
                let rows = coll.scan(&start, *limit).unwrap();
                let expected: Vec<(String, usize)> =
                    model.range(start..).take(*limit).map(|(k, &n)| (k.clone(), n)).collect();
                assert_eq!(rows.len(), expected.len(), "{engine}: scan length");
                for ((got_k, got_v), (want_k, want_n)) in rows.iter().zip(&expected) {
                    assert_eq!(got_k, want_k, "{engine}: scan key order");
                    assert_eq!(got_v, &payload(*want_n), "{engine}: scan value");
                }
            }
        }
    }
    assert_eq!(coll.count(), model.len() as u64, "{engine}: final count");
    assert_eq!(db.stats().documents, model.len() as u64, "{engine}: stats documents");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wiredtiger_matches_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let db = Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap();
        run_against_model(&db, &ops);
    }

    #[test]
    fn mmapv1_matches_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let db = Database::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap();
        run_against_model(&db, &ops);
    }

    #[test]
    fn durable_wiredtiger_recovers_to_model(ops in prop::collection::vec(arb_op(), 1..40)) {
        let dir = std::env::temp_dir().join(format!(
            "minidoc-prop-wt-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let config = DbConfig::at_dir(EngineKind::WiredTiger, &dir);
        let mut model: BTreeMap<String, usize> = BTreeMap::new();
        {
            let db = Database::open(config.clone()).unwrap();
            let coll = db.collection("t");
            for op in &ops {
                if let Op::Upsert(k, n) = op {
                    let key = format!("key{k:03}");
                    coll.upsert(&key, &payload(*n)).unwrap();
                    model.insert(key, *n);
                }
            }
        }
        {
            let db = Database::open(config).unwrap();
            let coll = db.collection("t");
            for (key, &n) in &model {
                prop_assert_eq!(coll.get(key).unwrap().unwrap(), payload(n));
            }
            prop_assert_eq!(coll.count(), model.len() as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
