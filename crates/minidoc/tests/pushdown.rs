//! Predicate pushdown: for arbitrary documents and filters, evaluating a
//! `Filter` directly on the encoded bytes (`doc::matches_encoded`) must
//! agree with the reference path — `doc::decode` followed by
//! `Filter::matches` — and `doc::decode_path` must agree with navigating
//! the decoded document.

use chronos_json::{Map, Value};
use minidoc::doc;
use minidoc::Filter;
use proptest::prelude::*;

/// Splitmix64: a tiny deterministic generator so documents and filters are
/// reproducible functions of one proptest-supplied seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const FIELD_NAMES: [&str; 6] = ["a", "b", "c", "tags", "nested", "x"];
const STRINGS: [&str; 5] = ["", "basel", "bern", "zürich", "aa"];

fn scalar(rng: &mut Rng) -> Value {
    match rng.below(7) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 1),
        2 => Value::from(rng.below(10) as i64 - 5),
        3 => Value::from((rng.below(9) as f64 - 4.0) / 2.0),
        // Past 2^53: distinguishes exact i64 equality from f64 equality.
        4 => Value::from(i64::MAX - rng.below(3) as i64),
        5 => Value::from(STRINGS[rng.below(STRINGS.len() as u64) as usize]),
        _ => Value::from(rng.below(1000) as i64 * 10),
    }
}

fn value(rng: &mut Rng, depth: u32) -> Value {
    if depth == 0 || rng.below(3) > 0 {
        return scalar(rng);
    }
    if rng.below(2) == 0 {
        Value::Array((0..rng.below(4)).map(|_| value(rng, depth - 1)).collect())
    } else {
        let n = rng.below(4);
        let mut map = Map::with_capacity(n as usize);
        for i in 0..n {
            map.insert(FIELD_NAMES[(i % 6) as usize].to_string(), value(rng, depth - 1));
        }
        Value::Object(map)
    }
}

fn document(rng: &mut Rng) -> Value {
    let n = 1 + rng.below(5);
    let mut map = Map::with_capacity(n as usize);
    for i in 0..n {
        map.insert(FIELD_NAMES[(i % 6) as usize].to_string(), value(rng, 2));
    }
    Value::Object(map)
}

/// Every dotted path addressing a node of `doc` (array elements included).
fn all_paths(doc: &Value) -> Vec<String> {
    fn walk(value: &Value, prefix: &str, out: &mut Vec<String>) {
        match value {
            Value::Object(map) => {
                for (name, child) in map.iter() {
                    let path = if prefix.is_empty() {
                        name.to_string()
                    } else {
                        format!("{prefix}.{name}")
                    };
                    out.push(path.clone());
                    walk(child, &path, out);
                }
            }
            Value::Array(items) => {
                for (i, child) in items.iter().enumerate() {
                    let path = format!("{prefix}.{i}");
                    out.push(path.clone());
                    walk(child, &path, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(doc, "", &mut out);
    out
}

/// Reference path navigation over the decoded document (same rules as the
/// filter's lookup: dotted object fields, numeric array indexes).
fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut current = doc;
    for part in path.split('.') {
        current = match current {
            Value::Object(map) => map.get(part)?,
            Value::Array(items) => items.get(part.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(current)
}

fn pick_path(rng: &mut Rng, paths: &[String]) -> String {
    // Mostly real paths; sometimes a missing or non-sensical one.
    if !paths.is_empty() && rng.below(4) > 0 {
        paths[rng.below(paths.len() as u64) as usize].clone()
    } else {
        ["missing", "a.zz", "tags.9", "a.b.c.d", ""][rng.below(5) as usize].to_string()
    }
}

fn operand(rng: &mut Rng, doc: &Value, path: &str) -> Value {
    // Mostly the actual value at the path (or something near it), so
    // equality and range boundaries are actually exercised.
    match rng.below(4) {
        0 => scalar(rng),
        1 => lookup(doc, path).cloned().unwrap_or(Value::Null),
        2 => match lookup(doc, path) {
            Some(v) => match v.as_f64() {
                Some(f) => Value::from(f + ((rng.below(3) as f64) - 1.0)),
                None => scalar(rng),
            },
            None => scalar(rng),
        },
        _ => value(rng, 1),
    }
}

fn filter(rng: &mut Rng, doc: &Value, paths: &[String], depth: u32) -> Filter {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 7 } else { 10 }) {
        kind @ 0..=6 => {
            let path = pick_path(rng, paths);
            if kind == 6 {
                return Filter::Exists(path);
            }
            let op = operand(rng, doc, &path);
            match kind {
                0 => Filter::Eq(path, op),
                1 => Filter::Ne(path, op),
                2 => Filter::Gt(path, op),
                3 => Filter::Gte(path, op),
                4 => Filter::Lt(path, op),
                _ => Filter::Lte(path, op),
            }
        }
        7 => {
            Filter::And((0..1 + rng.below(3)).map(|_| filter(rng, doc, paths, depth - 1)).collect())
        }
        8 => {
            Filter::Or((0..1 + rng.below(3)).map(|_| filter(rng, doc, paths, depth - 1)).collect())
        }
        _ => Filter::Not(Box::new(filter(rng, doc, paths, depth - 1))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The encoded-bytes walker and decode-then-match agree on arbitrary
    /// (document, filter) pairs.
    #[test]
    fn walker_agrees_with_decoded_matching(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let doc = document(&mut rng);
        let bytes = doc::encode(&doc).unwrap();
        prop_assert_eq!(doc::decode(&bytes).unwrap(), doc.clone());
        let paths = all_paths(&doc);
        for _ in 0..8 {
            let f = filter(&mut rng, &doc, &paths, 2);
            let expected = f.matches(&doc);
            let got = doc::matches_encoded(&bytes, &f).unwrap();
            prop_assert_eq!(got, expected, "filter {:?} on doc {:?}", f, doc);
        }
    }

    /// `decode_path` extracts exactly the value the decoded document holds
    /// at that path, for both existing and missing paths.
    #[test]
    fn decode_path_agrees_with_navigation(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let doc = document(&mut rng);
        let bytes = doc::encode(&doc).unwrap();
        let paths = all_paths(&doc);
        for _ in 0..8 {
            let path = pick_path(&mut rng, &paths);
            let expected = lookup(&doc, &path).cloned();
            let got = doc::decode_path(&bytes, &path).unwrap();
            prop_assert_eq!(got, expected, "path {:?} in doc {:?}", path, doc);
        }
    }
}
