//! `create_index` racing concurrent writers.
//!
//! The build is foreground: it holds the index-map write lock across the
//! whole backfill, so a writer's index maintenance either runs entirely
//! before the build (its effect is then picked up by the storage scan) or
//! entirely after publication (applied as a delta to the live index). The
//! one survivable artifact is a *stale extra* entry — a writer that
//! observed "no indexes" before the build started may skip removing its
//! old value's entry — which `find`'s residual re-check filters out. These
//! tests assert the query-level guarantee: results through the racy-built
//! index equal the results of a post-hoc rebuild, on both engines.

use std::sync::atomic::{AtomicBool, Ordering};

use chronos_json::obj;
use chronos_util::pool::scoped_indexed;
use minidoc::{Database, DbConfig, EngineKind, Filter};

fn both() -> Vec<Database> {
    vec![
        Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap(),
        Database::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap(),
    ]
}

#[test]
fn racy_index_build_matches_post_hoc_rebuild() {
    for db in both() {
        let coll = db.collection("t");
        for i in 0..400u32 {
            coll.insert(&format!("k{i:04}"), &obj! {"group" => (i % 10) as i64}).unwrap();
        }

        // Thread 0 builds the index while threads 1..4 churn group values
        // and insert/delete keys.
        let done = AtomicBool::new(false);
        scoped_indexed(4, |t| {
            if t == 0 {
                coll.create_index("group").unwrap();
                done.store(true, Ordering::Release);
                return;
            }
            let mut round = 0u32;
            while !done.load(Ordering::Acquire) || round < 5 {
                for i in (t as u32 * 100)..(t as u32 * 100 + 50) {
                    let key = format!("k{i:04}");
                    coll.upsert(&key, &obj! {"group" => ((i + round) % 10) as i64}).unwrap();
                }
                let extra = format!("x{t}-{}", round % 3);
                if round.is_multiple_of(2) {
                    coll.upsert(&extra, &obj! {"group" => (round % 10) as i64}).unwrap();
                } else {
                    coll.delete(&extra).unwrap();
                }
                round += 1;
            }
        });

        // Queries through the racy-built index...
        let queries: Vec<Filter> = (0..10i64)
            .map(|g| Filter::eq("group", g))
            .chain([Filter::gte("group", 5), Filter::lt("group", 3)])
            .collect();
        let racy: Vec<_> = queries.iter().map(|q| coll.find(q).unwrap()).collect();

        // ...must equal queries through an index rebuilt from quiescent data.
        assert!(coll.drop_index("group"));
        coll.create_index("group").unwrap();
        let rebuilt: Vec<_> = queries.iter().map(|q| coll.find(q).unwrap()).collect();

        assert_eq!(racy, rebuilt, "engine {:?}", db.engine_kind());
        // Sanity: the index is actually in use and data survived the churn.
        assert!(racy.iter().map(Vec::len).sum::<usize>() > 0);
        assert_eq!(coll.index_names(), vec!["group"]);
    }
}

#[test]
fn concurrent_create_index_calls_are_idempotent() {
    for db in both() {
        let coll = db.collection("t");
        for i in 0..200u32 {
            coll.insert(&format!("k{i:03}"), &obj! {"v" => (i % 7) as i64}).unwrap();
        }
        scoped_indexed(4, |_| coll.create_index("v").unwrap());
        assert_eq!(coll.index_names(), vec!["v"]);
        for g in 0..7i64 {
            let hits = coll.find(&Filter::eq("v", g)).unwrap();
            assert!(hits.len() >= 28, "group {g}: {}", hits.len());
        }
    }
}
