//! Secondary indexes: `find` through an index must always agree with the
//! unindexed full scan, across both storage engines and arbitrary write
//! sequences.

use std::collections::BTreeMap;

use chronos_json::{obj, Value};
use minidoc::{Database, DbConfig, EngineKind, Filter};
use proptest::prelude::*;

fn both() -> Vec<Database> {
    vec![
        Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap(),
        Database::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap(),
    ]
}

#[test]
fn index_accelerated_find_matches_scan() {
    for db in both() {
        let coll = db.collection("people");
        for i in 0..200u32 {
            coll.insert(
                &format!("p{i:04}"),
                &obj! {"age" => (i % 50) as i64, "city" => if i % 3 == 0 {"basel"} else {"bern"}},
            )
            .unwrap();
        }
        let filter = Filter::and(vec![Filter::eq("city", "basel"), Filter::gte("age", 40)]);
        let unindexed = coll.find(&filter).unwrap();
        coll.create_index("city").unwrap();
        coll.create_index("age").unwrap();
        assert_eq!(coll.index_names(), vec!["age", "city"]);
        let indexed = coll.find(&filter).unwrap();
        assert_eq!(indexed, unindexed, "engine {:?}", db.engine_kind());
        assert!(!indexed.is_empty());
    }
}

#[test]
fn index_stays_current_through_writes() {
    for db in both() {
        let coll = db.collection("t");
        coll.create_index("v").unwrap();
        coll.insert("a", &obj! {"v" => 1}).unwrap();
        coll.insert("b", &obj! {"v" => 2}).unwrap();
        assert_eq!(hit_keys(&coll, &Filter::eq("v", 1)), vec!["a"]);
        // Update moves the document to a different index key.
        coll.update("a", &obj! {"v" => 2}).unwrap();
        assert!(hit_keys(&coll, &Filter::eq("v", 1)).is_empty());
        assert_eq!(hit_keys(&coll, &Filter::eq("v", 2)), vec!["a", "b"]);
        // Upsert of a new key lands in the index.
        coll.upsert("c", &obj! {"v" => 2}).unwrap();
        assert_eq!(hit_keys(&coll, &Filter::eq("v", 2)), vec!["a", "b", "c"]);
        // Delete removes the entry.
        coll.delete("b").unwrap();
        assert_eq!(hit_keys(&coll, &Filter::eq("v", 2)), vec!["a", "c"]);
        // Removing the indexed field on update drops the entry.
        coll.update("c", &obj! {"other" => true}).unwrap();
        assert_eq!(hit_keys(&coll, &Filter::eq("v", 2)), vec!["a"]);
    }
}

#[test]
fn dotted_path_indexes() {
    for db in both() {
        let coll = db.collection("t");
        coll.insert("x", &obj! {"address" => obj! {"zip" => 4051}}).unwrap();
        coll.insert("y", &obj! {"address" => obj! {"zip" => 8001}}).unwrap();
        coll.create_index("address.zip").unwrap();
        assert_eq!(hit_keys(&coll, &Filter::lt("address.zip", 5000)), vec!["x"]);
    }
}

#[test]
fn drop_index_falls_back_to_scan() {
    let db = both().remove(0);
    let coll = db.collection("t");
    coll.insert("k", &obj! {"v" => 7}).unwrap();
    coll.create_index("v").unwrap();
    assert!(coll.drop_index("v"));
    assert!(!coll.drop_index("v"));
    assert_eq!(hit_keys(&coll, &Filter::eq("v", 7)), vec!["k"]);
}

#[test]
fn create_index_is_idempotent_and_backfills() {
    let db = both().remove(0);
    let coll = db.collection("t");
    for i in 0..50 {
        coll.insert(&format!("k{i:02}"), &obj! {"v" => i % 5}).unwrap();
    }
    coll.create_index("v").unwrap();
    coll.create_index("v").unwrap(); // second call is a no-op
    assert_eq!(hit_keys(&coll, &Filter::eq("v", 3)).len(), 10);
}

fn hit_keys(coll: &minidoc::Collection, filter: &Filter) -> Vec<String> {
    coll.find(filter).unwrap().into_iter().map(|(k, _)| k).collect()
}

#[derive(Debug, Clone)]
enum Op {
    Upsert(u8, i64),
    Delete(u8),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Model test: after an arbitrary write sequence, every equality and
    /// range query through the index equals the model's answer.
    #[test]
    fn indexed_queries_match_model(
        ops in prop::collection::vec(
            prop_oneof![
                (any::<u8>(), -20i64..20).prop_map(|(k, v)| Op::Upsert(k, v)),
                any::<u8>().prop_map(Op::Delete),
            ],
            1..60,
        ),
        probe in -20i64..20,
    ) {
        let db = Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap();
        let coll = db.collection("t");
        coll.create_index("v").unwrap();
        let mut model: BTreeMap<String, i64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Upsert(k, v) => {
                    let key = format!("k{k:03}");
                    coll.upsert(&key, &obj! {"v" => *v}).unwrap();
                    model.insert(key, *v);
                }
                Op::Delete(k) => {
                    let key = format!("k{k:03}");
                    coll.delete(&key).unwrap();
                    model.remove(&key);
                }
            }
        }
        let expect_eq: Vec<&String> =
            model.iter().filter(|(_, &v)| v == probe).map(|(k, _)| k).collect();
        let got_eq = hit_keys(&coll, &Filter::eq("v", probe));
        prop_assert_eq!(got_eq.iter().collect::<Vec<_>>(), expect_eq);

        let expect_gt: Vec<&String> =
            model.iter().filter(|(_, &v)| v > probe).map(|(k, _)| k).collect();
        let got_gt = hit_keys(&coll, &Filter::gt("v", probe));
        prop_assert_eq!(got_gt.iter().collect::<Vec<_>>(), expect_gt);

        let expect_lte: Vec<&String> =
            model.iter().filter(|(_, &v)| v <= probe).map(|(k, _)| k).collect();
        let got_lte = hit_keys(&coll, &Filter::lte("v", probe));
        prop_assert_eq!(got_lte.iter().collect::<Vec<_>>(), expect_lte);

        // Sanity: results identical with the index dropped.
        let _ = Value::Null;
        coll.drop_index("v");
        prop_assert_eq!(hit_keys(&coll, &Filter::eq("v", probe)), got_eq);
    }
}
