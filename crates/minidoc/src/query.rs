//! Document filters (the query half of the MongoDB stand-in).
//!
//! Filters address fields by dotted path (`"address.city"`), compare with
//! JSON-typed operands, and compose with and/or/not. Numeric comparisons are
//! cross-type (`3 == 3.0`), string comparisons lexicographic — the same
//! semantics the benchmark's verification queries rely on.

use chronos_json::Value;

/// A predicate over documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Field equals operand.
    Eq(String, Value),
    /// Field not-equal (also true when the field is missing).
    Ne(String, Value),
    /// Field strictly greater than operand.
    Gt(String, Value),
    /// Field greater-or-equal.
    Gte(String, Value),
    /// Field strictly less than operand.
    Lt(String, Value),
    /// Field less-or-equal.
    Lte(String, Value),
    /// Field exists (even if null).
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// Any sub-filter matches.
    Or(Vec<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// `field == value`.
    pub fn eq(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Eq(field.to_string(), value.into())
    }

    /// `field != value`.
    pub fn ne(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Ne(field.to_string(), value.into())
    }

    /// `field > value`.
    pub fn gt(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Gt(field.to_string(), value.into())
    }

    /// `field >= value`.
    pub fn gte(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Gte(field.to_string(), value.into())
    }

    /// `field < value`.
    pub fn lt(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Lt(field.to_string(), value.into())
    }

    /// `field <= value`.
    pub fn lte(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Lte(field.to_string(), value.into())
    }

    /// `field` exists.
    pub fn exists(field: &str) -> Filter {
        Filter::Exists(field.to_string())
    }

    /// Conjunction.
    pub fn and(filters: Vec<Filter>) -> Filter {
        Filter::And(filters)
    }

    /// Disjunction.
    pub fn or(filters: Vec<Filter>) -> Filter {
        Filter::Or(filters)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(filter: Filter) -> Filter {
        Filter::Not(Box::new(filter))
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, document: &Value) -> bool {
        match self {
            Filter::Eq(field, operand) => {
                lookup(document, field).map(|v| values_equal(v, operand)).unwrap_or(false)
            }
            Filter::Ne(field, operand) => {
                lookup(document, field).map(|v| !values_equal(v, operand)).unwrap_or(true)
            }
            Filter::Gt(field, operand) => compare(document, field, operand)
                .map(|o| o == std::cmp::Ordering::Greater)
                .unwrap_or(false),
            Filter::Gte(field, operand) => compare(document, field, operand)
                .map(|o| o != std::cmp::Ordering::Less)
                .unwrap_or(false),
            Filter::Lt(field, operand) => compare(document, field, operand)
                .map(|o| o == std::cmp::Ordering::Less)
                .unwrap_or(false),
            Filter::Lte(field, operand) => compare(document, field, operand)
                .map(|o| o != std::cmp::Ordering::Greater)
                .unwrap_or(false),
            Filter::Exists(field) => lookup(document, field).is_some(),
            Filter::And(filters) => filters.iter().all(|f| f.matches(document)),
            Filter::Or(filters) => filters.iter().any(|f| f.matches(document)),
            Filter::Not(filter) => !filter.matches(document),
        }
    }
}

/// Dotted-path field lookup.
pub(crate) fn lookup<'a>(document: &'a Value, path: &str) -> Option<&'a Value> {
    let mut current = document;
    for part in path.split('.') {
        current = match current {
            Value::Object(map) => map.get(part)?,
            Value::Array(items) => items.get(part.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(current)
}

/// Cross-numeric-type equality; other types use structural equality.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

fn compare(document: &Value, field: &str, operand: &Value) -> Option<std::cmp::Ordering> {
    let value = lookup(document, field)?;
    match (value, operand) {
        (Value::String(a), Value::String(b)) => Some(a.cmp(b)),
        _ => {
            let a = value.as_f64()?;
            let b = operand.as_f64()?;
            a.partial_cmp(&b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::{arr, obj};

    fn doc() -> Value {
        obj! {
            "name" => "ada",
            "age" => 36,
            "ratio" => 0.5,
            "address" => obj! {"city" => "basel", "zip" => 4051},
            "tags" => arr!["x", "y"],
            "maybe" => Value::Null,
        }
    }

    #[test]
    fn eq_and_ne() {
        assert!(Filter::eq("name", "ada").matches(&doc()));
        assert!(!Filter::eq("name", "bob").matches(&doc()));
        assert!(Filter::ne("name", "bob").matches(&doc()));
        assert!(Filter::ne("missing", 1).matches(&doc()), "missing fields are != anything");
        assert!(!Filter::eq("missing", 1).matches(&doc()));
    }

    #[test]
    fn numeric_comparisons_cross_type() {
        assert!(Filter::eq("age", 36.0).matches(&doc()));
        assert!(Filter::gt("age", 35).matches(&doc()));
        assert!(Filter::gte("age", 36).matches(&doc()));
        assert!(!Filter::gt("age", 36).matches(&doc()));
        assert!(Filter::lt("ratio", 1).matches(&doc()));
        assert!(Filter::lte("ratio", 0.5).matches(&doc()));
    }

    #[test]
    fn string_comparisons_lexicographic() {
        assert!(Filter::gt("name", "aaa").matches(&doc()));
        assert!(Filter::lt("name", "zzz").matches(&doc()));
    }

    #[test]
    fn dotted_paths_and_array_indexes() {
        assert!(Filter::eq("address.city", "basel").matches(&doc()));
        assert!(Filter::gt("address.zip", 4000).matches(&doc()));
        assert!(Filter::eq("tags.0", "x").matches(&doc()));
        assert!(!Filter::eq("tags.5", "x").matches(&doc()));
        assert!(!Filter::eq("name.sub", 1).matches(&doc()), "scalar has no sub-fields");
    }

    #[test]
    fn exists_counts_null() {
        assert!(Filter::exists("maybe").matches(&doc()));
        assert!(!Filter::exists("missing").matches(&doc()));
        assert!(Filter::exists("address.city").matches(&doc()));
    }

    #[test]
    fn boolean_composition() {
        let d = doc();
        assert!(Filter::and(vec![Filter::eq("name", "ada"), Filter::gt("age", 30)]).matches(&d));
        assert!(!Filter::and(vec![Filter::eq("name", "ada"), Filter::gt("age", 40)]).matches(&d));
        assert!(Filter::or(vec![Filter::eq("name", "bob"), Filter::gt("age", 30)]).matches(&d));
        assert!(!Filter::or(vec![Filter::eq("name", "bob"), Filter::gt("age", 40)]).matches(&d));
        assert!(Filter::not(Filter::eq("name", "bob")).matches(&d));
        assert!(Filter::and(vec![]).matches(&d), "empty and = true");
        assert!(!Filter::or(vec![]).matches(&d), "empty or = false");
    }

    #[test]
    fn comparisons_on_incomparable_types_fail_closed() {
        assert!(!Filter::gt("name", 5).matches(&doc()));
        assert!(!Filter::lt("tags", 5).matches(&doc()));
        assert!(!Filter::gt("missing", 5).matches(&doc()));
    }
}
