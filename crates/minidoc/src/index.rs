//! Secondary indexes.
//!
//! MongoDB's single-field secondary indexes, reproduced above the storage
//! engine: an index maps an *order-preserving encoding* of a document
//! field's value to the set of document keys holding that value. Indexes
//! are maintained synchronously on every write and consulted by the query
//! planner in [`Collection::find`](crate::Collection::find) for equality
//! and range predicates.
//!
//! Value ordering follows a BSON-like type order: null < booleans < numbers
//! (cross-type, `3 == 3.0`) < strings. Arrays/objects are not indexable
//! (matching the stand-in's query semantics).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use chronos_json::{Number, Value};

/// An order-preserving byte encoding of an indexable scalar.
///
/// Layout: one type-class byte, then a payload whose byte order equals the
/// value order within the class. Numbers encode as IEEE doubles with the
/// usual sign-flip trick so negative values sort before positive ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexKey(Vec<u8>);

const CLASS_NULL: u8 = 0x10;
const CLASS_BOOL: u8 = 0x20;
const CLASS_NUMBER: u8 = 0x30;
const CLASS_STRING: u8 = 0x40;

impl IndexKey {
    /// Encodes a scalar; `None` for non-indexable values (arrays/objects).
    pub fn encode(value: &Value) -> Option<IndexKey> {
        let mut out = Vec::with_capacity(10);
        match value {
            Value::Null => out.push(CLASS_NULL),
            Value::Bool(b) => {
                out.push(CLASS_BOOL);
                out.push(*b as u8);
            }
            Value::Number(n) => {
                out.push(CLASS_NUMBER);
                out.extend_from_slice(&encode_f64(match n {
                    Number::Int(i) => *i as f64,
                    Number::Float(f) => *f,
                }));
            }
            Value::String(s) => {
                out.push(CLASS_STRING);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Array(_) | Value::Object(_) => return None,
        }
        Some(IndexKey(out))
    }

    /// The smallest possible key (for unbounded range starts).
    pub fn min() -> IndexKey {
        IndexKey(vec![0x00])
    }

    /// A key greater than every encodable key (for unbounded range ends).
    pub fn max() -> IndexKey {
        IndexKey(vec![0xFF])
    }

    /// The immediate successor in the key order (for exclusive bounds).
    pub fn successor(&self) -> IndexKey {
        let mut bytes = self.0.clone();
        bytes.push(0x00);
        IndexKey(bytes)
    }
}

/// Total-order encoding of an f64: flip the sign bit for positives, flip
/// all bits for negatives, then big-endian.
fn encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let ordered = if bits >> 63 == 0 { bits ^ (1 << 63) } else { !bits };
    ordered.to_be_bytes()
}

/// One single-field index: ordered value → document keys.
#[derive(Debug, Default)]
pub struct FieldIndex {
    entries: BTreeMap<IndexKey, BTreeSet<Vec<u8>>>,
    /// Total (value, key) pairs, for stats.
    len: usize,
}

impl FieldIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        FieldIndex::default()
    }

    /// Adds a `(value, document key)` pair.
    pub fn insert(&mut self, value: &Value, key: &[u8]) {
        if let Some(ik) = IndexKey::encode(value) {
            if self.entries.entry(ik).or_default().insert(key.to_vec()) {
                self.len += 1;
            }
        }
    }

    /// Removes a `(value, document key)` pair.
    pub fn remove(&mut self, value: &Value, key: &[u8]) {
        if let Some(ik) = IndexKey::encode(value) {
            if let Some(keys) = self.entries.get_mut(&ik) {
                if keys.remove(key) {
                    self.len -= 1;
                }
                if keys.is_empty() {
                    self.entries.remove(&ik);
                }
            }
        }
    }

    /// Borrowed document keys whose value equals `value` — no per-lookup
    /// cloning; callers copy only the keys they keep.
    pub fn lookup_eq_iter(&self, value: &Value) -> impl Iterator<Item = &[u8]> {
        IndexKey::encode(value)
            .and_then(|ik| self.entries.get(&ik))
            .into_iter()
            .flatten()
            .map(Vec::as_slice)
    }

    /// Borrowed document keys whose value lies in `[low, high)` (half-open
    /// over the encoded order).
    pub fn lookup_range_iter<'a>(
        &'a self,
        low: &IndexKey,
        high: &IndexKey,
    ) -> impl Iterator<Item = &'a [u8]> {
        self.entries
            .range((Bound::Included(low), Bound::Excluded(high)))
            .flat_map(|(_, keys)| keys.iter().map(Vec::as_slice))
    }

    /// Document keys whose value equals `value`, copied out.
    pub fn lookup_eq(&self, value: &Value) -> Vec<Vec<u8>> {
        self.lookup_eq_iter(value).map(<[u8]>::to_vec).collect()
    }

    /// Document keys whose value lies in `[low, high)`, copied out.
    pub fn lookup_range(&self, low: &IndexKey, high: &IndexKey) -> Vec<Vec<u8>> {
        self.lookup_range_iter(low, high).map(<[u8]>::to_vec).collect()
    }

    /// Number of `(value, key)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct indexed values (posting-list entries). Stays
    /// bounded under churn because [`FieldIndex::remove`] prunes entries
    /// whose key set drains empty.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }
}

/// Range bounds for the number class only (used by the planner for
/// `Gt`/`Gte`/`Lt`/`Lte` over numbers and strings).
pub fn range_for(op: RangeOp, operand: &Value) -> Option<(IndexKey, IndexKey)> {
    let key = IndexKey::encode(operand)?;
    // Class bounds: scan only within the operand's type class.
    let class = match operand {
        Value::Number(_) => CLASS_NUMBER,
        Value::String(_) => CLASS_STRING,
        _ => return None,
    };
    let class_low = IndexKey(vec![class]);
    let class_high = IndexKey(vec![class + 0x10]);
    Some(match op {
        RangeOp::Gt => (key.successor(), class_high),
        RangeOp::Gte => (key, class_high),
        RangeOp::Lt => (class_low, key),
        RangeOp::Lte => (class_low, key.successor()),
    })
}

/// Range comparison operators the planner understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Gte,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Lte,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_matches_value_order() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::from(f64::MIN),
            Value::from(-1000.5),
            Value::from(-1),
            Value::from(0),
            Value::from(0.5),
            Value::from(1),
            Value::from(1000),
            Value::from(f64::MAX),
            Value::from(""),
            Value::from("a"),
            Value::from("ab"),
            Value::from("b"),
        ];
        let keys: Vec<IndexKey> = values.iter().map(|v| IndexKey::encode(v).unwrap()).collect();
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?}");
        }
        assert!(IndexKey::min() < keys[0].clone());
        assert!(keys.last().unwrap().clone() < IndexKey::max());
    }

    #[test]
    fn int_and_float_encode_identically() {
        assert_eq!(IndexKey::encode(&Value::from(3)), IndexKey::encode(&Value::from(3.0)));
    }

    #[test]
    fn containers_are_not_indexable() {
        assert!(IndexKey::encode(&chronos_json::arr![1]).is_none());
        assert!(IndexKey::encode(&chronos_json::obj! {"a" => 1}).is_none());
    }

    #[test]
    fn insert_lookup_remove() {
        let mut index = FieldIndex::new();
        index.insert(&Value::from("basel"), b"p1");
        index.insert(&Value::from("basel"), b"p3");
        index.insert(&Value::from("bern"), b"p2");
        assert_eq!(index.len(), 3);
        let mut hits = index.lookup_eq(&Value::from("basel"));
        hits.sort();
        assert_eq!(hits, vec![b"p1".to_vec(), b"p3".to_vec()]);
        index.remove(&Value::from("basel"), b"p1");
        assert_eq!(index.lookup_eq(&Value::from("basel")), vec![b"p3".to_vec()]);
        assert_eq!(index.len(), 2);
        // Removing a non-member is a no-op.
        index.remove(&Value::from("basel"), b"p1");
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn churn_does_not_grow_distinct_values() {
        let mut index = FieldIndex::new();
        // Delete-heavy churn over a rotating value domain: every (value, key)
        // pair is removed again, so the posting map must shrink back instead
        // of accumulating empty per-value entries.
        for round in 0..50i64 {
            for k in 0..20u32 {
                let key = format!("k{k}");
                index.insert(&Value::from(round * 100 + k as i64), key.as_bytes());
            }
            for k in 0..20u32 {
                let key = format!("k{k}");
                index.remove(&Value::from(round * 100 + k as i64), key.as_bytes());
            }
        }
        assert_eq!(index.len(), 0);
        assert_eq!(index.distinct_values(), 0, "empty posting entries must be pruned");
        // A live remainder keeps exactly its own entries.
        index.insert(&Value::from("alive"), b"k");
        assert_eq!(index.distinct_values(), 1);
    }

    #[test]
    fn borrowed_lookups_agree_with_cloning_lookups() {
        let mut index = FieldIndex::new();
        for age in [10, 20, 20, 30, 40] {
            index.insert(&Value::from(age), format!("p{age}").as_bytes());
        }
        let eq_borrowed: Vec<Vec<u8>> =
            index.lookup_eq_iter(&Value::from(20)).map(<[u8]>::to_vec).collect();
        assert_eq!(eq_borrowed, index.lookup_eq(&Value::from(20)));
        let (low, high) = range_for(RangeOp::Gte, &Value::from(20)).unwrap();
        let range_borrowed: Vec<Vec<u8>> =
            index.lookup_range_iter(&low, &high).map(<[u8]>::to_vec).collect();
        assert_eq!(range_borrowed, index.lookup_range(&low, &high));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut index = FieldIndex::new();
        index.insert(&Value::from(1), b"k");
        index.insert(&Value::from(1), b"k");
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn numeric_range_lookup() {
        let mut index = FieldIndex::new();
        for age in [10, 20, 30, 40] {
            index.insert(&Value::from(age), format!("p{age}").as_bytes());
        }
        // age > 20
        let (low, high) = range_for(RangeOp::Gt, &Value::from(20)).unwrap();
        let mut hits = index.lookup_range(&low, &high);
        hits.sort();
        assert_eq!(hits, vec![b"p30".to_vec(), b"p40".to_vec()]);
        // age <= 20
        let (low, high) = range_for(RangeOp::Lte, &Value::from(20)).unwrap();
        let mut hits = index.lookup_range(&low, &high);
        hits.sort();
        assert_eq!(hits, vec![b"p10".to_vec(), b"p20".to_vec()]);
    }

    #[test]
    fn range_does_not_cross_type_classes() {
        let mut index = FieldIndex::new();
        index.insert(&Value::from(5), b"num");
        index.insert(&Value::from("zzz"), b"str");
        index.insert(&Value::Null, b"null");
        let (low, high) = range_for(RangeOp::Gte, &Value::from(0)).unwrap();
        assert_eq!(index.lookup_range(&low, &high), vec![b"num".to_vec()]);
        let (low, high) = range_for(RangeOp::Lt, &Value::from("zzzz")).unwrap();
        assert_eq!(index.lookup_range(&low, &high), vec![b"str".to_vec()]);
    }

    #[test]
    fn range_for_rejects_unrangeable_operands() {
        assert!(range_for(RangeOp::Gt, &Value::Bool(true)).is_none());
        assert!(range_for(RangeOp::Lt, &Value::Null).is_none());
    }
}
