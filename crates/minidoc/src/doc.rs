//! Compact binary document encoding (BSON's role in MongoDB).
//!
//! Documents are JSON objects; on disk they are encoded with one-byte type
//! tags and LEB128 length prefixes. The encoding is self-delimiting, so
//! records can be concatenated into extents/pages without separators.

use chronos_json::{Map, Number, Value};

use crate::error::{DbError, DbResult};
use crate::query::Filter;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STRING: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Encodes a document. The top level must be a JSON object (as in MongoDB).
pub fn encode(document: &Value) -> DbResult<Vec<u8>> {
    if !matches!(document, Value::Object(_)) {
        return Err(DbError::BadDocument(format!(
            "top-level value must be an object, got {}",
            document.type_name()
        )));
    }
    let mut out = Vec::with_capacity(64);
    encode_value(document, &mut out);
    Ok(out)
}

/// Decodes a document previously produced by [`encode`].
pub fn decode(bytes: &[u8]) -> DbResult<Value> {
    let mut pos = 0;
    let value = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(DbError::Corrupt(format!(
            "trailing bytes after document ({} of {})",
            pos,
            bytes.len()
        )));
    }
    Ok(value)
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(Number::Int(i)) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Number(Number::Float(f)) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            encode_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            encode_varint(map.len() as u64, out);
            for (key, val) in map.iter() {
                encode_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> DbResult<Value> {
    let tag = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Number(Number::Int(i64::from_le_bytes(raw.try_into().unwrap()))))
        }
        TAG_FLOAT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Number(Number::Float(f64::from_le_bytes(raw.try_into().unwrap()))))
        }
        TAG_STRING => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = take(bytes, pos, len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| DbError::Corrupt("invalid UTF-8 in string".into()))?;
            Ok(Value::String(s.to_string()))
        }
        TAG_ARRAY => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("array length exceeds input".into()));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("object length exceeds input".into()));
            }
            let mut map = Map::with_capacity(count);
            for _ in 0..count {
                let key_len = decode_varint(bytes, pos)? as usize;
                let raw = take(bytes, pos, key_len)?;
                let key = std::str::from_utf8(raw)
                    .map_err(|_| DbError::Corrupt("invalid UTF-8 in key".into()))?
                    .to_string();
                let val = decode_value(bytes, pos)?;
                map.insert(key, val);
            }
            Ok(Value::Object(map))
        }
        other => Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    }
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> DbResult<&'a [u8]> {
    let slice =
        bytes.get(*pos..*pos + len).ok_or_else(|| DbError::Corrupt("truncated payload".into()))?;
    *pos += len;
    Ok(slice)
}

/// LEB128 unsigned varint.
pub fn encode_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 unsigned varint decoder.
pub fn decode_varint(bytes: &[u8], pos: &mut usize) -> DbResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DbError::Corrupt("varint overflow".into()));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown: filter evaluation directly on the encoded bytes.
//
// `matches_encoded` walks the tag+varint encoding without building a single
// `Value`, so a full-collection scan only pays materialization for documents
// that actually match. The walker mirrors `decode` + `Filter::matches`
// bit-for-bit (cross-type numeric equality, lexicographic strings, fail-closed
// comparisons); `tests/pushdown.rs` holds the agreement property tests.
//
// Input is assumed to come from [`encode`] (engine records always do), so
// object keys are unique; malformed bytes surface as [`DbError::Corrupt`].
// ---------------------------------------------------------------------------

/// Evaluates `filter` against an encoded document without materializing it.
///
/// Agrees exactly with `Filter::matches(&decode(bytes)?)` for any `bytes`
/// produced by [`encode`].
pub fn matches_encoded(bytes: &[u8], filter: &Filter) -> DbResult<bool> {
    match filter {
        Filter::Eq(field, operand) => match seek_path(bytes, field)? {
            Some(mut pos) => encoded_eq_cross_numeric(bytes, &mut pos, operand),
            None => Ok(false),
        },
        Filter::Ne(field, operand) => match seek_path(bytes, field)? {
            Some(mut pos) => Ok(!encoded_eq_cross_numeric(bytes, &mut pos, operand)?),
            None => Ok(true),
        },
        Filter::Gt(field, operand) => {
            Ok(encoded_cmp(bytes, field, operand)? == Some(std::cmp::Ordering::Greater))
        }
        Filter::Gte(field, operand) => Ok(matches!(
            encoded_cmp(bytes, field, operand)?,
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        )),
        Filter::Lt(field, operand) => {
            Ok(encoded_cmp(bytes, field, operand)? == Some(std::cmp::Ordering::Less))
        }
        Filter::Lte(field, operand) => Ok(matches!(
            encoded_cmp(bytes, field, operand)?,
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )),
        Filter::Exists(field) => Ok(seek_path(bytes, field)?.is_some()),
        Filter::And(filters) => {
            for f in filters {
                if !matches_encoded(bytes, f)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Filter::Or(filters) => {
            for f in filters {
                if matches_encoded(bytes, f)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Filter::Not(filter) => Ok(!matches_encoded(bytes, filter)?),
    }
}

/// Decodes only the value at dotted `path` (`None` when the path is absent),
/// skipping over everything else. Used by index backfill, which needs one
/// field of every document.
pub fn decode_path(bytes: &[u8], path: &str) -> DbResult<Option<Value>> {
    match seek_path(bytes, path)? {
        Some(mut pos) => Ok(Some(decode_value(bytes, &mut pos)?)),
        None => Ok(None),
    }
}

/// Byte offset of the encoded value at dotted `path` (same path semantics as
/// `query::lookup`: object keys by name, array elements by parsed index).
fn seek_path(bytes: &[u8], path: &str) -> DbResult<Option<usize>> {
    let mut pos = 0usize;
    for part in path.split('.') {
        let tag = *bytes.get(pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
        pos += 1;
        match tag {
            TAG_OBJECT => {
                let count = decode_varint(bytes, &mut pos)? as usize;
                if count > bytes.len() - pos {
                    return Err(DbError::Corrupt("object length exceeds input".into()));
                }
                let mut found = false;
                for _ in 0..count {
                    let key_len = decode_varint(bytes, &mut pos)? as usize;
                    let key = take(bytes, &mut pos, key_len)?;
                    if key == part.as_bytes() {
                        found = true;
                        break;
                    }
                    skip_value(bytes, &mut pos)?;
                }
                if !found {
                    return Ok(None);
                }
            }
            TAG_ARRAY => {
                let Ok(index) = part.parse::<usize>() else { return Ok(None) };
                let count = decode_varint(bytes, &mut pos)? as usize;
                if count > bytes.len() - pos {
                    return Err(DbError::Corrupt("array length exceeds input".into()));
                }
                if index >= count {
                    return Ok(None);
                }
                for _ in 0..index {
                    skip_value(bytes, &mut pos)?;
                }
            }
            // Scalars have no sub-fields.
            TAG_NULL | TAG_FALSE | TAG_TRUE | TAG_INT | TAG_FLOAT | TAG_STRING => return Ok(None),
            other => return Err(DbError::Corrupt(format!("unknown type tag {other}"))),
        }
    }
    Ok(Some(pos))
}

/// Advances `pos` past one encoded value.
fn skip_value(bytes: &[u8], pos: &mut usize) -> DbResult<()> {
    let tag = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL | TAG_FALSE | TAG_TRUE => {}
        TAG_INT | TAG_FLOAT => {
            take(bytes, pos, 8)?;
        }
        TAG_STRING => {
            let len = decode_varint(bytes, pos)? as usize;
            take(bytes, pos, len)?;
        }
        TAG_ARRAY => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("array length exceeds input".into()));
            }
            for _ in 0..count {
                skip_value(bytes, pos)?;
            }
        }
        TAG_OBJECT => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("object length exceeds input".into()));
            }
            for _ in 0..count {
                let key_len = decode_varint(bytes, pos)? as usize;
                take(bytes, pos, key_len)?;
                skip_value(bytes, pos)?;
            }
        }
        other => return Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    }
    Ok(())
}

/// Top-level `Eq`/`Ne` operand comparison: cross-type numeric equality when
/// both sides are numbers (`query::values_equal`), structural otherwise.
fn encoded_eq_cross_numeric(bytes: &[u8], pos: &mut usize, operand: &Value) -> DbResult<bool> {
    let tag = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    if matches!(tag, TAG_INT | TAG_FLOAT) {
        if let Some(y) = operand.as_f64() {
            *pos += 1;
            let raw = take(bytes, pos, 8)?.try_into().unwrap();
            let x = if tag == TAG_INT {
                i64::from_le_bytes(raw) as f64
            } else {
                f64::from_le_bytes(raw)
            };
            return Ok(x == y);
        }
    }
    encoded_eq(bytes, pos, operand)
}

/// Structural equality of an encoded value against `operand`, mirroring the
/// derived `Value: PartialEq` (so nested numbers use `Number`'s exact-int /
/// cross-type semantics, objects compare entries pairwise in order).
///
/// On `Ok(true)`, `pos` has advanced past the value; on `Ok(false)` it is
/// left mid-value (callers short-circuit).
fn encoded_eq(bytes: &[u8], pos: &mut usize, operand: &Value) -> DbResult<bool> {
    let tag = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(matches!(operand, Value::Null)),
        TAG_FALSE => Ok(matches!(operand, Value::Bool(false))),
        TAG_TRUE => Ok(matches!(operand, Value::Bool(true))),
        TAG_INT => {
            let raw = take(bytes, pos, 8)?.try_into().unwrap();
            let x = Number::Int(i64::from_le_bytes(raw));
            Ok(matches!(operand, Value::Number(n) if x == *n))
        }
        TAG_FLOAT => {
            let raw = take(bytes, pos, 8)?.try_into().unwrap();
            let x = Number::Float(f64::from_le_bytes(raw));
            Ok(matches!(operand, Value::Number(n) if x == *n))
        }
        TAG_STRING => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = take(bytes, pos, len)?;
            Ok(matches!(operand, Value::String(s) if raw == s.as_bytes()))
        }
        TAG_ARRAY => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("array length exceeds input".into()));
            }
            let Value::Array(items) = operand else { return Ok(false) };
            if count != items.len() {
                return Ok(false);
            }
            for item in items {
                if !encoded_eq(bytes, pos, item)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        TAG_OBJECT => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("object length exceeds input".into()));
            }
            let Value::Object(map) = operand else { return Ok(false) };
            if count != map.len() {
                return Ok(false);
            }
            for (want_key, want_value) in map.iter() {
                let key_len = decode_varint(bytes, pos)? as usize;
                let key = take(bytes, pos, key_len)?;
                if key != want_key.as_bytes() || !encoded_eq(bytes, pos, want_value)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        other => Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    }
}

/// Ordering of the value at `field` against `operand`, mirroring
/// `query::compare`: strings compare lexicographically, numbers cross-type
/// via f64; every other combination (and a missing field) is `None`.
fn encoded_cmp(bytes: &[u8], field: &str, operand: &Value) -> DbResult<Option<std::cmp::Ordering>> {
    let Some(mut pos) = seek_path(bytes, field)? else { return Ok(None) };
    let tag = *bytes.get(pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    pos += 1;
    match tag {
        TAG_STRING => {
            let len = decode_varint(bytes, &mut pos)? as usize;
            let raw = take(bytes, &mut pos, len)?;
            match operand {
                Value::String(s) => Ok(Some(raw.cmp(s.as_bytes()))),
                _ => Ok(None),
            }
        }
        TAG_INT | TAG_FLOAT => {
            let Some(y) = operand.as_f64() else { return Ok(None) };
            let raw = take(bytes, &mut pos, 8)?.try_into().unwrap();
            let x = if tag == TAG_INT {
                i64::from_le_bytes(raw) as f64
            } else {
                f64::from_le_bytes(raw)
            };
            Ok(x.partial_cmp(&y))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::{arr, obj};

    #[test]
    fn roundtrip_typical_document() {
        let document = obj! {
            "name" => "ada",
            "age" => 36,
            "score" => 99.5,
            "tags" => arr!["a", "b"],
            "nested" => obj! {"deep" => obj! {"x" => Value::Null}},
            "flag" => true,
        };
        let bytes = encode(&document).unwrap();
        assert_eq!(decode(&bytes).unwrap(), document);
    }

    #[test]
    fn roundtrip_preserves_key_order() {
        let document = obj! {"z" => 1, "a" => 2, "m" => 3};
        let decoded = decode(&encode(&document).unwrap()).unwrap();
        let keys: Vec<&str> = decoded.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn top_level_must_be_object() {
        assert!(matches!(encode(&Value::from(1)), Err(DbError::BadDocument(_))));
        assert!(matches!(encode(&arr![1]), Err(DbError::BadDocument(_))));
        assert!(encode(&obj! {}).is_ok());
    }

    #[test]
    fn extreme_numbers_roundtrip() {
        let document = obj! {
            "max" => i64::MAX,
            "min" => i64::MIN,
            "tiny" => 1e-300,
            "huge" => 1e300,
            "negzero" => -0.0,
        };
        assert_eq!(decode(&encode(&document).unwrap()).unwrap(), document);
    }

    #[test]
    fn unicode_roundtrip() {
        let document = obj! {"emoji 😀" => "héllo wörld 😀"};
        assert_eq!(decode(&encode(&document).unwrap()).unwrap(), document);
    }

    #[test]
    fn truncated_input_is_corrupt() {
        let bytes = encode(&obj! {"k" => "value"}).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(DbError::Corrupt(_))),
                "prefix of length {cut} should be corrupt"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = encode(&obj! {"k" => 1}).unwrap();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        assert!(matches!(decode(&[99]), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Object claiming u64::MAX entries must not attempt an allocation.
        let mut bytes = vec![TAG_OBJECT];
        encode_varint(u64::MAX, &mut bytes);
        assert!(matches!(decode(&bytes), Err(DbError::Corrupt(_))));
    }

    fn walker_doc() -> Value {
        obj! {
            "name" => "ada",
            "age" => 36,
            "ratio" => 0.5,
            "address" => obj! {"city" => "basel", "zip" => 4051},
            "tags" => arr!["x", "y"],
            "maybe" => Value::Null,
        }
    }

    fn check(filter: &Filter, document: &Value) {
        let bytes = encode(document).unwrap();
        assert_eq!(
            matches_encoded(&bytes, filter).unwrap(),
            filter.matches(document),
            "walker disagrees with decode+matches for {filter:?}"
        );
    }

    #[test]
    fn walker_agrees_on_scalar_predicates() {
        let d = walker_doc();
        for filter in [
            Filter::eq("name", "ada"),
            Filter::eq("name", "bob"),
            Filter::ne("name", "bob"),
            Filter::ne("missing", 1),
            Filter::eq("age", 36.0),
            Filter::gt("age", 35),
            Filter::gte("age", 36),
            Filter::gt("age", 36),
            Filter::lt("ratio", 1),
            Filter::lte("ratio", 0.5),
            Filter::gt("name", "aaa"),
            Filter::lt("name", "zzz"),
            Filter::gt("name", 5),
            Filter::lt("tags", 5),
            Filter::exists("maybe"),
            Filter::exists("missing"),
        ] {
            check(&filter, &d);
        }
    }

    #[test]
    fn walker_agrees_on_paths_and_composition() {
        let d = walker_doc();
        for filter in [
            Filter::eq("address.city", "basel"),
            Filter::gt("address.zip", 4000),
            Filter::eq("tags.0", "x"),
            Filter::eq("tags.5", "x"),
            Filter::eq("name.sub", 1),
            Filter::exists("address.city"),
            Filter::and(vec![Filter::eq("name", "ada"), Filter::gt("age", 30)]),
            Filter::or(vec![Filter::eq("name", "bob"), Filter::gt("age", 40)]),
            Filter::not(Filter::eq("name", "bob")),
            Filter::and(vec![]),
            Filter::or(vec![]),
        ] {
            check(&filter, &d);
        }
    }

    #[test]
    fn walker_agrees_on_container_equality() {
        let d = walker_doc();
        for filter in [
            Filter::eq("tags", arr!["x", "y"]),
            Filter::eq("tags", arr!["x"]),
            Filter::eq("tags", arr!["x", "z"]),
            Filter::eq("address", obj! {"city" => "basel", "zip" => 4051}),
            Filter::eq("address", obj! {"zip" => 4051, "city" => "basel"}),
            Filter::eq("address", obj! {"city" => "basel"}),
            Filter::eq("maybe", Value::Null),
        ] {
            check(&filter, &d);
        }
    }

    #[test]
    fn walker_rejects_corrupt_bytes() {
        let bytes = encode(&walker_doc()).unwrap();
        let filter = Filter::eq("maybe", 1);
        for cut in 1..bytes.len() - 1 {
            // Any truncation either errors or still answers; it must not panic.
            let _ = matches_encoded(&bytes[..cut], &filter);
        }
        assert!(matches!(matches_encoded(&[99], &filter), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn decode_path_extracts_single_fields() {
        let bytes = encode(&walker_doc()).unwrap();
        assert_eq!(decode_path(&bytes, "age").unwrap(), Some(Value::from(36)));
        assert_eq!(decode_path(&bytes, "address.city").unwrap(), Some(Value::from("basel")));
        assert_eq!(decode_path(&bytes, "tags.1").unwrap(), Some(Value::from("y")));
        assert_eq!(decode_path(&bytes, "missing").unwrap(), None);
        assert_eq!(decode_path(&bytes, "name.sub").unwrap(), None);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
