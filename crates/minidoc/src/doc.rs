//! Compact binary document encoding (BSON's role in MongoDB).
//!
//! Documents are JSON objects; on disk they are encoded with one-byte type
//! tags and LEB128 length prefixes. The encoding is self-delimiting, so
//! records can be concatenated into extents/pages without separators.

use chronos_json::{Map, Number, Value};

use crate::error::{DbError, DbResult};

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STRING: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Encodes a document. The top level must be a JSON object (as in MongoDB).
pub fn encode(document: &Value) -> DbResult<Vec<u8>> {
    if !matches!(document, Value::Object(_)) {
        return Err(DbError::BadDocument(format!(
            "top-level value must be an object, got {}",
            document.type_name()
        )));
    }
    let mut out = Vec::with_capacity(64);
    encode_value(document, &mut out);
    Ok(out)
}

/// Decodes a document previously produced by [`encode`].
pub fn decode(bytes: &[u8]) -> DbResult<Value> {
    let mut pos = 0;
    let value = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(DbError::Corrupt(format!(
            "trailing bytes after document ({} of {})",
            pos,
            bytes.len()
        )));
    }
    Ok(value)
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(Number::Int(i)) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Number(Number::Float(f)) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            encode_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            encode_varint(map.len() as u64, out);
            for (key, val) in map.iter() {
                encode_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> DbResult<Value> {
    let tag = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Number(Number::Int(i64::from_le_bytes(raw.try_into().unwrap()))))
        }
        TAG_FLOAT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Number(Number::Float(f64::from_le_bytes(raw.try_into().unwrap()))))
        }
        TAG_STRING => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = take(bytes, pos, len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| DbError::Corrupt("invalid UTF-8 in string".into()))?;
            Ok(Value::String(s.to_string()))
        }
        TAG_ARRAY => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("array length exceeds input".into()));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = decode_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(DbError::Corrupt("object length exceeds input".into()));
            }
            let mut map = Map::with_capacity(count);
            for _ in 0..count {
                let key_len = decode_varint(bytes, pos)? as usize;
                let raw = take(bytes, pos, key_len)?;
                let key = std::str::from_utf8(raw)
                    .map_err(|_| DbError::Corrupt("invalid UTF-8 in key".into()))?
                    .to_string();
                let val = decode_value(bytes, pos)?;
                map.insert(key, val);
            }
            Ok(Value::Object(map))
        }
        other => Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    }
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> DbResult<&'a [u8]> {
    let slice =
        bytes.get(*pos..*pos + len).ok_or_else(|| DbError::Corrupt("truncated payload".into()))?;
    *pos += len;
    Ok(slice)
}

/// LEB128 unsigned varint.
pub fn encode_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 unsigned varint decoder.
pub fn decode_varint(bytes: &[u8], pos: &mut usize) -> DbResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| DbError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DbError::Corrupt("varint overflow".into()));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::{arr, obj};

    #[test]
    fn roundtrip_typical_document() {
        let document = obj! {
            "name" => "ada",
            "age" => 36,
            "score" => 99.5,
            "tags" => arr!["a", "b"],
            "nested" => obj! {"deep" => obj! {"x" => Value::Null}},
            "flag" => true,
        };
        let bytes = encode(&document).unwrap();
        assert_eq!(decode(&bytes).unwrap(), document);
    }

    #[test]
    fn roundtrip_preserves_key_order() {
        let document = obj! {"z" => 1, "a" => 2, "m" => 3};
        let decoded = decode(&encode(&document).unwrap()).unwrap();
        let keys: Vec<&str> = decoded.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn top_level_must_be_object() {
        assert!(matches!(encode(&Value::from(1)), Err(DbError::BadDocument(_))));
        assert!(matches!(encode(&arr![1]), Err(DbError::BadDocument(_))));
        assert!(encode(&obj! {}).is_ok());
    }

    #[test]
    fn extreme_numbers_roundtrip() {
        let document = obj! {
            "max" => i64::MAX,
            "min" => i64::MIN,
            "tiny" => 1e-300,
            "huge" => 1e300,
            "negzero" => -0.0,
        };
        assert_eq!(decode(&encode(&document).unwrap()).unwrap(), document);
    }

    #[test]
    fn unicode_roundtrip() {
        let document = obj! {"emoji 😀" => "héllo wörld 😀"};
        assert_eq!(decode(&encode(&document).unwrap()).unwrap(), document);
    }

    #[test]
    fn truncated_input_is_corrupt() {
        let bytes = encode(&obj! {"k" => "value"}).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(DbError::Corrupt(_))),
                "prefix of length {cut} should be corrupt"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = encode(&obj! {"k" => 1}).unwrap();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        assert!(matches!(decode(&[99]), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Object claiming u64::MAX entries must not attempt an allocation.
        let mut bytes = vec![TAG_OBJECT];
        encode_varint(u64::MAX, &mut bytes);
        assert!(matches!(decode(&bytes), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
