//! Block compression for the wiredTiger-like engine.
//!
//! WiredTiger ships with snappy block compression enabled by default, and
//! the MongoDB demo's storage-footprint difference between the engines comes
//! largely from it. This module implements a small LZ77-family compressor
//! (greedy longest-match against a 64 KiB window via a 4-byte-prefix hash
//! table) with an escape to stored blocks when data is incompressible.
//!
//! Format: `varint uncompressed_len`, then a sequence of
//! * `0x00, varint n, n literal bytes`
//! * `0x01, varint match_len, varint back_offset` (match_len ≥ 4)

use crate::doc::{decode_varint, encode_varint};
use crate::error::{DbError, DbResult};

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 64 * 1024;

const TAG_LITERAL: u8 = 0;
const TAG_MATCH: u8 = 1;

/// Sizes the prefix hash table to the input so small blocks (typical
/// documents are ~1 KiB) do not pay for zeroing a large table on every
/// call — this keeps per-record compression on the engine's write path
/// cheap.
fn hash_bits_for(len: usize) -> u32 {
    (usize::BITS - len.next_power_of_two().leading_zeros() - 1).clamp(8, 14)
}

fn hash4(data: &[u8], bits: u32) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - bits)) as usize
}

/// Compresses `data`. The output always starts with the uncompressed length;
/// callers that want a stored-block fallback should compare sizes (see
/// [`compress_or_store`]).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    encode_varint(data.len() as u64, &mut out);
    let bits = hash_bits_for(data.len());
    let mut table = vec![u32::MAX; 1 << bits];
    let mut pos = 0;
    let mut literal_start = 0;

    while pos + MIN_MATCH <= data.len() {
        let h = hash4(&data[pos..], bits);
        let candidate = table[h] as usize;
        table[h] = pos as u32;
        let mut match_len = 0;
        if candidate != u32::MAX as usize && pos - candidate <= MAX_OFFSET {
            let max = data.len() - pos;
            while match_len < max && data[candidate + match_len] == data[pos + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&data[literal_start..pos], &mut out);
            out.push(TAG_MATCH);
            encode_varint(match_len as u64, &mut out);
            encode_varint((pos - candidate) as u64, &mut out);
            // Index a few positions inside the match so later data can
            // reference it (sparse to keep compression fast).
            let end = pos + match_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= data.len() && p < end {
                table[hash4(&data[p..], bits)] = p as u32;
                p += 3;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&data[literal_start..], &mut out);
    out
}

fn flush_literals(literals: &[u8], out: &mut Vec<u8>) {
    if literals.is_empty() {
        return;
    }
    out.push(TAG_LITERAL);
    encode_varint(literals.len() as u64, out);
    out.extend_from_slice(literals);
}

/// Decompresses a block produced by [`compress`].
pub fn decompress(block: &[u8]) -> DbResult<Vec<u8>> {
    let mut pos = 0;
    let expected = decode_varint(block, &mut pos)? as usize;
    // Guard against hostile length prefixes before allocating.
    if expected > block.len().saturating_mul(MAX_OFFSET).max(1 << 30) {
        return Err(DbError::Corrupt("implausible uncompressed length".into()));
    }
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    while pos < block.len() {
        let tag = block[pos];
        pos += 1;
        match tag {
            TAG_LITERAL => {
                let n = decode_varint(block, &mut pos)? as usize;
                let lits = block
                    .get(pos..pos + n)
                    .ok_or_else(|| DbError::Corrupt("truncated literals".into()))?;
                out.extend_from_slice(lits);
                pos += n;
            }
            TAG_MATCH => {
                let len = decode_varint(block, &mut pos)? as usize;
                let offset = decode_varint(block, &mut pos)? as usize;
                if offset == 0 || offset > out.len() {
                    return Err(DbError::Corrupt("match offset out of range".into()));
                }
                if out.len() + len > expected {
                    return Err(DbError::Corrupt("match overruns output".into()));
                }
                let start = out.len() - offset;
                // Byte-by-byte copy: matches may overlap themselves (RLE).
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            other => return Err(DbError::Corrupt(format!("bad block tag {other}"))),
        }
    }
    if out.len() != expected {
        return Err(DbError::Corrupt(format!(
            "decompressed {} bytes, header said {expected}",
            out.len()
        )));
    }
    Ok(out)
}

/// Compresses `data` unless that would grow it; the first byte distinguishes
/// `C` (compressed) from `S` (stored).
pub fn compress_or_store(data: &[u8]) -> Vec<u8> {
    let compressed = compress(data);
    if compressed.len() < data.len() {
        let mut out = Vec::with_capacity(compressed.len() + 1);
        out.push(b'C');
        out.extend_from_slice(&compressed);
        out
    } else {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(b'S');
        out.extend_from_slice(data);
        out
    }
}

/// Inverse of [`compress_or_store`].
pub fn decompress_or_load(block: &[u8]) -> DbResult<Vec<u8>> {
    match block.first() {
        Some(b'C') => decompress(&block[1..]),
        Some(b'S') => Ok(block[1..].to_vec()),
        _ => Err(DbError::Corrupt("empty or untagged block".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"hello hello hello hello".to_vec(),
            b"abcdefghij".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(5_000).collect::<Vec<u8>>(),
        ] {
            let block = compress(&data);
            assert_eq!(decompress(&block).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"fieldvalue".repeat(1_000);
        let block = compress(&data);
        assert!(
            block.len() * 10 < data.len(),
            "10x expected on repetitive data, got {} -> {}",
            data.len(),
            block.len()
        );
    }

    #[test]
    fn incompressible_data_stored() {
        // Pseudo-random bytes.
        let mut x: u64 = 0x12345;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let block = compress_or_store(&data);
        assert_eq!(block[0], b'S');
        assert_eq!(decompress_or_load(&block).unwrap(), data);
    }

    #[test]
    fn compressible_data_tagged_c() {
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec();
        let block = compress_or_store(&data);
        assert_eq!(block[0], b'C');
        assert_eq!(decompress_or_load(&block).unwrap(), data);
    }

    #[test]
    fn overlapping_matches_rle() {
        let data = vec![7u8; 100_000];
        let block = compress(&data);
        assert!(block.len() < 100);
        assert_eq!(decompress(&block).unwrap(), data);
    }

    #[test]
    fn corrupt_blocks_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0xFF, 0xFF, 0xFF]).is_err());
        assert!(decompress_or_load(&[]).is_err());
        assert!(decompress_or_load(b"Xabc").is_err());
        let good = compress(b"hello world hello world");
        // Truncations must error, never panic.
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut]);
        }
    }

    #[test]
    fn header_length_mismatch_detected() {
        let mut block = compress(b"abcabcabcabc");
        // Corrupt the header length (first varint byte).
        block[0] = block[0].wrapping_add(1);
        assert!(decompress(&block).is_err());
    }
}
