//! Error types for the document store.

use std::fmt;

/// Result alias used across minidoc.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by the document store.
#[derive(Debug)]
pub enum DbError {
    /// Insert of a key that already exists.
    DuplicateKey(String),
    /// Update/read of a key that does not exist (updates only; reads return
    /// `Ok(None)`).
    NotFound(String),
    /// The document could not be encoded (e.g. not a JSON object).
    BadDocument(String),
    /// A stored record failed to decode (corruption).
    Corrupt(String),
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The collection does not exist.
    NoSuchCollection(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            DbError::NotFound(k) => write!(f, "key not found: {k}"),
            DbError::BadDocument(m) => write!(f, "bad document: {m}"),
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::Io(e) => write!(f, "i/o error: {e}"),
            DbError::NoSuchCollection(c) => write!(f, "no such collection: {c}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl DbError {
    /// Helper constructing [`DbError::DuplicateKey`] from raw key bytes.
    pub(crate) fn duplicate(key: &[u8]) -> Self {
        DbError::DuplicateKey(String::from_utf8_lossy(key).into_owned())
    }

    /// Helper constructing [`DbError::NotFound`] from raw key bytes.
    pub(crate) fn not_found(key: &[u8]) -> Self {
        DbError::NotFound(String::from_utf8_lossy(key).into_owned())
    }
}
