//! The wiredTiger-like storage engine.
//!
//! Models the architecture that lets WiredTiger win the paper's demo on
//! write-heavy, multi-threaded workloads:
//!
//! * **Record-level concurrency.** Each collection keeps a key → record-id
//!   index under a `RwLock` whose critical sections are tiny (pointer
//!   lookup/insert); record payloads live in `latch_shards` independently
//!   locked slab shards, so concurrent updates to different records proceed
//!   in parallel. (Real WiredTiger uses MVCC with hazard pointers; sharded
//!   record latches reproduce the same scaling behaviour.)
//! * **Block compression with a decompressed cache.** Writes are charged
//!   the compression cost and the engine accounts the *compressed* size as
//!   its storage footprint; reads are served from the decompressed
//!   in-memory copy (WiredTiger's block cache), so read latency does not
//!   pay decompression for cache-resident data.
//! * **Out-of-place updates.** An update rewrites the record bytes in its
//!   shard slot; there is no padding, so storage is tight.
//! * **WAL + checkpoints.** Mutations append to a write-ahead log. Log
//!   records are framed (serialized + checksummed) *outside* the log lock
//!   — only the buffer append is serialized — so the log does not become
//!   the scaling bottleneck the mmapv1 journal is.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::compress::compress_or_store;
use crate::engine::{EngineStats, RecordCursor, SharedBytes, StatCounters, StorageEngine};
use crate::error::{DbError, DbResult};
use crate::wal::{Wal, WalOp};
use crate::DbConfig;

/// A record's identity: shard + slot within the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordId {
    shard: u32,
    slot: u32,
}

/// A cache-resident record: the raw bytes plus the size its compressed
/// block occupies "on disk". The bytes are `Arc`-shared so reads and
/// cursors hand out the cache copy without duplicating the payload.
#[derive(Debug, Clone)]
struct Record {
    raw: SharedBytes,
    stored_size: u32,
}

/// One latch shard: an independently locked slab of records.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Option<Record>>,
    free: Vec<u32>,
}

impl Shard {
    fn insert(&mut self, record: Record) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(record);
                slot
            }
            None => {
                self.slots.push(Some(record));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn remove(&mut self, slot: u32) -> Option<Record> {
        let taken = self.slots.get_mut(slot as usize)?.take();
        if taken.is_some() {
            self.free.push(slot);
        }
        taken
    }
}

/// One collection: a key index plus sharded record storage.
struct WtCollection {
    index: RwLock<BTreeMap<Vec<u8>, RecordId>>,
    shards: Vec<Mutex<Shard>>,
    next_shard: AtomicU64,
}

impl WtCollection {
    fn new(shards: usize) -> Self {
        WtCollection {
            index: RwLock::new(BTreeMap::new()),
            shards: (0..shards.max(1)).map(|_| Mutex::new(Shard::default())).collect(),
            next_shard: AtomicU64::new(0),
        }
    }

    /// Round-robin shard placement keeps shards balanced under any key
    /// distribution (zipfian included).
    fn place(&self) -> u32 {
        (self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as u32
    }

    fn read_record(&self, id: RecordId) -> Option<Record> {
        let shard = self.shards[id.shard as usize].lock();
        shard.slots.get(id.slot as usize)?.clone()
    }
}

/// First cursor refill size; chunks double per refill up to
/// [`MAX_CURSOR_CHUNK`], so short scans don't overfetch and long scans
/// amortize the lock acquisitions.
const FIRST_CURSOR_CHUNK: usize = 32;
/// Largest refill; bounds how long the index read lock is held.
const MAX_CURSOR_CHUNK: usize = 256;

/// Streaming cursor: refills a chunk of (key, record) pairs under short
/// index/shard lock holds and resumes from the last key it handed out.
struct WtCursor {
    coll: Arc<WtCollection>,
    buf: std::vec::IntoIter<(Vec<u8>, SharedBytes)>,
    resume: Option<Bound<Vec<u8>>>,
    chunk: usize,
}

impl WtCursor {
    fn new(coll: Arc<WtCollection>, start_key: &[u8]) -> Self {
        WtCursor {
            coll,
            buf: Vec::new().into_iter(),
            resume: Some(Bound::Included(start_key.to_vec())),
            chunk: FIRST_CURSOR_CHUNK,
        }
    }

    /// Snapshots the next chunk of index entries, then reads each record
    /// from its shard. Returns false once the index range is exhausted.
    fn refill(&mut self) -> bool {
        let Some(low) = self.resume.take() else { return false };
        let chunk = self.chunk;
        self.chunk = (chunk * 2).min(MAX_CURSOR_CHUNK);
        let ids: Vec<(Vec<u8>, RecordId)> = {
            let index = self.coll.index.read();
            index
                .range((low, Bound::Unbounded))
                .take(chunk)
                .map(|(k, &id)| (k.clone(), id))
                .collect()
        };
        if ids.is_empty() {
            return false;
        }
        if ids.len() == chunk {
            self.resume = Some(Bound::Excluded(ids[ids.len() - 1].0.clone()));
        }
        let mut records = Vec::with_capacity(ids.len());
        for (key, id) in ids {
            // A record may vanish between index snapshot and shard read
            // (concurrent delete); skip those.
            if let Some(record) = self.coll.read_record(id) {
                records.push((key, record.raw));
            }
        }
        self.buf = records.into_iter();
        true
    }
}

impl Iterator for WtCursor {
    type Item = (Vec<u8>, SharedBytes);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buf.next() {
                return Some(item);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

/// The engine.
pub struct WiredTigerEngine {
    collections: RwLock<BTreeMap<String, Arc<WtCollection>>>,
    wal: Mutex<Wal>,
    stats: StatCounters,
    compression: bool,
    latch_shards: usize,
    data_dir: Option<std::path::PathBuf>,
}

impl WiredTigerEngine {
    /// Opens the engine, recovering from checkpoint + WAL when durable.
    pub fn open(config: DbConfig) -> DbResult<Self> {
        let (wal, recovered) = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let checkpoint = dir.join("wt.checkpoint");
                let wal_path = dir.join("wt.wal");
                let mut ops = Wal::replay(&checkpoint)?;
                ops.extend(Wal::replay_and_trim(&wal_path)?);
                let policy = if config.durable_writes {
                    // Group commit: sync every ~32 KiB of log, outside locks.
                    crate::wal::SyncPolicy::GroupCommit { batch_bytes: 32 * 1024 }
                } else {
                    crate::wal::SyncPolicy::Never
                };
                (Wal::open_with_policy(&wal_path, policy)?, ops)
            }
            None => (Wal::in_memory(), Vec::new()),
        };
        let engine = WiredTigerEngine {
            collections: RwLock::new(BTreeMap::new()),
            wal: Mutex::new(wal),
            stats: StatCounters::default(),
            compression: config.compression,
            latch_shards: config.latch_shards.max(1),
            data_dir: config.data_dir.clone(),
        };
        for op in recovered {
            match op {
                WalOp::Put { collection, key, value } => {
                    engine.put_internal(&collection, &key, &value, true, false)?;
                }
                WalOp::Delete { collection, key } => {
                    engine.delete_internal(&collection, &key, false)?;
                }
                WalOp::DropCollection { collection } => {
                    engine.collections.write().remove(&collection);
                }
            }
        }
        Ok(engine)
    }

    fn coll(&self, name: &str) -> Option<Arc<WtCollection>> {
        self.collections.read().get(name).cloned()
    }

    fn coll_or_create(&self, name: &str) -> Arc<WtCollection> {
        if let Some(c) = self.coll(name) {
            return c;
        }
        let mut map = self.collections.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(WtCollection::new(self.latch_shards))),
        )
    }

    /// Builds the cache record: the write path pays the block-compression
    /// CPU here (to produce the on-disk block and learn its size).
    fn make_record(&self, value: &[u8]) -> Record {
        let stored_size = if self.compression {
            compress_or_store(value).len() as u32
        } else {
            value.len() as u32 + 1
        };
        Record { raw: SharedBytes::from(value), stored_size }
    }

    /// WAL append with the framing done before taking the log lock and the
    /// group-commit fsync performed after releasing it, so the log lock is
    /// only ever held for a buffered write.
    fn log_append(&self, op: &WalOp) -> DbResult<()> {
        let framed = Wal::frame(op);
        let sync_handle = {
            let mut wal = self.wal.lock();
            wal.append_framed(&framed)?;
            wal.take_sync_handle()?
        };
        if let Some(file) = sync_handle {
            if let Some(inj) = chronos_util::fail_eval!("minidoc.wal.sync") {
                let msg = match inj {
                    chronos_util::fail::Injected::Error(m) => m,
                    chronos_util::fail::Injected::Torn { .. } => {
                        "wal sync failed: injected torn write".to_string()
                    }
                };
                return Err(DbError::Io(std::io::Error::other(msg)));
            }
            file.sync_data()?;
        }
        Ok(())
    }

    fn log_put(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        self.log_append(&WalOp::Put {
            collection: collection.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Core insert/replace. `allow_replace` selects upsert semantics, `log`
    /// is false during recovery replay.
    fn put_internal(
        &self,
        collection: &str,
        key: &[u8],
        value: &[u8],
        allow_replace: bool,
        log: bool,
    ) -> DbResult<bool> {
        let coll = self.coll_or_create(collection);
        // Fast path for updates: shared index lock only.
        let existing = { coll.index.read().get(key).copied() };
        let replaced = match existing {
            Some(id) => {
                if !allow_replace {
                    return Err(DbError::duplicate(key));
                }
                let record = self.make_record(value);
                let new_stored = record.stored_size as u64;
                let mut shard = coll.shards[id.shard as usize].lock();
                let slot = shard.slots.get_mut(id.slot as usize).and_then(Option::as_mut);
                match slot {
                    Some(old) => {
                        let old_stored = old.stored_size as u64;
                        let old_logical = old.raw.len() as u64;
                        *old = record;
                        drop(shard);
                        StatCounters::sub(&self.stats.stored_bytes, old_stored);
                        StatCounters::add(&self.stats.stored_bytes, new_stored);
                        StatCounters::sub(&self.stats.logical_bytes, old_logical);
                        StatCounters::add(&self.stats.logical_bytes, value.len() as u64);
                        StatCounters::add(&self.stats.inplace_updates, 1);
                    }
                    None => {
                        // Index pointed at a freed slot: lost a race with a
                        // concurrent delete; treat as fresh insert.
                        drop(shard);
                        return self.put_internal(collection, key, value, allow_replace, log);
                    }
                }
                true
            }
            None => {
                let record = self.make_record(value);
                let stored = record.stored_size as u64;
                // Take the index write lock only to publish the pointer.
                let mut index = coll.index.write();
                if index.contains_key(key) {
                    drop(index);
                    if !allow_replace {
                        return Err(DbError::duplicate(key));
                    }
                    return self.put_internal(collection, key, value, allow_replace, log);
                }
                let shard_no = coll.place();
                let slot = {
                    let mut shard = coll.shards[shard_no as usize].lock();
                    shard.insert(record)
                };
                index.insert(key.to_vec(), RecordId { shard: shard_no, slot });
                drop(index);
                StatCounters::add(&self.stats.documents, 1);
                StatCounters::add(&self.stats.logical_bytes, value.len() as u64);
                StatCounters::add(&self.stats.stored_bytes, stored);
                false
            }
        };
        if log {
            self.log_put(collection, key, value)?;
        }
        Ok(replaced)
    }

    fn delete_internal(&self, collection: &str, key: &[u8], log: bool) -> DbResult<bool> {
        let Some(coll) = self.coll(collection) else { return Ok(false) };
        let id = {
            let mut index = coll.index.write();
            match index.remove(key) {
                Some(id) => id,
                None => return Ok(false),
            }
        };
        let removed = {
            let mut shard = coll.shards[id.shard as usize].lock();
            shard.remove(id.slot)
        };
        if let Some(record) = removed {
            StatCounters::sub(&self.stats.documents, 1);
            StatCounters::sub(&self.stats.stored_bytes, record.stored_size as u64);
            StatCounters::sub(&self.stats.logical_bytes, record.raw.len() as u64);
        }
        if log {
            self.log_append(&WalOp::Delete {
                collection: collection.to_string(),
                key: key.to_vec(),
            })?;
        }
        Ok(true)
    }
}

impl StorageEngine for WiredTigerEngine {
    fn insert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        self.put_internal(collection, key, value, false, true)?;
        StatCounters::add(&self.stats.inserts, 1);
        Ok(())
    }

    fn get(&self, collection: &str, key: &[u8]) -> DbResult<Option<SharedBytes>> {
        StatCounters::add(&self.stats.reads, 1);
        let Some(coll) = self.coll(collection) else { return Ok(None) };
        let id = { coll.index.read().get(key).copied() };
        Ok(id.and_then(|id| coll.read_record(id)).map(|r| r.raw))
    }

    fn get_many(&self, collection: &str, keys: &[Vec<u8>]) -> DbResult<Vec<Option<SharedBytes>>> {
        StatCounters::add(&self.stats.reads, keys.len() as u64);
        let mut out = vec![None; keys.len()];
        let Some(coll) = self.coll(collection) else { return Ok(out) };
        // One index read-lock resolves every key to its record id.
        let mut hits: Vec<(usize, RecordId)> = {
            let index = coll.index.read();
            keys.iter().enumerate().filter_map(|(i, k)| index.get(k).map(|&id| (i, id))).collect()
        };
        // Group by shard so each shard latch is taken once per batch.
        hits.sort_unstable_by_key(|&(_, id)| (id.shard, id.slot));
        let mut i = 0;
        while i < hits.len() {
            let shard_no = hits[i].1.shard;
            let shard = coll.shards[shard_no as usize].lock();
            while i < hits.len() && hits[i].1.shard == shard_no {
                let (pos, id) = hits[i];
                out[pos] = shard
                    .slots
                    .get(id.slot as usize)
                    .and_then(Option::as_ref)
                    .map(|r| Arc::clone(&r.raw));
                i += 1;
            }
        }
        Ok(out)
    }

    fn update(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let exists =
            self.coll(collection).map(|c| c.index.read().contains_key(key)).unwrap_or(false);
        if !exists {
            return Err(DbError::not_found(key));
        }
        self.put_internal(collection, key, value, true, true)?;
        StatCounters::add(&self.stats.updates, 1);
        Ok(())
    }

    fn upsert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let replaced = self.put_internal(collection, key, value, true, true)?;
        StatCounters::add(if replaced { &self.stats.updates } else { &self.stats.inserts }, 1);
        Ok(())
    }

    fn delete(&self, collection: &str, key: &[u8]) -> DbResult<bool> {
        let existed = self.delete_internal(collection, key, true)?;
        if existed {
            StatCounters::add(&self.stats.deletes, 1);
        }
        Ok(existed)
    }

    fn cursor(&self, collection: &str, start_key: &[u8]) -> DbResult<RecordCursor> {
        StatCounters::add(&self.stats.scans, 1);
        let Some(coll) = self.coll(collection) else { return Ok(RecordCursor::empty()) };
        Ok(RecordCursor::new(WtCursor::new(coll, start_key)))
    }

    fn count(&self, collection: &str) -> u64 {
        self.coll(collection).map(|c| c.index.read().len() as u64).unwrap_or(0)
    }

    fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    fn drop_collection(&self, collection: &str) -> DbResult<()> {
        let removed = self.collections.write().remove(collection);
        if let Some(coll) = removed {
            let index = coll.index.read();
            let mut docs = 0u64;
            let mut stored = 0u64;
            let mut logical = 0u64;
            for (_, &id) in index.iter() {
                if let Some(record) = coll.read_record(id) {
                    docs += 1;
                    stored += record.stored_size as u64;
                    logical += record.raw.len() as u64;
                }
            }
            StatCounters::sub(&self.stats.documents, docs);
            StatCounters::sub(&self.stats.stored_bytes, stored);
            StatCounters::sub(&self.stats.logical_bytes, logical);
            self.log_append(&WalOp::DropCollection { collection: collection.to_string() })?;
        }
        Ok(())
    }

    fn stats(&self) -> EngineStats {
        let wal_bytes = self.wal.lock().appended_bytes;
        self.stats.snapshot(wal_bytes)
    }

    fn checkpoint(&self) -> DbResult<()> {
        let Some(dir) = &self.data_dir else { return Ok(()) };
        let path = dir.join("wt.checkpoint");
        let tmp = path.with_extension("tmp");
        {
            let mut snapshot = Wal::open(&tmp, false)?;
            let collections = self.collections.read();
            for (name, coll) in collections.iter() {
                let entries: Vec<(Vec<u8>, RecordId)> = {
                    let index = coll.index.read();
                    index.iter().map(|(k, &id)| (k.clone(), id)).collect()
                };
                for (key, id) in entries {
                    if let Some(record) = coll.read_record(id) {
                        snapshot.append(&WalOp::Put {
                            collection: name.clone(),
                            key,
                            value: record.raw.to_vec(),
                        })?;
                    }
                }
            }
        }
        if let Some(inj) = chronos_util::fail_eval!("minidoc.checkpoint.rename") {
            let msg = match inj {
                chronos_util::fail::Injected::Error(m) => m,
                chronos_util::fail::Injected::Torn { .. } => {
                    "checkpoint rename failed: injected torn write".to_string()
                }
            };
            return Err(DbError::Io(std::io::Error::other(msg)));
        }
        std::fs::rename(&tmp, &path)?;
        self.wal.lock().truncate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;

    fn engine() -> WiredTigerEngine {
        WiredTigerEngine::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap()
    }

    #[test]
    fn compression_reduces_stored_bytes() {
        let e = engine();
        let compressible = b"abab".repeat(100);
        e.insert("c", b"k", &compressible).unwrap();
        let stats = e.stats();
        assert_eq!(stats.logical_bytes, 400);
        assert!(stats.stored_bytes < 100, "stored {} bytes", stats.stored_bytes);
    }

    #[test]
    fn no_compression_mode_stores_raw() {
        let config = DbConfig::in_memory(EngineKind::WiredTiger).with_compression(false);
        let e = WiredTigerEngine::open(config).unwrap();
        e.insert("c", b"k", &b"abab".repeat(100)).unwrap();
        assert_eq!(e.stats().stored_bytes, 401); // payload + tag byte
    }

    #[test]
    fn reads_return_raw_bytes_from_cache() {
        let e = engine();
        let payload = b"zzzz".repeat(64);
        e.insert("c", b"k", &payload).unwrap();
        assert_eq!(e.get("c", b"k").unwrap().unwrap().to_vec(), payload);
    }

    #[test]
    fn update_replaces_payload_and_stats() {
        let e = engine();
        e.insert("c", b"k", b"short").unwrap();
        e.update("c", b"k", &b"x".repeat(1000)).unwrap();
        assert_eq!(e.get("c", b"k").unwrap().unwrap().to_vec(), b"x".repeat(1000));
        assert_eq!(e.stats().logical_bytes, 1000);
        assert_eq!(e.stats().documents, 1);
    }

    #[test]
    fn deleted_slots_are_reused() {
        let e = engine();
        e.insert("c", b"a", b"payload-a").unwrap();
        e.delete("c", b"a").unwrap();
        e.insert("c", b"b", b"payload-b").unwrap();
        assert_eq!(e.stats().documents, 1);
        assert_eq!(e.get("c", b"b").unwrap().unwrap().to_vec(), b"payload-b");
    }

    #[test]
    fn concurrent_disjoint_updates() {
        let e = Arc::new(engine());
        for i in 0..64u32 {
            e.insert("c", format!("k{i:02}").as_bytes(), b"init").unwrap();
        }
        chronos_util::pool::scoped_indexed(8, |t| {
            for round in 0..50u32 {
                let key = format!("k{:02}", (t as u32 * 8 + round % 8) % 64);
                e.update("c", key.as_bytes(), format!("t{t}-r{round}").as_bytes()).unwrap();
            }
        });
        assert_eq!(e.stats().documents, 64);
        assert_eq!(e.stats().updates, 400);
    }

    #[test]
    fn durable_roundtrip_with_recovery() {
        let dir = std::env::temp_dir().join(format!("minidoc-wt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = DbConfig::at_dir(EngineKind::WiredTiger, &dir);
        {
            let e = WiredTigerEngine::open(config.clone()).unwrap();
            e.insert("c", b"k1", b"v1").unwrap();
            e.insert("c", b"k2", b"v2").unwrap();
            e.update("c", b"k1", b"v1b").unwrap();
            e.delete("c", b"k2").unwrap();
            e.checkpoint().unwrap();
            e.insert("c", b"k3", b"v3").unwrap(); // lands in the WAL only
        }
        {
            let e = WiredTigerEngine::open(config).unwrap();
            assert_eq!(e.get("c", b"k1").unwrap().unwrap().to_vec(), b"v1b");
            assert!(e.get("c", b"k2").unwrap().is_none());
            assert_eq!(e.get("c", b"k3").unwrap().unwrap().to_vec(), b"v3");
            assert_eq!(e.stats().documents, 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_skips_concurrently_deleted() {
        let e = engine();
        for i in 0..10u32 {
            e.insert("c", format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let rows = e.scan("c", b"k3", 4).unwrap();
        let keys: Vec<String> =
            rows.iter().map(|(k, _)| String::from_utf8_lossy(k).into_owned()).collect();
        assert_eq!(keys, vec!["k3", "k4", "k5", "k6"]);
    }

    #[test]
    fn cursor_streams_across_chunk_boundaries() {
        let e = engine();
        for i in 0..600u32 {
            e.insert("c", format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        let rows: Vec<(Vec<u8>, crate::engine::SharedBytes)> =
            e.cursor("c", b"k0003").unwrap().collect();
        assert_eq!(rows.len(), 597, "cursor crosses the {MAX_CURSOR_CHUNK}-entry refill boundary");
        assert_eq!(rows[0].0, b"k0003");
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        assert_eq!(&*rows[596].1, b"v599");
    }

    #[test]
    fn get_many_aligns_hits_and_misses() {
        let e = engine();
        for i in 0..20u32 {
            e.insert("c", format!("k{i:02}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        let keys: Vec<Vec<u8>> =
            vec![b"k03".to_vec(), b"missing".to_vec(), b"k19".to_vec(), b"k00".to_vec()];
        let got = e.get_many("c", &keys).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_deref(), Some(&b"v3"[..]));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_deref(), Some(&b"v19"[..]));
        assert_eq!(got[3].as_deref(), Some(&b"v0"[..]));
        assert!(e.get_many("absent", &keys).unwrap().iter().all(Option::is_none));
    }

    #[test]
    fn stored_size_tracks_compressibility() {
        let e = engine();
        // Compressible record: stored << logical.
        e.insert("c", b"a", &b"ab".repeat(500)).unwrap();
        let after_a = e.stats().stored_bytes;
        assert!(after_a < 200);
        // Incompressible record: stored ~= logical (+ tag).
        let mut x: u64 = 99;
        let noise: Vec<u8> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        e.insert("c", b"b", &noise).unwrap();
        let delta = e.stats().stored_bytes - after_a;
        assert!((1000..=1010).contains(&delta), "delta {delta}");
    }
}
