//! The mmapv1-like storage engine.
//!
//! Models the architecture of MongoDB's original memory-mapped engine:
//!
//! * **Collection-level locking.** One `RwLock` guards each collection;
//!   every write holds it exclusively for the whole operation — allocation,
//!   record copy, index maintenance *and* the journal append. This is the
//!   property that makes mmapv1 plateau under concurrent writers in the
//!   paper's demo.
//! * **Extent allocation with power-of-2 padding.** Records live in slots
//!   whose size is the next power of two of the record length (MongoDB's
//!   "powerOf2Sizes" allocation), so grown updates usually fit in place.
//! * **In-place updates.** An update that fits its slot overwrites the
//!   bytes; one that does not frees the slot to a size-classed free list and
//!   moves the record (tracked in the stats as `record_moves`).
//! * **No compression.** Stored bytes ≈ padded record bytes, which is why
//!   this engine's storage footprint exceeds wiredTiger's.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::engine::{EngineStats, RecordCursor, SharedBytes, StatCounters, StorageEngine};
use crate::error::{DbError, DbResult};
use crate::wal::{Wal, WalOp};
use crate::DbConfig;

/// Extent size: 1 MiB slabs (MongoDB grew extents up to 2 GB; a fixed size
/// keeps allocation deterministic for benchmarks).
const EXTENT_SIZE: usize = 1 << 20;
/// Smallest slot handed out.
const MIN_SLOT: u32 = 32;

/// Location of a record slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordLoc {
    extent: u32,
    offset: u32,
    slot_size: u32,
}

/// One collection's memory-mapped-style storage.
#[derive(Debug, Default)]
struct MmapCollection {
    extents: Vec<Vec<u8>>,
    index: BTreeMap<Vec<u8>, RecordLoc>,
    /// Freed slots by slot size (size classes are powers of two).
    free_lists: HashMap<u32, Vec<RecordLoc>>,
    /// Bump pointer into the last extent.
    tail_extent: usize,
    tail_offset: usize,
}

impl MmapCollection {
    fn slot_size_for(len: usize) -> u32 {
        let needed = (len + 4).max(MIN_SLOT as usize);
        needed.next_power_of_two() as u32
    }

    fn allocate(&mut self, slot_size: u32) -> RecordLoc {
        if let Some(free) = self.free_lists.get_mut(&slot_size) {
            if let Some(loc) = free.pop() {
                return loc;
            }
        }
        let slot = slot_size as usize;
        if self.extents.is_empty() || self.tail_offset + slot > self.extents[self.tail_extent].len()
        {
            // Oversized records get a dedicated extent.
            let size = EXTENT_SIZE.max(slot);
            self.extents.push(vec![0u8; size]);
            self.tail_extent = self.extents.len() - 1;
            self.tail_offset = 0;
        }
        let loc = RecordLoc {
            extent: self.tail_extent as u32,
            offset: self.tail_offset as u32,
            slot_size,
        };
        self.tail_offset += slot;
        loc
    }

    fn write_record(&mut self, loc: RecordLoc, value: &[u8]) {
        let extent = &mut self.extents[loc.extent as usize];
        let start = loc.offset as usize;
        extent[start..start + 4].copy_from_slice(&(value.len() as u32).to_le_bytes());
        extent[start + 4..start + 4 + value.len()].copy_from_slice(value);
    }

    /// The record payload borrowed straight out of its extent.
    fn record_slice(&self, loc: RecordLoc) -> &[u8] {
        let extent = &self.extents[loc.extent as usize];
        let start = loc.offset as usize;
        let len = u32::from_le_bytes(extent[start..start + 4].try_into().unwrap()) as usize;
        &extent[start + 4..start + 4 + len]
    }

    fn read_record(&self, loc: RecordLoc) -> Vec<u8> {
        self.record_slice(loc).to_vec()
    }

    fn free(&mut self, loc: RecordLoc) {
        self.free_lists.entry(loc.slot_size).or_default().push(loc);
    }
}

/// First cursor refill size; chunks double per refill up to
/// [`MAX_CURSOR_CHUNK`], so short scans don't overfetch and long scans
/// amortize the lock acquisitions.
const FIRST_CURSOR_CHUNK: usize = 32;
/// Largest refill; bounds the collection read-lock hold.
const MAX_CURSOR_CHUNK: usize = 256;

/// Streaming cursor: snapshots a chunk of keys in key order, copies the
/// payloads out of the extents in (extent, offset) order — sequential
/// memory reads — then emits them back in key order.
struct MmapCursor {
    coll: Arc<RwLock<MmapCollection>>,
    buf: std::vec::IntoIter<(Vec<u8>, SharedBytes)>,
    resume: Option<Bound<Vec<u8>>>,
    chunk: usize,
}

impl MmapCursor {
    fn new(coll: Arc<RwLock<MmapCollection>>, start_key: &[u8]) -> Self {
        MmapCursor {
            coll,
            buf: Vec::new().into_iter(),
            resume: Some(Bound::Included(start_key.to_vec())),
            chunk: FIRST_CURSOR_CHUNK,
        }
    }

    fn refill(&mut self) -> bool {
        let Some(low) = self.resume.take() else { return false };
        let chunk = self.chunk;
        self.chunk = (chunk * 2).min(MAX_CURSOR_CHUNK);
        let coll = Arc::clone(&self.coll);
        let c = coll.read();
        let entries: Vec<(Vec<u8>, RecordLoc)> = c
            .index
            .range((low, Bound::Unbounded))
            .take(chunk)
            .map(|(k, &loc)| (k.clone(), loc))
            .collect();
        if entries.is_empty() {
            return false;
        }
        if entries.len() == chunk {
            self.resume = Some(Bound::Excluded(entries[entries.len() - 1].0.clone()));
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_unstable_by_key(|&i| (entries[i].1.extent, entries[i].1.offset));
        let mut values: Vec<Option<SharedBytes>> = vec![None; entries.len()];
        for i in order {
            values[i] = Some(SharedBytes::from(c.record_slice(entries[i].1)));
        }
        self.buf = entries
            .into_iter()
            .zip(values)
            .map(|((key, _), value)| (key, value.expect("filled above")))
            .collect::<Vec<_>>()
            .into_iter();
        true
    }
}

impl Iterator for MmapCursor {
    type Item = (Vec<u8>, SharedBytes);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buf.next() {
                return Some(item);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

/// The engine: a map of independently locked collections plus one global
/// journal (mmapv1 had a single journal per dbpath).
pub struct MmapV1Engine {
    collections: RwLock<BTreeMap<String, Arc<RwLock<MmapCollection>>>>,
    journal: Mutex<Wal>,
    stats: StatCounters,
}

impl MmapV1Engine {
    /// Opens the engine, replaying the snapshot + journal when `config`
    /// points at a data directory.
    pub fn open(config: DbConfig) -> DbResult<Self> {
        let (journal, recovered) = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let snapshot = dir.join("mmapv1.snapshot");
                let journal_path = dir.join("mmapv1.journal");
                let mut ops = Wal::replay(&snapshot)?;
                ops.extend(Wal::replay_and_trim(&journal_path)?);
                (Wal::open(&journal_path, config.durable_writes)?, ops)
            }
            None => (Wal::in_memory(), Vec::new()),
        };
        let engine = MmapV1Engine {
            collections: RwLock::new(BTreeMap::new()),
            journal: Mutex::new(journal),
            stats: StatCounters::default(),
        };
        for op in recovered {
            match op {
                WalOp::Put { collection, key, value } => {
                    engine.apply_put(&collection, &key, &value)?;
                }
                WalOp::Delete { collection, key } => {
                    engine.apply_delete(&collection, &key);
                }
                WalOp::DropCollection { collection } => {
                    engine.collections.write().remove(&collection);
                }
            }
        }
        Ok(engine)
    }

    fn coll(&self, name: &str) -> Option<Arc<RwLock<MmapCollection>>> {
        self.collections.read().get(name).cloned()
    }

    fn coll_or_create(&self, name: &str) -> Arc<RwLock<MmapCollection>> {
        if let Some(c) = self.coll(name) {
            return c;
        }
        let mut map = self.collections.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(RwLock::new(MmapCollection::default()))),
        )
    }

    /// Raw upsert used during recovery (no journaling, but stats counted so
    /// `documents`/`stored_bytes` are correct after restart).
    fn apply_put(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let coll = self.coll_or_create(collection);
        let mut c = coll.write();
        self.put_locked(&mut c, key, value, true)?;
        Ok(())
    }

    fn apply_delete(&self, collection: &str, key: &[u8]) {
        if let Some(coll) = self.coll(collection) {
            let mut c = coll.write();
            if let Some(loc) = c.index.remove(key) {
                let len = c.read_record(loc).len();
                c.free(loc);
                StatCounters::sub(&self.stats.documents, 1);
                StatCounters::sub(&self.stats.logical_bytes, len as u64);
                StatCounters::sub(&self.stats.stored_bytes, loc.slot_size as u64);
            }
        }
    }

    /// Insert-or-replace under an already-held write lock. `allow_replace`
    /// distinguishes upsert/recovery from strict insert.
    fn put_locked(
        &self,
        c: &mut MmapCollection,
        key: &[u8],
        value: &[u8],
        allow_replace: bool,
    ) -> DbResult<bool> {
        if let Some(inj) = chronos_util::fail_eval!("minidoc.extent.write") {
            let msg = match inj {
                chronos_util::fail::Injected::Error(m) => m,
                chronos_util::fail::Injected::Torn { .. } => {
                    "extent write failed: injected torn write".to_string()
                }
            };
            return Err(DbError::Io(std::io::Error::other(msg)));
        }
        if let Some(&loc) = c.index.get(key) {
            if !allow_replace {
                return Err(DbError::duplicate(key));
            }
            let old_len = c.read_record(loc).len() as u64;
            let replaced = self.update_in_slot(c, key.to_vec(), loc, value);
            StatCounters::sub(&self.stats.logical_bytes, old_len);
            StatCounters::add(&self.stats.logical_bytes, value.len() as u64);
            if !replaced {
                // moved: stored bytes adjusted inside update_in_slot
            }
            return Ok(true);
        }
        let slot_size = MmapCollection::slot_size_for(value.len());
        let loc = c.allocate(slot_size);
        c.write_record(loc, value);
        c.index.insert(key.to_vec(), loc);
        StatCounters::add(&self.stats.documents, 1);
        StatCounters::add(&self.stats.logical_bytes, value.len() as u64);
        StatCounters::add(&self.stats.stored_bytes, slot_size as u64);
        Ok(false)
    }

    /// Writes `value` for `key` whose current slot is `loc`; in place when it
    /// fits, otherwise move. Returns `true` for in-place.
    fn update_in_slot(
        &self,
        c: &mut MmapCollection,
        key: Vec<u8>,
        loc: RecordLoc,
        value: &[u8],
    ) -> bool {
        if value.len() + 4 <= loc.slot_size as usize {
            c.write_record(loc, value);
            StatCounters::add(&self.stats.inplace_updates, 1);
            true
        } else {
            c.free(loc);
            let slot_size = MmapCollection::slot_size_for(value.len());
            let new_loc = c.allocate(slot_size);
            c.write_record(new_loc, value);
            c.index.insert(key, new_loc);
            StatCounters::sub(&self.stats.stored_bytes, loc.slot_size as u64);
            StatCounters::add(&self.stats.stored_bytes, slot_size as u64);
            StatCounters::add(&self.stats.record_moves, 1);
            false
        }
    }

    /// Journal append performed **while the collection write lock is held**
    /// (the defining serialization cost of this engine).
    fn journal_put(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        self.journal.lock().append(&WalOp::Put {
            collection: collection.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }
}

impl StorageEngine for MmapV1Engine {
    fn insert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let coll = self.coll_or_create(collection);
        let mut c = coll.write();
        if c.index.contains_key(key) {
            return Err(DbError::duplicate(key));
        }
        self.put_locked(&mut c, key, value, false)?;
        self.journal_put(collection, key, value)?;
        drop(c);
        StatCounters::add(&self.stats.inserts, 1);
        Ok(())
    }

    fn get(&self, collection: &str, key: &[u8]) -> DbResult<Option<SharedBytes>> {
        StatCounters::add(&self.stats.reads, 1);
        let Some(coll) = self.coll(collection) else { return Ok(None) };
        let c = coll.read();
        Ok(c.index.get(key).map(|&loc| SharedBytes::from(c.record_slice(loc))))
    }

    fn get_many(&self, collection: &str, keys: &[Vec<u8>]) -> DbResult<Vec<Option<SharedBytes>>> {
        StatCounters::add(&self.stats.reads, keys.len() as u64);
        let mut out = vec![None; keys.len()];
        let Some(coll) = self.coll(collection) else { return Ok(out) };
        // One read-lock hold for the whole batch; copies happen in
        // (extent, offset) order so extent memory is walked sequentially.
        let c = coll.read();
        let mut hits: Vec<(usize, RecordLoc)> = keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| c.index.get(k).map(|&loc| (i, loc)))
            .collect();
        hits.sort_unstable_by_key(|&(_, loc)| (loc.extent, loc.offset));
        for (pos, loc) in hits {
            out[pos] = Some(SharedBytes::from(c.record_slice(loc)));
        }
        Ok(out)
    }

    fn update(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let coll = self.coll(collection).ok_or_else(|| DbError::not_found(key))?;
        let mut c = coll.write();
        let &loc = c.index.get(key).ok_or_else(|| DbError::not_found(key))?;
        let old_len = c.read_record(loc).len() as u64;
        self.update_in_slot(&mut c, key.to_vec(), loc, value);
        StatCounters::sub(&self.stats.logical_bytes, old_len);
        StatCounters::add(&self.stats.logical_bytes, value.len() as u64);
        self.journal_put(collection, key, value)?;
        drop(c);
        StatCounters::add(&self.stats.updates, 1);
        Ok(())
    }

    fn upsert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()> {
        let coll = self.coll_or_create(collection);
        let mut c = coll.write();
        let replaced = self.put_locked(&mut c, key, value, true)?;
        self.journal_put(collection, key, value)?;
        drop(c);
        StatCounters::add(if replaced { &self.stats.updates } else { &self.stats.inserts }, 1);
        Ok(())
    }

    fn delete(&self, collection: &str, key: &[u8]) -> DbResult<bool> {
        let Some(coll) = self.coll(collection) else { return Ok(false) };
        let mut c = coll.write();
        let Some(loc) = c.index.remove(key) else { return Ok(false) };
        let len = c.read_record(loc).len();
        c.free(loc);
        self.journal
            .lock()
            .append(&WalOp::Delete { collection: collection.to_string(), key: key.to_vec() })?;
        drop(c);
        StatCounters::sub(&self.stats.documents, 1);
        StatCounters::sub(&self.stats.logical_bytes, len as u64);
        StatCounters::sub(&self.stats.stored_bytes, loc.slot_size as u64);
        StatCounters::add(&self.stats.deletes, 1);
        Ok(true)
    }

    fn cursor(&self, collection: &str, start_key: &[u8]) -> DbResult<RecordCursor> {
        StatCounters::add(&self.stats.scans, 1);
        let Some(coll) = self.coll(collection) else { return Ok(RecordCursor::empty()) };
        Ok(RecordCursor::new(MmapCursor::new(coll, start_key)))
    }

    fn count(&self, collection: &str) -> u64 {
        self.coll(collection).map(|c| c.read().index.len() as u64).unwrap_or(0)
    }

    fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    fn drop_collection(&self, collection: &str) -> DbResult<()> {
        let removed = self.collections.write().remove(collection);
        if let Some(coll) = removed {
            let c = coll.read();
            let mut docs = 0u64;
            let mut logical = 0u64;
            let mut stored = 0u64;
            for (_, &loc) in c.index.iter() {
                docs += 1;
                logical += c.read_record(loc).len() as u64;
                stored += loc.slot_size as u64;
            }
            StatCounters::sub(&self.stats.documents, docs);
            StatCounters::sub(&self.stats.logical_bytes, logical);
            StatCounters::sub(&self.stats.stored_bytes, stored);
            self.journal
                .lock()
                .append(&WalOp::DropCollection { collection: collection.to_string() })?;
        }
        Ok(())
    }

    fn stats(&self) -> EngineStats {
        let wal_bytes = self.journal.lock().appended_bytes;
        self.stats.snapshot(wal_bytes)
    }

    fn checkpoint(&self) -> DbResult<()> {
        let mut journal = self.journal.lock();
        let Some(path) = journal_snapshot_path(&journal) else {
            return Ok(()); // in-memory: nothing to do
        };
        // Write all live records as a fresh snapshot, then truncate the
        // journal. Collections are read-locked one at a time.
        let tmp = path.with_extension("tmp");
        {
            let mut snapshot = Wal::open(&tmp, false)?;
            let collections = self.collections.read();
            for (name, coll) in collections.iter() {
                let c = coll.read();
                for (key, &loc) in c.index.iter() {
                    snapshot.append(&WalOp::Put {
                        collection: name.clone(),
                        key: key.clone(),
                        value: c.read_record(loc),
                    })?;
                }
            }
        }
        if let Some(inj) = chronos_util::fail_eval!("minidoc.checkpoint.rename") {
            let msg = match inj {
                chronos_util::fail::Injected::Error(m) => m,
                chronos_util::fail::Injected::Torn { .. } => {
                    "checkpoint rename failed: injected torn write".to_string()
                }
            };
            return Err(DbError::Io(std::io::Error::other(msg)));
        }
        std::fs::rename(&tmp, &path)?;
        journal.truncate()?;
        Ok(())
    }
}

/// Derives the snapshot path from the journal's path (`None` in memory).
fn journal_snapshot_path(journal: &Wal) -> Option<std::path::PathBuf> {
    journal.path().map(|p| p.with_file_name("mmapv1.snapshot"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;

    fn engine() -> MmapV1Engine {
        MmapV1Engine::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap()
    }

    #[test]
    fn slot_sizes_are_powers_of_two() {
        assert_eq!(MmapCollection::slot_size_for(0), 32);
        assert_eq!(MmapCollection::slot_size_for(28), 32);
        assert_eq!(MmapCollection::slot_size_for(29), 64);
        assert_eq!(MmapCollection::slot_size_for(100), 128);
        assert_eq!(MmapCollection::slot_size_for(1000), 1024);
    }

    #[test]
    fn freed_slots_are_reused() {
        let e = engine();
        e.insert("c", b"a", &[1u8; 100]).unwrap();
        let stored_before = e.stats().stored_bytes;
        e.delete("c", b"a").unwrap();
        e.insert("c", b"b", &[2u8; 100]).unwrap();
        assert_eq!(e.stats().stored_bytes, stored_before, "same size class reuses the slot");
        let coll = e.coll("c").unwrap();
        let c = coll.read();
        assert_eq!(c.extents.len(), 1);
        assert_eq!(c.tail_offset, 128, "only one slot ever bump-allocated");
    }

    #[test]
    fn inplace_update_when_fits() {
        let e = engine();
        e.insert("c", b"k", &[1u8; 100]).unwrap();
        e.update("c", b"k", &[2u8; 120]).unwrap(); // still fits 128-slot
        let stats = e.stats();
        assert_eq!(stats.inplace_updates, 1);
        assert_eq!(stats.record_moves, 0);
        assert_eq!(e.get("c", b"k").unwrap().unwrap().to_vec(), vec![2u8; 120]);
    }

    #[test]
    fn move_when_record_outgrows_slot() {
        let e = engine();
        e.insert("c", b"k", &[1u8; 100]).unwrap();
        e.update("c", b"k", &[2u8; 300]).unwrap();
        let stats = e.stats();
        assert_eq!(stats.record_moves, 1);
        assert_eq!(e.get("c", b"k").unwrap().unwrap().to_vec(), vec![2u8; 300]);
    }

    #[test]
    fn oversized_records_get_dedicated_extents() {
        let e = engine();
        let big = vec![7u8; 3 * EXTENT_SIZE];
        e.insert("c", b"big", &big).unwrap();
        assert_eq!(e.get("c", b"big").unwrap().unwrap().to_vec(), big);
    }

    #[test]
    fn durable_roundtrip_with_recovery() {
        let dir = std::env::temp_dir().join(format!("minidoc-mmap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = DbConfig::at_dir(EngineKind::MmapV1, &dir);
        {
            let e = MmapV1Engine::open(config.clone()).unwrap();
            e.insert("c", b"k1", b"v1").unwrap();
            e.insert("c", b"k2", b"v2").unwrap();
            e.update("c", b"k1", b"v1-new").unwrap();
            e.delete("c", b"k2").unwrap();
        }
        {
            let e = MmapV1Engine::open(config.clone()).unwrap();
            assert_eq!(e.get("c", b"k1").unwrap().unwrap().to_vec(), b"v1-new");
            assert!(e.get("c", b"k2").unwrap().is_none());
            assert_eq!(e.stats().documents, 1);
            e.checkpoint().unwrap();
        }
        {
            // After checkpoint the journal is empty but the snapshot holds.
            let e = MmapV1Engine::open(config).unwrap();
            assert_eq!(e.get("c", b"k1").unwrap().unwrap().to_vec(), b"v1-new");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_streams_across_chunk_boundaries() {
        let e = engine();
        for i in 0..600u32 {
            e.insert("c", format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        let rows: Vec<(Vec<u8>, SharedBytes)> = e.cursor("c", b"k0003").unwrap().collect();
        assert_eq!(rows.len(), 597, "cursor crosses the {MAX_CURSOR_CHUNK}-entry refill boundary");
        assert_eq!(rows[0].0, b"k0003");
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        assert_eq!(&*rows[596].1, b"v599");
    }

    #[test]
    fn get_many_aligns_hits_and_misses() {
        let e = engine();
        for i in 0..20u32 {
            e.insert("c", format!("k{i:02}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        let keys: Vec<Vec<u8>> =
            vec![b"k03".to_vec(), b"missing".to_vec(), b"k19".to_vec(), b"k00".to_vec()];
        let got = e.get_many("c", &keys).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_deref(), Some(&b"v3"[..]));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_deref(), Some(&b"v19"[..]));
        assert_eq!(got[3].as_deref(), Some(&b"v0"[..]));
        assert!(e.get_many("absent", &keys).unwrap().iter().all(Option::is_none));
    }

    #[test]
    fn concurrent_readers_do_not_block() {
        let e = Arc::new(engine());
        for i in 0..100u32 {
            e.insert("c", format!("k{i:03}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        let hits = chronos_util::pool::scoped_indexed(8, |t| {
            let mut hits = 0;
            for i in 0..100u32 {
                let key = format!("k{:03}", (i + t as u32) % 100);
                if e.get("c", key.as_bytes()).unwrap().is_some() {
                    hits += 1;
                }
            }
            hits
        });
        assert!(hits.into_iter().all(|h| h == 100));
    }
}
