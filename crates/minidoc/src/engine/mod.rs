//! The storage-engine abstraction and its two implementations.
//!
//! MongoDB's pluggable storage API is what made the paper's demo possible
//! (same database, two engines, one flag); [`StorageEngine`] plays that role
//! here. Engines store opaque record bytes under binary keys, per named
//! collection, with ordered scans.

pub mod mmapv1;
pub mod wiredtiger;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::DbResult;

/// Record value bytes shared with the engine's cache.
///
/// The wiredTiger-like engine hands out its cache-resident copy without any
/// byte copy; the mmapv1-like engine copies out of its extents once and the
/// `Arc` is then shared by every downstream consumer (cursor batches, filter
/// pushdown, decode).
pub type SharedBytes = Arc<[u8]>;

/// A streaming cursor over one collection's records in key order.
///
/// Cursors replace the old copy-per-batch `scan` loop: the engine refills an
/// internal chunk under its own short-lived locks and yields `Arc`-shared
/// value bytes, so iterating a collection never copies record payloads and
/// never re-enters the engine with cloned sentinel resume keys. Records
/// inserted or deleted while the cursor is open may or may not be observed
/// (same snapshot semantics the batched `scan` had).
pub struct RecordCursor {
    inner: Box<dyn Iterator<Item = (Vec<u8>, SharedBytes)> + Send>,
}

impl RecordCursor {
    /// Wraps an engine-internal record iterator.
    pub(crate) fn new(
        inner: impl Iterator<Item = (Vec<u8>, SharedBytes)> + Send + 'static,
    ) -> Self {
        RecordCursor { inner: Box::new(inner) }
    }

    /// A cursor over nothing (missing collection).
    pub(crate) fn empty() -> Self {
        RecordCursor::new(std::iter::empty())
    }
}

impl Iterator for RecordCursor {
    type Item = (Vec<u8>, SharedBytes);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for RecordCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecordCursor")
    }
}

/// Which storage engine a database uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The wiredTiger-like engine: record-level concurrency, compression,
    /// WAL + checkpoints.
    WiredTiger,
    /// The mmapv1-like engine: collection-level locking, in-place updates
    /// with power-of-2 padding, journal.
    MmapV1,
}

impl EngineKind {
    /// Parses the lowercase engine name used in experiment parameters.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "wiredtiger" | "wiredTiger" => Some(EngineKind::WiredTiger),
            "mmapv1" => Some(EngineKind::MmapV1),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::WiredTiger => "wiredtiger",
            EngineKind::MmapV1 => "mmapv1",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Live documents across all collections.
    pub documents: u64,
    /// Sum of encoded document sizes (what the user stored).
    pub logical_bytes: u64,
    /// Bytes the engine actually keeps (padding, compression, slot
    /// overhead included).
    pub stored_bytes: u64,
    /// Completed operations by type.
    pub inserts: u64,
    /// Completed updates.
    pub updates: u64,
    /// Completed deletes.
    pub deletes: u64,
    /// Completed point reads (hits and misses).
    pub reads: u64,
    /// Completed scans.
    pub scans: u64,
    /// Bytes appended to the WAL/journal.
    pub wal_bytes: u64,
    /// In-place updates (mmapv1: record fit its padding).
    pub inplace_updates: u64,
    /// Record moves (mmapv1: record outgrew its padding).
    pub record_moves: u64,
}

impl EngineStats {
    /// `stored_bytes / logical_bytes` (1.0 when empty).
    pub fn storage_amplification(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// JSON rendering for result documents.
    pub fn to_json(&self) -> chronos_json::Value {
        chronos_json::obj! {
            "documents" => self.documents,
            "logical_bytes" => self.logical_bytes,
            "stored_bytes" => self.stored_bytes,
            "storage_amplification" => self.storage_amplification(),
            "inserts" => self.inserts,
            "updates" => self.updates,
            "deletes" => self.deletes,
            "reads" => self.reads,
            "scans" => self.scans,
            "wal_bytes" => self.wal_bytes,
            "inplace_updates" => self.inplace_updates,
            "record_moves" => self.record_moves,
        }
    }
}

/// Shared atomic counters engines update on their hot paths.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub documents: AtomicU64,
    pub logical_bytes: AtomicU64,
    pub stored_bytes: AtomicU64,
    pub inserts: AtomicU64,
    pub updates: AtomicU64,
    pub deletes: AtomicU64,
    pub reads: AtomicU64,
    pub scans: AtomicU64,
    pub inplace_updates: AtomicU64,
    pub record_moves: AtomicU64,
}

impl StatCounters {
    pub(crate) fn snapshot(&self, wal_bytes: u64) -> EngineStats {
        EngineStats {
            documents: self.documents.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            stored_bytes: self.stored_bytes.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            wal_bytes,
            inplace_updates: self.inplace_updates.load(Ordering::Relaxed),
            record_moves: self.record_moves.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn sub(counter: &AtomicU64, delta: u64) {
        counter.fetch_sub(delta, Ordering::Relaxed);
    }
}

/// The storage-engine contract.
///
/// All methods are callable concurrently from many threads; the locking
/// granularity is the engine's defining characteristic.
pub trait StorageEngine: Send + Sync {
    /// Inserts a new record; errors on duplicate key.
    fn insert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()>;

    /// Fetches a record.
    fn get(&self, collection: &str, key: &[u8]) -> DbResult<Option<SharedBytes>>;

    /// Batched point lookup: the value for each of `keys` (position-aligned,
    /// `None` for misses) fetched under one index-lock acquisition instead of
    /// one per key. The index-backed query path uses this to resolve all
    /// candidate keys of a `find` in a single engine call.
    fn get_many(&self, collection: &str, keys: &[Vec<u8>]) -> DbResult<Vec<Option<SharedBytes>>>;

    /// Replaces an existing record; errors on missing key.
    fn update(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()>;

    /// Inserts or replaces a record.
    fn upsert(&self, collection: &str, key: &[u8], value: &[u8]) -> DbResult<()>;

    /// Removes a record; returns whether it existed.
    fn delete(&self, collection: &str, key: &[u8]) -> DbResult<bool>;

    /// Streaming cursor positioned at the first key ≥ `start_key`.
    fn cursor(&self, collection: &str, start_key: &[u8]) -> DbResult<RecordCursor>;

    /// Up to `limit` records with key ≥ `start_key`, in key order.
    ///
    /// Compatibility wrapper over [`StorageEngine::cursor`] that copies the
    /// shared value bytes out; hot paths should iterate the cursor instead.
    fn scan(
        &self,
        collection: &str,
        start_key: &[u8],
        limit: usize,
    ) -> DbResult<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self.cursor(collection, start_key)?.take(limit).map(|(k, v)| (k, v.to_vec())).collect())
    }

    /// Number of records in `collection` (0 if it does not exist).
    fn count(&self, collection: &str) -> u64;

    /// Existing collection names, sorted.
    fn collection_names(&self) -> Vec<String>;

    /// Drops a collection (no-op if absent).
    fn drop_collection(&self, collection: &str) -> DbResult<()>;

    /// Point-in-time statistics.
    fn stats(&self) -> EngineStats;

    /// Flushes state so a re-open recovers without the log.
    fn checkpoint(&self) -> DbResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_roundtrip() {
        assert_eq!(EngineKind::parse("wiredtiger"), Some(EngineKind::WiredTiger));
        assert_eq!(EngineKind::parse("wiredTiger"), Some(EngineKind::WiredTiger));
        assert_eq!(EngineKind::parse("mmapv1"), Some(EngineKind::MmapV1));
        assert_eq!(EngineKind::parse("rocks"), None);
        assert_eq!(EngineKind::WiredTiger.to_string(), "wiredtiger");
    }

    #[test]
    fn amplification_math() {
        let stats = EngineStats { logical_bytes: 100, stored_bytes: 250, ..Default::default() };
        assert_eq!(stats.storage_amplification(), 2.5);
        assert_eq!(EngineStats::default().storage_amplification(), 1.0);
    }

    #[test]
    fn stats_json_fields() {
        let j = EngineStats::default().to_json();
        for field in ["documents", "stored_bytes", "storage_amplification", "wal_bytes"] {
            assert!(j.get(field).is_some(), "missing {field}");
        }
    }
}
