//! Partial-update operators (MongoDB's `$set`/`$inc`/`$unset`/`$push`).
//!
//! Full-document replacement (what YCSB's `update` does) is wasteful for
//! small changes; the demo SuE supports the operator form real evaluation
//! clients use. Operators apply to dotted paths and compose left-to-right
//! within one [`UpdateSpec`].

use chronos_json::{Map, Number, Value};

use crate::error::{DbError, DbResult};

/// One update operator.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Sets the field (creating intermediate objects along the path).
    Set(String, Value),
    /// Adds a delta to a numeric field (missing fields start at 0).
    Inc(String, f64),
    /// Removes the field (no-op when absent).
    Unset(String),
    /// Appends to an array field (missing fields become one-element arrays).
    Push(String, Value),
}

/// An ordered list of update operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateSpec {
    ops: Vec<UpdateOp>,
}

impl UpdateSpec {
    /// An empty spec.
    pub fn new() -> Self {
        UpdateSpec::default()
    }

    /// Adds `$set field = value`.
    pub fn set(mut self, field: &str, value: impl Into<Value>) -> Self {
        self.ops.push(UpdateOp::Set(field.to_string(), value.into()));
        self
    }

    /// Adds `$inc field += delta`.
    pub fn inc(mut self, field: &str, delta: f64) -> Self {
        self.ops.push(UpdateOp::Inc(field.to_string(), delta));
        self
    }

    /// Adds `$unset field`.
    pub fn unset(mut self, field: &str) -> Self {
        self.ops.push(UpdateOp::Unset(field.to_string()));
        self
    }

    /// Adds `$push field <- value`.
    pub fn push(mut self, field: &str, value: impl Into<Value>) -> Self {
        self.ops.push(UpdateOp::Push(field.to_string(), value.into()));
        self
    }

    /// True when no operators were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies all operators to `document` in order.
    pub fn apply(&self, document: &mut Value) -> DbResult<()> {
        for op in &self.ops {
            match op {
                UpdateOp::Set(path, value) => {
                    *slot_for(document, path, true)? = value.clone();
                }
                UpdateOp::Inc(path, delta) => {
                    let slot = slot_for(document, path, true)?;
                    let current = if slot.is_null() {
                        0.0
                    } else {
                        slot.as_f64().ok_or_else(|| {
                            DbError::BadDocument(format!("$inc target {path:?} is not numeric"))
                        })?
                    };
                    let next = current + delta;
                    // Keep integers exact when both sides are integral.
                    *slot = if next.fract() == 0.0 && next.abs() < i64::MAX as f64 {
                        Value::Number(Number::Int(next as i64))
                    } else {
                        Value::from(next)
                    };
                }
                UpdateOp::Unset(path) => {
                    remove_path(document, path);
                }
                UpdateOp::Push(path, value) => {
                    let slot = slot_for(document, path, true)?;
                    match slot {
                        Value::Array(items) => items.push(value.clone()),
                        Value::Null => *slot = Value::Array(vec![value.clone()]),
                        other => {
                            return Err(DbError::BadDocument(format!(
                                "$push target {path:?} is a {}",
                                other.type_name()
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Navigates to (creating, when `create` is set) the slot at a dotted path.
/// Missing intermediate objects are created; traversing through a scalar is
/// an error.
fn slot_for<'a>(document: &'a mut Value, path: &str, create: bool) -> DbResult<&'a mut Value> {
    let mut current = document;
    let parts: Vec<&str> = path.split('.').collect();
    for (i, part) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        match current {
            Value::Object(map) => {
                if !map.contains_key(part) {
                    if !create {
                        return Err(DbError::BadDocument(format!("missing path {path:?}")));
                    }
                    map.insert(part.to_string(), Value::Null);
                }
                let next = map.get_mut(part).expect("just ensured");
                if !last && next.is_null() {
                    *next = Value::Object(Map::new());
                }
                current = next;
            }
            other => {
                return Err(DbError::BadDocument(format!(
                    "cannot traverse {} at {part:?} in path {path:?}",
                    other.type_name()
                )))
            }
        }
    }
    Ok(current)
}

fn remove_path(document: &mut Value, path: &str) {
    let Some((parent_path, leaf)) = path.rsplit_once('.') else {
        if let Value::Object(map) = document {
            map.remove(path);
        }
        return;
    };
    if let Ok(Value::Object(map)) = slot_for(document, parent_path, false) {
        map.remove(leaf);
    }
}

impl crate::Collection {
    /// Applies update operators to an existing document (read-modify-write;
    /// atomic per document under the engine's record/collection locking).
    pub fn update_with(&self, key: &str, spec: &UpdateSpec) -> DbResult<()> {
        let mut document = self.get(key)?.ok_or_else(|| DbError::NotFound(key.to_string()))?;
        spec.apply(&mut document)?;
        self.update(key, &document)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, DbConfig, EngineKind};
    use chronos_json::{arr, obj};

    fn doc() -> Value {
        obj! {
            "name" => "ada",
            "visits" => 3,
            "score" => 1.5,
            "address" => obj! {"city" => "basel"},
            "tags" => arr!["x"],
        }
    }

    #[test]
    fn set_existing_and_new_fields() {
        let mut d = doc();
        UpdateSpec::new()
            .set("name", "grace")
            .set("address.zip", 4051)
            .set("brand.new.path", true)
            .apply(&mut d)
            .unwrap();
        assert_eq!(d.get("name").and_then(Value::as_str), Some("grace"));
        assert_eq!(d.pointer("/address/zip").and_then(Value::as_i64), Some(4051));
        assert_eq!(d.pointer("/brand/new/path").and_then(Value::as_bool), Some(true));
        assert_eq!(d.pointer("/address/city").and_then(Value::as_str), Some("basel"));
    }

    #[test]
    fn inc_integers_stay_integers() {
        let mut d = doc();
        UpdateSpec::new()
            .inc("visits", 2.0)
            .inc("fresh", 5.0)
            .inc("score", 0.25)
            .apply(&mut d)
            .unwrap();
        assert!(matches!(d.get("visits"), Some(Value::Number(Number::Int(5)))));
        assert!(matches!(d.get("fresh"), Some(Value::Number(Number::Int(5)))));
        assert_eq!(d.get("score").and_then(Value::as_f64), Some(1.75));
    }

    #[test]
    fn inc_non_numeric_fails() {
        let mut d = doc();
        assert!(matches!(
            UpdateSpec::new().inc("name", 1.0).apply(&mut d),
            Err(DbError::BadDocument(_))
        ));
    }

    #[test]
    fn unset_removes_fields() {
        let mut d = doc();
        UpdateSpec::new()
            .unset("visits")
            .unset("address.city")
            .unset("ghost")
            .apply(&mut d)
            .unwrap();
        assert!(d.get("visits").is_none());
        assert!(d.pointer("/address/city").is_none());
        assert!(d.get("address").is_some(), "parent object remains");
    }

    #[test]
    fn push_appends_and_creates() {
        let mut d = doc();
        UpdateSpec::new().push("tags", "y").push("log", 1).apply(&mut d).unwrap();
        assert_eq!(d.get("tags").and_then(Value::as_array).map(Vec::len), Some(2));
        assert_eq!(d.pointer("/log/0").and_then(Value::as_i64), Some(1));
        assert!(matches!(
            UpdateSpec::new().push("name", "x").apply(&mut d),
            Err(DbError::BadDocument(_))
        ));
    }

    #[test]
    fn traversal_through_scalar_fails() {
        let mut d = doc();
        assert!(matches!(
            UpdateSpec::new().set("name.sub", 1).apply(&mut d),
            Err(DbError::BadDocument(_))
        ));
    }

    #[test]
    fn operators_compose_in_order() {
        let mut d = obj! {};
        UpdateSpec::new()
            .set("n", 10)
            .inc("n", 5.0)
            .set("n2", 0)
            .unset("n2")
            .apply(&mut d)
            .unwrap();
        assert_eq!(d.get("n").and_then(Value::as_i64), Some(15));
        assert!(d.get("n2").is_none());
    }

    #[test]
    fn update_with_against_both_engines() {
        for engine in [EngineKind::WiredTiger, EngineKind::MmapV1] {
            let db = Database::open(DbConfig::in_memory(engine)).unwrap();
            let coll = db.collection("t");
            coll.insert("k", &doc()).unwrap();
            coll.update_with("k", &UpdateSpec::new().inc("visits", 1.0).set("name", "lin"))
                .unwrap();
            let d = coll.get("k").unwrap().unwrap();
            assert_eq!(d.get("visits").and_then(Value::as_i64), Some(4));
            assert_eq!(d.get("name").and_then(Value::as_str), Some("lin"));
            // Missing key errors.
            assert!(matches!(
                coll.update_with("ghost", &UpdateSpec::new().set("a", 1)),
                Err(DbError::NotFound(_))
            ));
        }
    }

    #[test]
    fn update_with_maintains_indexes() {
        let db = Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap();
        let coll = db.collection("t");
        coll.create_index("visits").unwrap();
        coll.insert("k", &doc()).unwrap();
        coll.update_with("k", &UpdateSpec::new().inc("visits", 7.0)).unwrap();
        let hits = coll.find(&crate::Filter::eq("visits", 10)).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(coll.find(&crate::Filter::eq("visits", 3)).unwrap().is_empty());
    }
}
