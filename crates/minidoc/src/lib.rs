//! # minidoc — an embedded document store with pluggable storage engines
//!
//! The Chronos paper demonstrates the toolkit by comparatively evaluating
//! two MongoDB storage engines, **wiredTiger** and **mmapv1**. Since a real
//! MongoDB cannot be embedded in a pure-Rust reproduction, `minidoc` is the
//! stand-in System under Evaluation: a document database whose two storage
//! engines reproduce the *architectural* differences that the demo's results
//! hinge on:
//!
//! | | [`WiredTigerEngine`](engine::wiredtiger::WiredTigerEngine) | [`MmapV1Engine`](engine::mmapv1::MmapV1Engine) |
//! |---|---|---|
//! | write concurrency | record-level (sharded latches) | **collection-level lock** |
//! | update strategy | out-of-place into slotted pages | in-place with power-of-2 padding |
//! | on-disk footprint | block compression (LZ+RLE) | padded raw records |
//! | durability | write-ahead log + checkpoints | journal held under the collection lock |
//!
//! Under a YCSB-style mixed workload these mechanisms produce the same
//! qualitative picture as the MongoDB demo: wiredTiger scales with client
//! threads and wins clearly on write-heavy mixes; mmapv1 stays competitive
//! on read-mostly workloads but plateaus under write concurrency and uses
//! more storage.
//!
//! ```
//! use minidoc::{Database, DbConfig, EngineKind};
//! use chronos_json::obj;
//!
//! let db = Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap();
//! let coll = db.collection("usertable");
//! coll.insert("user1", &obj! {"name" => "ada", "visits" => 3}).unwrap();
//! let doc = coll.get("user1").unwrap().unwrap();
//! assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("ada"));
//! ```

pub mod compress;
pub mod doc;
pub mod engine;
pub mod error;
pub mod index;
pub mod query;
pub mod update;
pub mod wal;

pub use engine::{EngineKind, EngineStats, RecordCursor, SharedBytes, StorageEngine};
pub use error::{DbError, DbResult};
pub use query::Filter;
pub use update::{UpdateOp, UpdateSpec};

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use chronos_json::Value;
use parking_lot::RwLock;

use crate::index::{range_for, FieldIndex, RangeOp};
use crate::query::lookup;

/// All secondary indexes of a database: collection → field → index.
type IndexMap = HashMap<String, HashMap<String, FieldIndex>>;

/// Database configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Which storage engine to use.
    pub engine: EngineKind,
    /// Data directory; `None` runs fully in memory (no durability).
    pub data_dir: Option<PathBuf>,
    /// Enable block compression (wiredTiger-like engine only).
    pub compression: bool,
    /// Sync the WAL/journal on every commit group.
    pub durable_writes: bool,
    /// Number of latch shards for record-level locking (wiredTiger-like
    /// engine). More shards = less contention.
    pub latch_shards: usize,
}

impl DbConfig {
    /// In-memory database with the given engine and engine-typical defaults
    /// (compression on for wiredTiger, off for mmapv1).
    pub fn in_memory(engine: EngineKind) -> Self {
        DbConfig {
            engine,
            data_dir: None,
            compression: engine == EngineKind::WiredTiger,
            durable_writes: false,
            latch_shards: 64,
        }
    }

    /// Durable database rooted at `dir`.
    pub fn at_dir(engine: EngineKind, dir: impl Into<PathBuf>) -> Self {
        DbConfig { data_dir: Some(dir.into()), durable_writes: true, ..Self::in_memory(engine) }
    }

    /// Toggles compression.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }
}

/// An open document database.
#[derive(Clone)]
pub struct Database {
    engine: Arc<dyn StorageEngine>,
    kind: EngineKind,
    indexes: Arc<RwLock<IndexMap>>,
}

impl Database {
    /// Opens (and, for durable configs, recovers) a database.
    pub fn open(config: DbConfig) -> DbResult<Self> {
        let kind = config.engine;
        let engine: Arc<dyn StorageEngine> = match kind {
            EngineKind::WiredTiger => Arc::new(engine::wiredtiger::WiredTigerEngine::open(config)?),
            EngineKind::MmapV1 => Arc::new(engine::mmapv1::MmapV1Engine::open(config)?),
        };
        Ok(Database { engine, kind, indexes: Arc::new(RwLock::new(HashMap::new())) })
    }

    /// The engine this database runs on.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// A handle to `name`'s collection (created lazily on first write).
    pub fn collection(&self, name: &str) -> Collection {
        Collection {
            engine: Arc::clone(&self.engine),
            name: name.to_string(),
            indexes: Arc::clone(&self.indexes),
        }
    }

    /// Names of all existing collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.engine.collection_names()
    }

    /// Drops a collection, its data and its indexes.
    pub fn drop_collection(&self, name: &str) -> DbResult<()> {
        self.indexes.write().remove(name);
        self.engine.drop_collection(name)
    }

    /// Engine statistics (storage bytes, cache counters, lock waits).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Forces a checkpoint (flushes buffered state to the data dir).
    pub fn checkpoint(&self) -> DbResult<()> {
        self.engine.checkpoint()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("engine", &self.kind).finish()
    }
}

/// A handle to one collection.
#[derive(Clone)]
pub struct Collection {
    engine: Arc<dyn StorageEngine>,
    name: String,
    indexes: Arc<RwLock<IndexMap>>,
}

impl Collection {
    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts a new document. Fails with [`DbError::DuplicateKey`] if the
    /// key exists.
    pub fn insert(&self, key: &str, document: &Value) -> DbResult<()> {
        let bytes = doc::encode(document)?;
        self.engine.insert(&self.name, key.as_bytes(), &bytes)?;
        self.index_document(key, None, Some(document));
        Ok(())
    }

    /// Fetches a document by key.
    pub fn get(&self, key: &str) -> DbResult<Option<Value>> {
        match self.engine.get(&self.name, key.as_bytes())? {
            Some(bytes) => Ok(Some(doc::decode(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Replaces an existing document. Fails with [`DbError::NotFound`] if
    /// the key does not exist.
    pub fn update(&self, key: &str, document: &Value) -> DbResult<()> {
        let old = if self.has_indexes() { self.get(key)? } else { None };
        let bytes = doc::encode(document)?;
        self.engine.update(&self.name, key.as_bytes(), &bytes)?;
        self.index_document(key, old.as_ref(), Some(document));
        Ok(())
    }

    /// Inserts or replaces a document.
    pub fn upsert(&self, key: &str, document: &Value) -> DbResult<()> {
        let old = if self.has_indexes() { self.get(key)? } else { None };
        let bytes = doc::encode(document)?;
        self.engine.upsert(&self.name, key.as_bytes(), &bytes)?;
        self.index_document(key, old.as_ref(), Some(document));
        Ok(())
    }

    /// Deletes a document. Returns `true` if it existed.
    pub fn delete(&self, key: &str) -> DbResult<bool> {
        let old = if self.has_indexes() { self.get(key)? } else { None };
        let existed = self.engine.delete(&self.name, key.as_bytes())?;
        if existed {
            self.index_document(key, old.as_ref(), None);
        }
        Ok(existed)
    }

    fn has_indexes(&self) -> bool {
        self.indexes.read().get(&self.name).map(|m| !m.is_empty()).unwrap_or(false)
    }

    /// Applies an index delta for one document: removes `old`'s entries and
    /// adds `new`'s, for every indexed field of this collection.
    fn index_document(&self, key: &str, old: Option<&Value>, new: Option<&Value>) {
        let mut indexes = self.indexes.write();
        let Some(fields) = indexes.get_mut(&self.name) else { return };
        for (field, index) in fields.iter_mut() {
            if let Some(value) = old.and_then(|d| lookup(d, field)) {
                index.remove(value, key.as_bytes());
            }
            if let Some(value) = new.and_then(|d| lookup(d, field)) {
                index.insert(value, key.as_bytes());
            }
        }
    }

    /// Creates a single-field secondary index on `field` (dotted paths
    /// allowed), backfilling it from the existing documents. Idempotent.
    ///
    /// The build is *foreground*: the index-map write lock is held for the
    /// whole backfill, so concurrent writers' index maintenance serializes
    /// behind the build and no post-build delta can be lost. A writer that
    /// raced the build's storage scan may leave a stale extra entry behind
    /// (see DESIGN.md); `find`'s residual re-check filters those out.
    pub fn create_index(&self, field: &str) -> DbResult<()> {
        let mut indexes = self.indexes.write();
        if indexes.get(&self.name).map(|m| m.contains_key(field)).unwrap_or(false) {
            return Ok(());
        }
        let mut index = FieldIndex::new();
        for (key, bytes) in self.engine.cursor(&self.name, &[])? {
            // Extract just the indexed field from the encoded bytes; the
            // rest of the document is never materialized.
            if let Some(value) = doc::decode_path(&bytes, field)? {
                index.insert(&value, &key);
            }
        }
        indexes.entry(self.name.clone()).or_default().insert(field.to_string(), index);
        Ok(())
    }

    /// Drops the index on `field`. Returns whether it existed.
    pub fn drop_index(&self, field: &str) -> bool {
        self.indexes.write().get_mut(&self.name).map(|m| m.remove(field).is_some()).unwrap_or(false)
    }

    /// Names of the indexed fields, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .indexes
            .read()
            .get(&self.name)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default();
        names.sort();
        names
    }

    /// The query planner: candidate document keys for `filter` from an
    /// index, or `None` when no index applies (full scan required).
    ///
    /// Index lookups borrow key slices straight out of the posting lists and
    /// collect into a `BTreeSet` (sorted + deduplicated), so the only copy
    /// per candidate is the final one out of the locked index map.
    fn plan_candidates(&self, filter: &Filter) -> Option<Vec<Vec<u8>>> {
        let indexes = self.indexes.read();
        let fields = indexes.get(&self.name)?;
        fn plan<'a>(
            fields: &'a HashMap<String, FieldIndex>,
            filter: &Filter,
        ) -> Option<BTreeSet<&'a [u8]>> {
            match filter {
                Filter::Eq(field, operand) => {
                    fields.get(field).map(|index| index.lookup_eq_iter(operand).collect())
                }
                Filter::Gt(field, operand) => lookup_range(fields, field, RangeOp::Gt, operand),
                Filter::Gte(field, operand) => lookup_range(fields, field, RangeOp::Gte, operand),
                Filter::Lt(field, operand) => lookup_range(fields, field, RangeOp::Lt, operand),
                Filter::Lte(field, operand) => lookup_range(fields, field, RangeOp::Lte, operand),
                // For conjunctions the first indexable branch prunes; the
                // full filter still runs as a residual afterwards.
                Filter::And(children) => children.iter().find_map(|c| plan(fields, c)),
                _ => None,
            }
        }
        fn lookup_range<'a>(
            fields: &'a HashMap<String, FieldIndex>,
            field: &str,
            op: RangeOp,
            operand: &Value,
        ) -> Option<BTreeSet<&'a [u8]>> {
            let index = fields.get(field)?;
            let (low, high) = range_for(op, operand)?;
            Some(index.lookup_range_iter(&low, &high).collect())
        }
        plan(fields, filter).map(|set| set.into_iter().map(<[u8]>::to_vec).collect())
    }

    /// Ordered scan: up to `limit` documents with keys ≥ `start_key`.
    pub fn scan(&self, start_key: &str, limit: usize) -> DbResult<Vec<(String, Value)>> {
        self.cursor(start_key)?
            .take(limit)
            .map(|(k, v)| Ok((decode_key(k)?, doc::decode(&v)?)))
            .collect()
    }

    /// Streaming cursor over the raw `(key, encoded document)` records with
    /// keys ≥ `start_key`, in key order. Yields the engine's `Arc`-shared
    /// value bytes without decoding — pair with
    /// [`doc::matches_encoded`]/[`doc::decode_path`] to inspect them, or
    /// [`doc::decode`] to materialize.
    pub fn cursor(&self, start_key: &str) -> DbResult<RecordCursor> {
        self.engine.cursor(&self.name, start_key.as_bytes())
    }

    /// Number of documents.
    pub fn count(&self) -> u64 {
        self.engine.count(&self.name)
    }

    /// Filter evaluation: returns all `(key, document)` pairs matching
    /// `filter`, in key order. Uses a secondary index when the filter (or a
    /// conjunct of it) is an equality/range predicate on an indexed field;
    /// falls back to a full collection scan otherwise.
    pub fn find(&self, filter: &Filter) -> DbResult<Vec<(String, Value)>> {
        if let Some(candidates) = self.plan_candidates(filter) {
            // One batched engine call fetches every candidate; the filter
            // re-check (residual predicate — the document may have changed
            // since the index snapshot) runs on the encoded bytes, so only
            // true matches are decoded.
            let values = self.engine.get_many(&self.name, &candidates)?;
            let mut out = Vec::with_capacity(candidates.len());
            for (key_bytes, value) in candidates.into_iter().zip(values) {
                let Some(bytes) = value else { continue };
                if doc::matches_encoded(&bytes, filter)? {
                    out.push((decode_key(key_bytes)?, doc::decode(&bytes)?));
                }
            }
            return Ok(out);
        }
        // Full scan with predicate pushdown: the filter is evaluated
        // directly on each record's encoded bytes as the cursor streams
        // them; non-matching documents are never materialized.
        let mut out = Vec::new();
        for (key_bytes, bytes) in self.cursor("")? {
            if doc::matches_encoded(&bytes, filter)? {
                out.push((decode_key(key_bytes)?, doc::decode(&bytes)?));
            }
        }
        Ok(out)
    }
}

/// Decodes an engine key back into the `String` the API hands out,
/// rejecting non-UTF-8 bytes as corruption instead of silently mangling
/// them with a lossy conversion.
fn decode_key(bytes: Vec<u8>) -> DbResult<String> {
    String::from_utf8(bytes).map_err(|e| DbError::Corrupt(format!("non-UTF-8 document key: {e}")))
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    fn both_engines() -> Vec<Database> {
        vec![
            Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap(),
            Database::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap(),
        ]
    }

    #[test]
    fn crud_roundtrip_on_both_engines() {
        for db in both_engines() {
            let coll = db.collection("t");
            let doc = obj! {"a" => 1, "b" => "two"};
            coll.insert("k1", &doc).unwrap();
            assert_eq!(coll.get("k1").unwrap().unwrap(), doc);
            assert_eq!(coll.get("missing").unwrap(), None);

            let doc2 = obj! {"a" => 2};
            coll.update("k1", &doc2).unwrap();
            assert_eq!(coll.get("k1").unwrap().unwrap(), doc2);

            assert!(coll.delete("k1").unwrap());
            assert!(!coll.delete("k1").unwrap());
            assert_eq!(coll.get("k1").unwrap(), None);
        }
    }

    #[test]
    fn insert_duplicate_fails() {
        for db in both_engines() {
            let coll = db.collection("t");
            coll.insert("k", &obj! {"v" => 1}).unwrap();
            assert!(matches!(coll.insert("k", &obj! {"v" => 2}), Err(DbError::DuplicateKey(_))));
        }
    }

    #[test]
    fn update_missing_fails_but_upsert_succeeds() {
        for db in both_engines() {
            let coll = db.collection("t");
            assert!(matches!(coll.update("k", &obj! {}), Err(DbError::NotFound(_))));
            coll.upsert("k", &obj! {"v" => 1}).unwrap();
            coll.upsert("k", &obj! {"v" => 2}).unwrap();
            assert_eq!(coll.get("k").unwrap().unwrap(), obj! {"v" => 2});
        }
    }

    #[test]
    fn scan_is_ordered() {
        for db in both_engines() {
            let coll = db.collection("t");
            for i in [5u32, 1, 9, 3, 7] {
                coll.insert(&format!("k{i}"), &obj! {"i" => i}).unwrap();
            }
            let rows = coll.scan("k3", 3).unwrap();
            let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, vec!["k3", "k5", "k7"], "engine {:?}", db.engine_kind());
        }
    }

    #[test]
    fn count_and_collections() {
        for db in both_engines() {
            let coll = db.collection("a");
            assert_eq!(coll.count(), 0);
            coll.insert("x", &obj! {}).unwrap();
            coll.insert("y", &obj! {}).unwrap();
            assert_eq!(coll.count(), 2);
            assert_eq!(db.collection_names(), vec!["a".to_string()]);
            db.drop_collection("a").unwrap();
            assert_eq!(db.collection("a").count(), 0);
        }
    }

    #[test]
    fn find_with_filter() {
        for db in both_engines() {
            let coll = db.collection("people");
            coll.insert("p1", &obj! {"age" => 30, "city" => "basel"}).unwrap();
            coll.insert("p2", &obj! {"age" => 20, "city" => "bern"}).unwrap();
            coll.insert("p3", &obj! {"age" => 40, "city" => "basel"}).unwrap();
            let hits = coll
                .find(&Filter::and(vec![Filter::eq("city", "basel"), Filter::gt("age", 25)]))
                .unwrap();
            let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, vec!["p1", "p3"]);
        }
    }

    #[test]
    fn non_utf8_keys_are_rejected_not_mangled() {
        for db in both_engines() {
            let coll = db.collection("t");
            coll.insert("good", &obj! {"v" => 1}).unwrap();
            // Sneak a non-UTF-8 key in at the engine layer (the public API
            // only accepts &str keys); read paths must surface it as
            // corruption, not lossy-replace it into a valid-looking key.
            let bytes = doc::encode(&obj! {"v" => 2}).unwrap();
            coll.engine.insert("t", &[0x80, 0xFF], &bytes).unwrap();
            assert!(matches!(coll.scan("", 10), Err(DbError::Corrupt(_))));
            assert!(matches!(coll.find(&Filter::exists("v")), Err(DbError::Corrupt(_))));
            // The raw cursor still exposes the record for repair tooling.
            assert_eq!(coll.cursor("").unwrap().count(), 2);
        }
    }

    #[test]
    fn find_uses_one_batched_engine_read_per_query() {
        for db in both_engines() {
            let coll = db.collection("t");
            for i in 0..50u32 {
                coll.insert(&format!("k{i:02}"), &obj! {"group" => i % 5}).unwrap();
            }
            coll.create_index("group").unwrap();
            let reads_before = db.stats().reads;
            let hits = coll.find(&Filter::eq("group", 3)).unwrap();
            assert_eq!(hits.len(), 10);
            // get_many counts one read per candidate but issues them in a
            // single engine call; no extra per-key get() round trips.
            assert_eq!(db.stats().reads - reads_before, 10, "engine {:?}", db.engine_kind());
        }
    }

    #[test]
    fn stats_track_documents() {
        for db in both_engines() {
            let coll = db.collection("t");
            for i in 0..50 {
                coll.insert(&format!("k{i:03}"), &obj! {"pad" => "x".repeat(200)}).unwrap();
            }
            let stats = db.stats();
            assert_eq!(stats.documents, 50);
            assert!(stats.logical_bytes > 0);
            assert!(stats.stored_bytes > 0, "engine {:?}", db.engine_kind());
        }
    }

    #[test]
    fn wiredtiger_compression_shrinks_storage() {
        let wt = Database::open(DbConfig::in_memory(EngineKind::WiredTiger)).unwrap();
        let mm = Database::open(DbConfig::in_memory(EngineKind::MmapV1)).unwrap();
        for db in [&wt, &mm] {
            let coll = db.collection("t");
            for i in 0..200 {
                // Highly compressible payloads.
                coll.insert(&format!("k{i:05}"), &obj! {"data" => "ab".repeat(300)}).unwrap();
            }
        }
        let wt_bytes = wt.stats().stored_bytes;
        let mm_bytes = mm.stats().stored_bytes;
        assert!(
            wt_bytes * 2 < mm_bytes,
            "wiredTiger ({wt_bytes}) should store far less than mmapv1 ({mm_bytes})"
        );
    }
}
