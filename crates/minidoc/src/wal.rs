//! Write-ahead log / journal.
//!
//! Both storage engines persist mutations through this log format; they
//! differ in *when* and *under which locks* they append (see the engine
//! docs). A log record is `[u32 len][u32 crc32][payload]`; replay stops at
//! the first truncated or corrupt record, which models recovery after a
//! crash mid-append.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use chronos_util::encode::crc32;

use crate::doc::{decode_varint, encode_varint};
use crate::error::{DbError, DbResult};

/// A logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace `key` in `collection`.
    Put { collection: String, key: Vec<u8>, value: Vec<u8> },
    /// Remove `key` from `collection`.
    Delete { collection: String, key: Vec<u8> },
    /// Remove a whole collection.
    DropCollection { collection: String },
}

impl WalOp {
    /// Serializes the operation payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalOp::Put { collection, key, value } => {
                out.push(0);
                put_bytes(&mut out, collection.as_bytes());
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            WalOp::Delete { collection, key } => {
                out.push(1);
                put_bytes(&mut out, collection.as_bytes());
                put_bytes(&mut out, key);
            }
            WalOp::DropCollection { collection } => {
                out.push(2);
                put_bytes(&mut out, collection.as_bytes());
            }
        }
        out
    }

    /// Parses a payload produced by [`WalOp::encode`].
    pub fn decode(bytes: &[u8]) -> DbResult<WalOp> {
        let mut pos = 0;
        let tag = *bytes.first().ok_or_else(|| DbError::Corrupt("empty wal op".into()))?;
        pos += 1;
        let op = match tag {
            0 => {
                let collection = get_string(bytes, &mut pos)?;
                let key = get_bytes(bytes, &mut pos)?;
                let value = get_bytes(bytes, &mut pos)?;
                WalOp::Put { collection, key, value }
            }
            1 => {
                let collection = get_string(bytes, &mut pos)?;
                let key = get_bytes(bytes, &mut pos)?;
                WalOp::Delete { collection, key }
            }
            2 => WalOp::DropCollection { collection: get_string(bytes, &mut pos)? },
            other => return Err(DbError::Corrupt(format!("bad wal op tag {other}"))),
        };
        if pos != bytes.len() {
            return Err(DbError::Corrupt("trailing bytes in wal op".into()));
        }
        Ok(op)
    }
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    encode_varint(data.len() as u64, out);
    out.extend_from_slice(data);
}

fn get_bytes(bytes: &[u8], pos: &mut usize) -> DbResult<Vec<u8>> {
    let len = decode_varint(bytes, pos)? as usize;
    let slice = bytes
        .get(*pos..*pos + len)
        .ok_or_else(|| DbError::Corrupt("truncated wal field".into()))?;
    *pos += len;
    Ok(slice.to_vec())
}

fn get_string(bytes: &[u8], pos: &mut usize) -> DbResult<String> {
    String::from_utf8(get_bytes(bytes, pos)?)
        .map_err(|_| DbError::Corrupt("non-UTF-8 collection name".into()))
}

/// When appended records are forced to stable storage.
///
/// The sync policy is where the two storage engines' durability designs
/// diverge (and, on the write path, where their scalability diverges):
/// the mmapv1-like journal syncs **every append while the caller holds the
/// collection lock**; the wiredTiger-like WAL **group-commits** — appends
/// accumulate and the (comparatively rare) fsync runs *outside* the log
/// lock, so other threads keep working during the I/O stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync (in-memory or benchmark-only databases).
    Never,
    /// fsync inside every append.
    EveryAppend,
    /// Request an fsync after this many bytes have accumulated; the caller
    /// performs it via [`Wal::take_sync_handle`], outside any other lock.
    GroupCommit {
        /// Bytes between sync requests.
        batch_bytes: usize,
    },
}

/// An append-only log file (or an in-memory buffer when no path is given,
/// so in-memory databases still pay a realistic journaling cost).
#[derive(Debug)]
pub struct Wal {
    file: Option<File>,
    path: Option<PathBuf>,
    /// In-memory sink used when there is no backing file.
    buffer: Vec<u8>,
    /// Total bytes appended since open.
    pub appended_bytes: u64,
    policy: SyncPolicy,
    pending_since_sync: usize,
}

impl Wal {
    /// Opens (creating if needed) the log at `path`.
    pub fn open(path: &Path, sync_on_append: bool) -> DbResult<Self> {
        let policy = if sync_on_append { SyncPolicy::EveryAppend } else { SyncPolicy::Never };
        Self::open_with_policy(path, policy)
    }

    /// Opens the log with an explicit [`SyncPolicy`].
    pub fn open_with_policy(path: &Path, policy: SyncPolicy) -> DbResult<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file: Some(file),
            path: Some(path.to_path_buf()),
            buffer: Vec::new(),
            appended_bytes: 0,
            policy,
            pending_since_sync: 0,
        })
    }

    /// An in-memory log (no durability, but the same write path cost).
    pub fn in_memory() -> Self {
        Wal {
            file: None,
            path: None,
            buffer: Vec::new(),
            appended_bytes: 0,
            policy: SyncPolicy::Never,
            pending_since_sync: 0,
        }
    }

    /// For [`SyncPolicy::GroupCommit`]: when enough bytes have accumulated,
    /// returns a handle the caller must `sync_data()` — **after releasing
    /// the log lock** — and resets the accumulator.
    pub fn take_sync_handle(&mut self) -> DbResult<Option<File>> {
        let SyncPolicy::GroupCommit { batch_bytes } = self.policy else {
            return Ok(None);
        };
        if self.pending_since_sync < batch_bytes {
            return Ok(None);
        }
        self.pending_since_sync = 0;
        match &self.file {
            Some(file) => Ok(Some(file.try_clone()?)),
            None => Ok(None),
        }
    }

    /// The backing file path (`None` for in-memory logs).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Frames an operation into its on-log record form (length + CRC +
    /// payload). Framing is CPU work callers may do *outside* the log lock
    /// — the wiredTiger-like engine does, the mmapv1-like engine does not;
    /// that difference is part of the engines' contrasting write paths.
    pub fn frame(op: &WalOp) -> Vec<u8> {
        let payload = op.encode();
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        record
    }

    /// Appends one operation record (framing inline).
    pub fn append(&mut self, op: &WalOp) -> DbResult<()> {
        let record = Self::frame(op);
        self.append_framed(&record)
    }

    /// Appends a record previously produced by [`Wal::frame`].
    pub fn append_framed(&mut self, record: &[u8]) -> DbResult<()> {
        self.appended_bytes += record.len() as u64;
        self.pending_since_sync += record.len();
        match &mut self.file {
            Some(file) => {
                if let Some(inj) = chronos_util::fail_eval!("minidoc.wal.append") {
                    match inj {
                        chronos_util::fail::Injected::Torn { keep } => {
                            // Crash mid-append: a prefix of the record
                            // reaches the disk, the caller sees a failure.
                            let keep = keep.min(record.len());
                            let _ = file.write_all(&record[..keep]);
                            let _ = file.sync_data();
                            return Err(DbError::Io(std::io::Error::other(format!(
                                "wal append torn after {keep} bytes (injected)"
                            ))));
                        }
                        chronos_util::fail::Injected::Error(msg) => {
                            return Err(DbError::Io(std::io::Error::other(msg)));
                        }
                    }
                }
                file.write_all(record)?;
                if self.policy == SyncPolicy::EveryAppend {
                    if let Some(inj) = chronos_util::fail_eval!("minidoc.wal.sync") {
                        let msg = match inj {
                            chronos_util::fail::Injected::Error(m) => m,
                            chronos_util::fail::Injected::Torn { .. } => {
                                "wal sync failed: injected torn write".to_string()
                            }
                        };
                        return Err(DbError::Io(std::io::Error::other(msg)));
                    }
                    file.sync_data()?;
                    self.pending_since_sync = 0;
                }
            }
            None => {
                self.buffer.extend_from_slice(record);
                // Bound the in-memory sink; it only exists to model the cost.
                if self.buffer.len() > 4 * 1024 * 1024 {
                    self.buffer.clear();
                }
            }
        }
        Ok(())
    }

    /// Replays all intact records from `path`. Stops silently at the first
    /// torn/corrupt record (crash-consistent prefix semantics).
    pub fn replay(path: &Path) -> DbResult<Vec<WalOp>> {
        Ok(Self::replay_prefix(path)?.0)
    }

    /// Like [`Wal::replay`], but also chops any torn/corrupt tail off the
    /// file. A log that is appended to after recovery must do this: new
    /// records written after leftover torn bytes would be unreachable for
    /// every later replay (the scan stops at the tear forever).
    pub fn replay_and_trim(path: &Path) -> DbResult<Vec<WalOp>> {
        let (ops, valid, total) = Self::replay_prefix(path)?;
        if valid < total {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        Ok(ops)
    }

    /// Shared scan: `(intact ops, valid prefix bytes, file bytes)`.
    fn replay_prefix(path: &Path) -> DbResult<(Vec<WalOp>, usize, usize)> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0, 0)),
            Err(e) => return Err(e.into()),
        }
        let mut ops = Vec::new();
        let mut pos = 0;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let Some(payload) = data.get(pos + 8..pos + 8 + len) else {
                break; // torn tail
            };
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            match WalOp::decode(payload) {
                Ok(op) => ops.push(op),
                Err(_) => break,
            }
            pos += 8 + len;
        }
        Ok((ops, pos, data.len()))
    }

    /// Truncates the log (after a checkpoint made it redundant).
    pub fn truncate(&mut self) -> DbResult<()> {
        if let Some(path) = &self.path {
            let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
            self.file = Some(OpenOptions::new().append(true).open(path)?);
            drop(file);
        } else {
            self.buffer.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minidoc-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Put { collection: "c".into(), key: b"k1".to_vec(), value: b"v1".to_vec() },
            WalOp::Delete { collection: "c".into(), key: b"k1".to_vec() },
            WalOp::DropCollection { collection: "c".into() },
        ]
    }

    #[test]
    fn op_encode_roundtrip() {
        for op in ops() {
            assert_eq!(WalOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("replay");
        let mut wal = Wal::open(&path, false).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), ops());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay(&tmp("missing")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, false).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        // Truncate mid-record to simulate a crash during the last append.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, ops()[..2].to_vec());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path, false).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record: first record survives.
        let first_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize + 8;
        data[first_len + 9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, ops()[..1].to_vec());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_clears_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path, false).unwrap();
        wal.append(&ops()[0]).unwrap();
        wal.truncate().unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        // Appends after truncation still work.
        wal.append(&ops()[1]).unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![ops()[1].clone()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_wal_tracks_bytes() {
        let mut wal = Wal::in_memory();
        wal.append(&ops()[0]).unwrap();
        assert!(wal.appended_bytes > 0);
        wal.truncate().unwrap();
    }
}
