//! Percent-encoding and query-string handling.

/// Percent-encodes a path segment or query component (RFC 3986 unreserved
/// characters pass through; everything else is `%XX`-encoded).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decodes a component. `+` decodes to a space (form encoding).
/// Malformed escapes pass through literally rather than erroring — the REST
/// API treats them as opaque text.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let hi = (h[0] as char).to_digit(16)?;
                    let lo = (h[1] as char).to_digit(16)?;
                    Some(((hi << 4) | lo) as u8)
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-decodes a single path segment, exactly once. Unlike
/// [`decode_component`], `+` stays literal — plus-as-space applies only to
/// form-encoded query strings, never to paths. An encoded `%2F` decodes to
/// a literal `/` *inside* the segment without becoming a path separator,
/// because segmentation happens before this runs.
pub fn decode_segment(s: &str) -> String {
    decode_component(&s.replace('+', "%2B"))
}

/// Parses `a=1&b=two` into decoded pairs. Keys without `=` get empty values.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    if query.is_empty() {
        return Vec::new();
    }
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(part), String::new()),
        })
        .collect()
}

/// Builds a query string from pairs, encoding both sides.
pub fn build_query(pairs: &[(&str, &str)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_unreserved_passthrough() {
        assert_eq!(encode_component("AZaz09-_.~"), "AZaz09-_.~");
    }

    #[test]
    fn encode_specials() {
        assert_eq!(encode_component("a b/c?d&e=f"), "a%20b%2Fc%3Fd%26e%3Df");
        assert_eq!(encode_component("é"), "%C3%A9");
    }

    #[test]
    fn decode_roundtrip() {
        for s in ["hello world", "a/b?c=d&e", "üñîçødé 😀", ""] {
            assert_eq!(decode_component(&encode_component(s)), s);
        }
    }

    #[test]
    fn decode_plus_as_space() {
        assert_eq!(decode_component("a+b"), "a b");
    }

    #[test]
    fn decode_tolerates_malformed_escapes() {
        assert_eq!(decode_component("100%"), "100%");
        assert_eq!(decode_component("%zz"), "%zz");
        assert_eq!(decode_component("%4"), "%4");
    }

    #[test]
    fn segment_decoding_keeps_plus_literal() {
        assert_eq!(decode_segment("a+b"), "a+b");
        assert_eq!(decode_segment("a%20b"), "a b");
        // One decode only: a double-encoded escape survives as its
        // single-decoded form.
        assert_eq!(decode_segment("a%2520b"), "a%20b");
        // An encoded slash decodes inside the segment; it can no longer
        // change path segmentation at this point.
        assert_eq!(decode_segment("a%2Fb"), "a/b");
    }

    #[test]
    fn parse_query_pairs() {
        let pairs = parse_query("a=1&b=two+words&flag&empty=");
        assert_eq!(
            pairs,
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "two words".into()),
                ("flag".into(), "".into()),
                ("empty".into(), "".into()),
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn build_query_encodes() {
        assert_eq!(build_query(&[("a", "1"), ("q", "x y")]), "a=1&q=x%20y");
    }
}
