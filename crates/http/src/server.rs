//! HTTP/1.1 server with two interchangeable cores.
//!
//! Handles exactly what the Chronos REST API needs: persistent connections,
//! `Content-Length` bodies (both directions), a body size cap for untrusted
//! uploads, and graceful shutdown so integration tests can tear servers
//! down deterministically.
//!
//! # Cores
//!
//! * **Reactor** (default on Linux) — a single epoll event loop owns every
//!   socket; handlers run on the bounded worker pool and hand serialized
//!   responses back through a completion queue + eventfd (see
//!   [`crate::reactor`]). Idle keep-alive connections cost a few hundred
//!   bytes of state, so one box holds tens of thousands of polling agents.
//! * **Threaded** — the original blocking accept/worker model, one pool
//!   thread per admitted connection. Kept fully functional as the baseline
//!   experiment E12 measures against, selectable with
//!   [`Server::threaded`] (or `CHRONOS_HTTP_CORE=threaded`).
//!
//! Both cores share the admission semantics below; switching cores never
//! changes what a client observes (`tests/overload.rs` runs against both).
//!
//! # Overload protection
//!
//! The accept→pool handoff is *bounded*: a fixed worker pool, a bounded job
//! queue, and an in-flight connection cap. When either limit is hit the
//! server sheds the new connection cheaply on the accept thread — a typed
//! `429` `{"error":{"code":"overloaded",...}}` body with `Retry-After`
//! hints — instead of queueing it until collapse. [`Server::unbounded`]
//! restores the old accept-everything behavior (the baseline measured by
//! experiment E11).
//!
//! # Graceful drain
//!
//! [`ServerHandle::drain`] runs a two-phase shutdown: first *draining* —
//! new connections get `503 draining`, in-flight requests finish and their
//! keep-alive connections are closed politely with `Connection: close` —
//! then, once no connection is in flight, *stopped*: the listener closes
//! and the pool joins. [`ServerHandle::shutdown`] is drain followed by
//! teardown, so no accepted request is ever silently dropped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronos_json::{obj, Value};
use chronos_metrics::{Counter, Gauge};
use chronos_util::ThreadPool;

use crate::types::{Headers, Method, Request, Response, Status, DEADLINE_HEADER};
use crate::types::{CODE_DRAINING, CODE_OVERLOADED};

/// Maximum accepted request body (64 MiB — result zips can be large).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Maximum length of the request line plus headers.
pub(crate) const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Body bytes are read (and the buffer grown) in increments of this size,
/// so an attacker declaring a huge `Content-Length` commits no memory
/// beyond what actually arrives.
const BODY_CHUNK: usize = 64 * 1024;
/// Per-connection socket timeout. Kept short so idle keep-alive connections
/// re-check the lifecycle phase frequently; `read_request` treats a timeout
/// on an idle connection as "no request yet", not an error.
const IO_TIMEOUT: Duration = Duration::from_millis(500);
/// How long [`ServerHandle::drain`] waits for in-flight requests before
/// giving up and tearing down anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Lifecycle phases of a running server.
pub(crate) const PHASE_RUNNING: u8 = 0;
pub(crate) const PHASE_DRAINING: u8 = 1;
pub(crate) const PHASE_STOPPED: u8 = 2;

/// Default stall budget while reading a request head or body — matches the
/// threaded core's `MAX_STALLS × IO_TIMEOUT` (~30 s).
const DEFAULT_HEADER_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Default keep-alive idle timeout on the reactor core. Polling agents call
/// in far more often than this; a connection quiet for a full minute is
/// almost certainly abandoned.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Counters surfaced by a running server: admission decisions and the
/// current in-flight level. Shared with the dispatch layer (which owns the
/// `deadline_exceeded` count) and the status UI.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections admitted to the worker pool.
    pub accepted: Counter,
    /// Requests fully parsed and handed to the handler.
    pub requests: Counter,
    /// Connections shed with `429 overloaded` (queue or in-flight cap hit).
    pub shed_overload: Counter,
    /// Connections shed with `503 draining` during shutdown.
    pub shed_draining: Counter,
    /// Requests answered `504 deadline_exceeded` (incremented by the
    /// dispatch layer, which owns deadline semantics).
    pub deadline_exceeded: Counter,
    /// Connections dropped (or answered `408 request_timeout`) for stalling:
    /// keep-alive idle past the cap, or a head/body read that timed out
    /// (slowloris).
    pub shed_idle: Counter,
    /// Admitted connections currently queued or being served.
    pub inflight: Gauge,
    /// All tracked connections, admitted or being shed (reactor core).
    pub open_connections: Gauge,
    /// Keep-alive connections currently idle between requests (reactor
    /// core) — the population that used to pin worker threads.
    pub idle_keepalive: Gauge,
    /// Reactor event-loop iterations (epoll wakeups + ticks).
    pub reactor_loops: Counter,
    /// Worker→reactor completion wakeups observed on the eventfd.
    pub wakeups: Counter,
    /// Cluster role of this node: 0 follower, 1 candidate, 2 leader
    /// (single-node deployments stay 2, the write-accepting role).
    pub cluster_role: Gauge,
    /// Current cluster term (the fencing token); 0 outside cluster mode.
    pub cluster_term: Gauge,
    /// Milliseconds since the last leader contact (0 while leading).
    pub replication_lag_ms: Gauge,
    /// Elections this node has started.
    pub elections: Counter,
    /// Replication segments shipped while leading (heartbeats excluded).
    pub segments_shipped: Counter,
}

impl ServerMetrics {
    /// A fresh, shareable metrics block.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// JSON snapshot for health endpoints and the status UI.
    pub fn to_json(&self) -> Value {
        obj! {
            "accepted" => self.accepted.get() as i64,
            "requests" => self.requests.get() as i64,
            "shed_overload" => self.shed_overload.get() as i64,
            "shed_draining" => self.shed_draining.get() as i64,
            "deadline_exceeded" => self.deadline_exceeded.get() as i64,
            "shed_idle" => self.shed_idle.get() as i64,
            "inflight" => self.inflight.get() as i64,
            "open_connections" => self.open_connections.get() as i64,
            "idle_keepalive" => self.idle_keepalive.get() as i64,
            "reactor_loops" => self.reactor_loops.get() as i64,
            "wakeups" => self.wakeups.get() as i64,
            "cluster_role" => self.cluster_role.get() as i64,
            "cluster_term" => self.cluster_term.get() as i64,
            "replication_lag_ms" => self.replication_lag_ms.get() as i64,
            "elections" => self.elections.get() as i64,
            "segments_shipped" => self.segments_shipped.get() as i64,
        }
    }
}

/// Lifecycle + metrics state shared between the accept/event loop, every
/// connection handler, and the [`ServerHandle`].
pub(crate) struct Shared {
    pub(crate) phase: AtomicU8,
    pub(crate) metrics: Arc<ServerMetrics>,
}

impl Shared {
    pub(crate) fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }
}

/// Which connection-handling core a [`Server`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Epoll event loop (Linux only; elsewhere this falls back to
    /// [`CoreKind::Threaded`]).
    Reactor,
    /// Blocking accept loop, one pool thread per admitted connection.
    Threaded,
}

impl CoreKind {
    /// The platform default: reactor where epoll exists, threaded elsewhere.
    fn default_for_platform() -> CoreKind {
        if cfg!(target_os = "linux") {
            CoreKind::Reactor
        } else {
            CoreKind::Threaded
        }
    }

    /// On non-Linux hosts the reactor silently degrades to the threaded
    /// core, which implements identical semantics.
    fn effective(self) -> CoreKind {
        if cfg!(target_os = "linux") {
            self
        } else {
            CoreKind::Threaded
        }
    }
}

/// The server configuration and entry point.
pub struct Server {
    workers: usize,
    bounded: bool,
    queue_depth: Option<usize>,
    max_inflight: Option<usize>,
    retry_after: Duration,
    metrics: Option<Arc<ServerMetrics>>,
    core: CoreKind,
    header_read_timeout: Duration,
    idle_timeout: Duration,
}

/// The running core behind a [`ServerHandle`].
enum CoreHandle {
    Threaded {
        accept_thread: Option<std::thread::JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Reactor {
        thread: Option<std::thread::JoinHandle<()>>,
        wake: Arc<crate::sys::EventFd>,
    },
}

impl CoreHandle {
    fn finished(&self) -> bool {
        match self {
            CoreHandle::Threaded { accept_thread } => accept_thread.is_none(),
            #[cfg(target_os = "linux")]
            CoreHandle::Reactor { thread, .. } => thread.is_none(),
        }
    }
}

/// A handle to a running server: address introspection, metrics, drain and
/// shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    pool: Option<Arc<ThreadPool>>,
    core: CoreHandle,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// Creates a server with a default worker count (2× CPUs, min 4) and
    /// bounded admission (queue depth 2× workers, in-flight cap workers +
    /// queue).
    pub fn new() -> Self {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Server {
            workers: (cpus * 2).max(4),
            bounded: true,
            queue_depth: None,
            max_inflight: None,
            retry_after: Duration::from_secs(1),
            metrics: None,
            core: CoreKind::default_for_platform(),
            header_read_timeout: DEFAULT_HEADER_READ_TIMEOUT,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        }
    }

    /// Selects the epoll reactor core (the default on Linux). On platforms
    /// without epoll this silently falls back to the threaded core.
    pub fn reactor(mut self) -> Self {
        self.core = CoreKind::Reactor;
        self
    }

    /// Selects the blocking thread-per-connection core — the pre-reactor
    /// behavior, kept as the baseline experiment E12 compares against.
    pub fn threaded(mut self) -> Self {
        self.core = CoreKind::Threaded;
        self
    }

    /// Overrides the stall budget for reading one request's head and body
    /// (the slowloris guard; reactor core). A request whose bytes stop
    /// flowing for this long is answered `408 request_timeout` and closed.
    /// Default ~30 s, matching the threaded core's stall budget.
    pub fn header_read_timeout(mut self, timeout: Duration) -> Self {
        self.header_read_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Overrides how long a keep-alive connection may sit idle between
    /// requests before the reactor closes it (default 60 s).
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Overrides the worker thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the bounded queue depth (connections waiting for a worker
    /// beyond the ones being served). Default: 2× workers.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self.bounded = true;
        self
    }

    /// Overrides the in-flight connection cap (queued + served). Default:
    /// workers + queue depth.
    pub fn max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = Some(cap.max(1));
        self
    }

    /// Disables admission control: unbounded queue, no in-flight cap — the
    /// pre-overload-protection behavior, kept as the E11 baseline.
    pub fn unbounded(mut self) -> Self {
        self.bounded = false;
        self
    }

    /// Overrides the `Retry-After` hint attached to shed responses.
    pub fn retry_after(mut self, hint: Duration) -> Self {
        self.retry_after = hint;
        self
    }

    /// Shares an externally created metrics block (the dispatch layer needs
    /// it before the server starts, to count `deadline_exceeded`).
    pub fn with_metrics(mut self, metrics: Arc<ServerMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving `handler` on background threads. Returns immediately.
    ///
    /// The `CHRONOS_HTTP_CORE` environment variable (`reactor` /
    /// `threaded`) overrides the builder's core selection, so the whole
    /// test suite can be forced onto either core without code changes.
    pub fn serve<F>(self, addr: &str, handler: F) -> std::io::Result<ServerHandle>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let handler = Arc::new(handler);
        let queue_depth =
            if self.bounded { Some(self.queue_depth.unwrap_or(self.workers * 2)) } else { None };
        let max_inflight = match (self.bounded, self.max_inflight) {
            (false, _) => usize::MAX,
            (true, Some(cap)) => cap,
            (true, None) => self.workers + queue_depth.unwrap_or(0),
        };
        let retry_after = self.retry_after;
        let pool = Arc::new(match queue_depth {
            Some(depth) => ThreadPool::bounded_with_name(self.workers, depth, "chronos-http"),
            None => ThreadPool::with_name(self.workers, "chronos-http"),
        });
        let metrics = self.metrics.unwrap_or_else(ServerMetrics::shared);
        let shared = Arc::new(Shared { phase: AtomicU8::new(PHASE_RUNNING), metrics });

        let core = match std::env::var("CHRONOS_HTTP_CORE").as_deref() {
            Ok("threaded") => CoreKind::Threaded,
            Ok("reactor") => CoreKind::Reactor,
            _ => self.core,
        }
        .effective();

        #[cfg(target_os = "linux")]
        if core == CoreKind::Reactor {
            let cfg = crate::reactor::ReactorConfig {
                max_inflight,
                retry_after,
                header_read_timeout: self.header_read_timeout,
                idle_timeout: self.idle_timeout,
            };
            let (thread, wake) = crate::reactor::spawn(
                listener,
                Arc::clone(&shared),
                Arc::clone(&pool),
                handler,
                cfg,
            )?;
            return Ok(ServerHandle {
                addr: local_addr,
                shared,
                pool: Some(pool),
                core: CoreHandle::Reactor { thread: Some(thread), wake },
            });
        }
        let _ = core; // non-Linux: only the threaded core exists

        let accept_shared = Arc::clone(&shared);
        let accept_pool = Arc::clone(&pool);
        let accept_thread = std::thread::Builder::new()
            .name("chronos-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    match accept_shared.phase() {
                        PHASE_STOPPED => break,
                        PHASE_DRAINING => {
                            if let Ok(stream) = stream {
                                accept_shared.metrics.shed_draining.inc();
                                shed(
                                    stream,
                                    Status::SERVICE_UNAVAILABLE,
                                    CODE_DRAINING,
                                    "server is draining; connection not accepted",
                                    retry_after,
                                );
                            }
                            continue;
                        }
                        _ => {}
                    }
                    let Ok(stream) = stream else { continue };
                    let metrics = &accept_shared.metrics;
                    if metrics.inflight.get() as usize >= max_inflight {
                        metrics.shed_overload.inc();
                        shed(
                            stream,
                            Status::TOO_MANY_REQUESTS,
                            CODE_OVERLOADED,
                            "connection limit reached; retry later",
                            retry_after,
                        );
                        continue;
                    }
                    // Keep a second handle so the connection can still be
                    // answered if the bounded queue rejects the job (the
                    // closure — and the primary handle — are dropped then).
                    let shed_handle = stream.try_clone().ok();
                    metrics.inflight.inc();
                    let handler = Arc::clone(&handler);
                    let job_shared = Arc::clone(&accept_shared);
                    let admitted = accept_pool.try_execute(move || {
                        handle_connection(stream, &*handler, &job_shared);
                        job_shared.metrics.inflight.dec();
                    });
                    if admitted {
                        metrics.accepted.inc();
                    } else {
                        metrics.inflight.dec();
                        metrics.shed_overload.inc();
                        if let Some(stream) = shed_handle {
                            shed(
                                stream,
                                Status::TOO_MANY_REQUESTS,
                                CODE_OVERLOADED,
                                "request queue full; retry later",
                                retry_after,
                            );
                        }
                    }
                }
                // The accept thread's pool handle drops here; the
                // ServerHandle holds the other one and joins deterministically.
            })
            .expect("failed to spawn accept thread");
        Ok(ServerHandle {
            addr: local_addr,
            shared,
            pool: Some(pool),
            core: CoreHandle::Threaded { accept_thread: Some(accept_thread) },
        })
    }
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL of the server, e.g. `http://127.0.0.1:8080`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The server's admission metrics.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether the server is draining (or already stopped) — the readiness
    /// signal behind `/readyz`.
    pub fn is_draining(&self) -> bool {
        self.shared.phase() != PHASE_RUNNING
    }

    /// Number of handler jobs that panicked (the pool catches them; the
    /// worker survives).
    pub fn pool_panics(&self) -> usize {
        self.pool.as_ref().map(|p| p.panics()).unwrap_or(0)
    }

    /// Two-phase graceful drain. Phase one: stop admitting work — new
    /// connections get `503 draining`, in-flight requests finish and their
    /// keep-alive connections close politely (`Connection: close`). Phase
    /// two, once nothing is in flight: close the listener and join the
    /// pool. Idempotent. Returns `true` when every in-flight request
    /// completed before teardown (`false` only if [`DRAIN_TIMEOUT`]
    /// expired).
    pub fn drain(&mut self) -> bool {
        let was = self.shared.phase.compare_exchange(
            PHASE_RUNNING,
            PHASE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        if was.is_err() && self.core.finished() {
            return true; // already drained
        }
        #[cfg(target_os = "linux")]
        if let CoreHandle::Reactor { wake, .. } = &self.core {
            // Nudge the loop so it sweeps idle keep-alive connections now
            // instead of on its next tick.
            wake.wake();
        }
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.shared.metrics.inflight.get() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let clean = self.shared.metrics.inflight.get() == 0;
        self.shared.phase.store(PHASE_STOPPED, Ordering::SeqCst);
        match &mut self.core {
            CoreHandle::Threaded { accept_thread } => {
                // Wake the blocking accept() with a no-op connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
            }
            #[cfg(target_os = "linux")]
            CoreHandle::Reactor { thread, wake } => {
                wake.wake();
                if let Some(t) = thread.take() {
                    let _ = t.join();
                }
            }
        }
        if let Some(pool) = self.pool.take() {
            // The core thread has exited and dropped its handle, so this
            // unwrap succeeds and dropping the pool joins every worker.
            if let Ok(pool) = Arc::try_unwrap(pool) {
                drop(pool);
            }
        }
        clean
    }

    /// Graceful shutdown: [`ServerHandle::drain`] then teardown. Idempotent.
    pub fn shutdown(&mut self) {
        let _ = self.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers a connection the server refuses to admit, entirely on the accept
/// thread: a typed error envelope plus `Retry-After` hints, then close. The
/// body is a handful of bytes, so the write almost always completes into
/// the socket buffer without blocking; a pathological peer costs at most
/// one `IO_TIMEOUT`.
fn shed(mut stream: TcpStream, status: Status, code: &str, message: &str, retry_after: Duration) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let response = Response::error_named(status, code, message).with_retry_after(retry_after);
    let _ = write_response(&mut stream, &response, false, Method::Get);
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_connection<F>(stream: TcpStream, handler: &F, shared: &Shared)
where
    F: Fn(Request) -> Response,
{
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        if shared.phase() == PHASE_STOPPED {
            break;
        }
        let (request, mut keep_alive) = match read_request(&mut reader) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break, // clean EOF between requests
            Err(ReadError::Idle) => {
                // No request in flight: during drain the idle keep-alive
                // connection just closes; otherwise poll again.
                if shared.phase() != PHASE_RUNNING {
                    break;
                }
                continue;
            }
            Err(ReadError::BadRequest(msg)) => {
                let resp = Response::error(Status::BAD_REQUEST, msg);
                let _ = write_response(&mut stream, &resp, false, Method::Get);
                break;
            }
            Err(ReadError::TooLarge) => {
                let resp = Response::error(Status::PAYLOAD_TOO_LARGE, "request too large");
                let _ = write_response(&mut stream, &resp, false, Method::Get);
                break;
            }
            Err(ReadError::Io) => break,
        };
        // A request that arrived before (or while) drain began is served to
        // completion — but the connection closes politely afterwards
        // instead of being cut mid-keep-alive.
        if shared.phase() != PHASE_RUNNING {
            keep_alive = false;
        }
        let method = request.method;
        shared.metrics.requests.inc();
        let response = handler(request);
        // Dropped-response fault: the handler has fully committed its
        // effects, but the client never hears back (connection dies). This
        // is the case idempotency keys exist for.
        if chronos_util::fail_eval!("http.server.drop_response").is_some() {
            break;
        }
        if write_response(&mut stream, &response, keep_alive, method).is_err() {
            break;
        }
        if !keep_alive {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let _ = peer; // reserved for access logging
}

#[derive(Debug)]
enum ReadError {
    BadRequest(String),
    TooLarge,
    Io,
    /// The connection is idle (read timed out before any bytes arrived).
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Retries after socket timeouts (the short [`IO_TIMEOUT`] is a polling
/// interval, not a deadline). ~30 s of inactivity mid-message gives up.
const MAX_STALLS: u32 = 60;

/// Reads one line, tolerating timeouts while data is still arriving.
/// `read_until` semantics guarantee partially read bytes stay in `line`.
fn read_line_retry(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<usize, ReadError> {
    let start = line.len();
    let mut stalls = 0;
    loop {
        match reader.read_line(line) {
            Ok(0) if line.len() == start => return Ok(0),
            Ok(_) => return Ok(line.len() - start),
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(ReadError::Io);
                }
            }
            Err(_) => return Err(ReadError::Io),
        }
    }
}

/// Fills `buf` completely, tolerating timeouts while data keeps arriving.
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), ReadError> {
    let mut filled = 0;
    let mut stalls = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadError::Io),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(ReadError::Io);
                }
            }
            Err(_) => return Err(ReadError::Io),
        }
    }
    Ok(())
}

/// Reads a `content_length` body into `body` in [`BODY_CHUNK`] increments,
/// growing the buffer only as bytes actually arrive. The declared length is
/// an untrusted claim: committing it up front would let a peer reserve
/// 64 MiB per connection without sending a byte.
fn read_body_into<R: Read>(
    reader: &mut R,
    content_length: usize,
    body: &mut Vec<u8>,
) -> Result<(), ReadError> {
    let mut remaining = content_length;
    while remaining > 0 {
        let chunk = remaining.min(BODY_CHUNK);
        let start = body.len();
        body.resize(start + chunk, 0);
        read_full(reader, &mut body[start..])?;
        remaining -= chunk;
    }
    Ok(())
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending another request; `Err(Idle)` means nothing has
/// arrived yet (caller should re-check the lifecycle phase and poll again).
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<(Request, bool)>, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return Err(ReadError::Idle),
        Err(e) if is_timeout(&e) => {
            // Partial request line: wait for the rest.
            read_line_retry(reader, &mut line)?;
        }
        Err(_) => return Err(ReadError::Io),
    }
    let request_line = line.trim_end();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| ReadError::BadRequest(format!("bad method in {request_line:?}")))?;
    let target =
        parts.next().ok_or_else(|| ReadError::BadRequest("missing request target".to_string()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!("unsupported version {version}")));
    }
    let http10 = version == "HTTP/1.0";

    let mut headers = Headers::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut header_line = String::new();
        match read_line_retry(reader, &mut header_line)? {
            0 => return Err(ReadError::Io),
            n => head_bytes += n,
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        match trimmed.split_once(':') {
            Some((name, value)) => headers.add(name.trim(), value.trim()),
            None => return Err(ReadError::BadRequest(format!("malformed header {trimmed:?}"))),
        }
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest("bad content-length".to_string()))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    if headers.get("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ReadError::BadRequest("chunked requests not supported".to_string()));
    }
    let mut body = Vec::new();
    if content_length > 0 {
        read_body_into(reader, content_length, &mut body)?;
    }

    let keep_alive = match headers.get("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => !http10,
    };

    // The caller's processing budget, counted from arrival.
    let deadline = headers
        .get(DEADLINE_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let request = Request {
        method,
        // The raw (still percent-encoded) path: the router decodes each
        // segment exactly once at match time. Decoding here as well would
        // double-decode params and let an encoded `/` alter segmentation.
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body,
        deadline,
    };
    Ok(Some((request, keep_alive)))
}

/// Serializes a response to the exact bytes both cores put on the wire
/// (HEAD responses advertise the length but carry no body).
pub(crate) fn serialize_response(response: &Response, keep_alive: bool, method: Method) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", response.status.0, response.status.reason());
    for (name, value) in response.headers.iter() {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    if method != Method::Head {
        bytes.extend_from_slice(&response.body);
    }
    bytes
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    method: Method,
) -> std::io::Result<()> {
    stream.write_all(&serialize_response(response, keep_alive, method))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use chronos_json::obj;

    fn echo_server() -> ServerHandle {
        Server::new()
            .workers(4)
            .serve("127.0.0.1:0", |req| {
                let doc = obj! {
                    "method" => req.method.as_str(),
                    "path" => req.path.clone(),
                    "query" => req.query.clone(),
                    "body_len" => req.body.len(),
                };
                Response::json(&doc)
            })
            .expect("bind")
    }

    #[test]
    fn serves_requests() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        let resp = client.get("/hello?x=1").unwrap();
        assert_eq!(resp.status, Status::OK);
        let j = resp.json_body().unwrap();
        assert_eq!(j.get("method").and_then(|v| v.as_str()), Some("GET"));
        assert_eq!(j.get("path").and_then(|v| v.as_str()), Some("/hello"));
        assert_eq!(j.get("query").and_then(|v| v.as_str()), Some("x=1"));
    }

    #[test]
    fn posts_bodies() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        let resp = client.post_json("/submit", &obj! {"k" => "v"}).unwrap();
        let j = resp.json_body().unwrap();
        assert_eq!(j.get("body_len").and_then(|v| v.as_u64()), Some(9)); // {"k":"v"}
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        // Multiple sequential requests through one client exercise keep-alive.
        for i in 0..5 {
            let resp = client.get(&format!("/req/{i}")).unwrap();
            assert!(resp.status.is_success());
        }
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let url = server.base_url();
        let results = chronos_util::pool::scoped_indexed(8, |i| {
            let client = Client::new(&url);
            let resp = client.get(&format!("/thread/{i}")).unwrap();
            resp.status.is_success()
        });
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn shutdown_stops_server() {
        let mut server = echo_server();
        let url = server.base_url();
        server.shutdown();
        let client = Client::new(&url);
        // After shutdown either connection or request fails.
        assert!(client.get("/x").is_err() || !client.get("/x").unwrap().status.is_success());
    }

    #[test]
    fn rejects_oversized_content_length_header() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut buf = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut buf).unwrap();
        assert!(buf.contains("413"), "got {buf}");
    }

    #[test]
    fn rejects_garbage_request_line() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut buf).unwrap();
        assert!(buf.contains("400"), "got {buf}");
    }

    #[test]
    fn body_read_does_not_precommit_declared_length() {
        // Regression: the body buffer used to be `vec![0; content_length]`
        // before a single byte arrived — a 64 MiB commit per connection off
        // an untrusted header. Only ~1000 bytes arrive here, so the buffer
        // must stay within one chunk of that, not the declared 64 MiB.
        let mut body = Vec::new();
        let mut reader = std::io::Cursor::new(vec![7u8; 1000]);
        assert!(read_body_into(&mut reader, MAX_BODY_BYTES, &mut body).is_err());
        assert!(
            body.capacity() <= 2 * BODY_CHUNK,
            "buffer pre-committed {} bytes off the declared Content-Length",
            body.capacity()
        );
    }

    #[test]
    fn body_read_roundtrips_across_chunks() {
        let data: Vec<u8> = (0..3 * BODY_CHUNK + 17).map(|i| (i % 251) as u8).collect();
        let mut reader = std::io::Cursor::new(data.clone());
        let mut body = Vec::new();
        read_body_into(&mut reader, data.len(), &mut body).unwrap();
        assert_eq!(body, data);
    }

    #[test]
    fn large_declared_body_with_no_bytes_is_rejected_gracefully() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Declare a large (but acceptable) body and send nothing: the
        // server must time the read out and drop the connection without
        // ballooning memory or panicking, then keep serving others.
        write!(stream, "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", 1024 * 1024)
            .unwrap();
        drop(stream); // EOF mid-body
        let client = Client::new(&server.base_url());
        assert!(client.get("/alive").unwrap().status.is_success());
    }

    #[test]
    fn sheds_with_typed_envelope_when_queue_is_full() {
        // One worker parked in a slow handler, queue depth 0, cap 1: the
        // second connection must be shed with a typed 429 on the accept
        // thread while the first is still being served.
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let guard = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let server = Server::new()
            .workers(1)
            .queue_depth(0)
            .max_inflight(1)
            .serve("127.0.0.1:0", move |_req| {
                drop(handler_gate.lock());
                Response::text(Status::OK, "slow")
            })
            .expect("bind");
        let url = server.base_url();
        let slow = std::thread::spawn({
            let url = url.clone();
            move || Client::new(&url).get("/slow")
        });
        // Wait for the first request to occupy the worker.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().requests.get() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let resp = Client::new(&url).get("/second").unwrap();
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        let j = resp.json_body().unwrap();
        assert_eq!(j.pointer("/error/code").and_then(|v| v.as_str()), Some(CODE_OVERLOADED));
        assert!(resp.retry_after().is_some(), "shed response must carry Retry-After");
        assert!(server.metrics().shed_overload.get() >= 1);
        drop(guard);
        assert!(slow.join().unwrap().unwrap().status.is_success());
    }

    #[test]
    fn drain_finishes_inflight_and_sheds_new_connections() {
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let guard = gate.lock();
        let handler_gate = Arc::clone(&gate);
        let server = Server::new()
            .workers(2)
            .serve("127.0.0.1:0", move |_req| {
                drop(handler_gate.lock());
                Response::text(Status::OK, "done")
            })
            .expect("bind");
        let url = server.base_url();
        let inflight = std::thread::spawn({
            let url = url.clone();
            move || Client::new(&url).get("/inflight")
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().requests.get() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Drain on a side thread; release the parked handler shortly after
        // it has begun, so drain observes a genuinely in-flight request.
        let drain_thread = std::thread::spawn(move || {
            let mut server = server;
            let clean = server.drain();
            (server, clean)
        });
        std::thread::sleep(Duration::from_millis(100));
        drop(guard);
        let (server, clean) = drain_thread.join().unwrap();
        assert!(clean, "drain must complete with no dropped request");
        // The in-flight request finished with a response.
        let resp = inflight.join().unwrap().unwrap();
        assert!(resp.status.is_success());
        // New connections are refused entirely now.
        assert!(Client::new(&url).get("/late").is_err());
        assert_eq!(server.pool_panics(), 0);
    }

    #[test]
    fn unbounded_server_never_sheds() {
        let server = Server::new()
            .workers(2)
            .unbounded()
            .serve("127.0.0.1:0", |_req| Response::text(Status::OK, "ok"));
        let server = server.expect("bind");
        let url = server.base_url();
        let results = chronos_util::pool::scoped_indexed(16, |_| {
            Client::new(&url).get("/x").unwrap().status.is_success()
        });
        assert!(results.into_iter().all(|ok| ok));
        assert_eq!(server.metrics().shed_overload.get(), 0);
    }
}
