//! Blocking HTTP/1.1 server on a thread pool.
//!
//! Handles exactly what the Chronos REST API needs: persistent connections,
//! `Content-Length` bodies (both directions), a body size cap for untrusted
//! uploads, and graceful shutdown so integration tests can tear servers
//! down deterministically.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chronos_util::ThreadPool;

use crate::types::{Headers, Method, Request, Response, Status};

/// Maximum accepted request body (64 MiB — result zips can be large).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Maximum length of the request line plus headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Per-connection socket timeout. Kept short so idle keep-alive connections
/// re-check the shutdown flag frequently; `read_request` treats a timeout on
/// an idle connection as "no request yet", not an error.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The server configuration and entry point.
pub struct Server {
    workers: usize,
}

/// A handle to a running server: address introspection and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// Creates a server with a default worker count (2× CPUs, min 4).
    pub fn new() -> Self {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Server { workers: (cpus * 2).max(4) }
    }

    /// Overrides the worker thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving `handler` on background threads. Returns immediately.
    pub fn serve<F>(self, addr: &str, handler: F) -> std::io::Result<ServerHandle>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let pool = ThreadPool::with_name(self.workers, "chronos-http");
        let shutdown_accept = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("chronos-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    let shutdown = Arc::clone(&shutdown_accept);
                    pool.execute(move || handle_connection(stream, &*handler, &shutdown));
                }
                // Pool drops here, joining all in-flight requests.
            })
            .expect("failed to spawn accept thread");
        Ok(ServerHandle { addr: local_addr, shutdown, accept_thread: Some(accept_thread) })
    }
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL of the server, e.g. `http://127.0.0.1:8080`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Signals shutdown and joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<F>(stream: TcpStream, handler: &F, shutdown: &AtomicBool)
where
    F: Fn(Request) -> Response,
{
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let (request, keep_alive) = match read_request(&mut reader) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break,                // clean EOF between requests
            Err(ReadError::Idle) => continue, // no request yet; re-check shutdown
            Err(ReadError::BadRequest(msg)) => {
                let resp = Response::error(Status::BAD_REQUEST, msg);
                let _ = write_response(&mut stream, &resp, false, Method::Get);
                break;
            }
            Err(ReadError::TooLarge) => {
                let resp = Response::error(Status::PAYLOAD_TOO_LARGE, "request too large");
                let _ = write_response(&mut stream, &resp, false, Method::Get);
                break;
            }
            Err(ReadError::Io) => break,
        };
        let method = request.method;
        let response = handler(request);
        // Dropped-response fault: the handler has fully committed its
        // effects, but the client never hears back (connection dies). This
        // is the case idempotency keys exist for.
        if chronos_util::fail_eval!("http.server.drop_response").is_some() {
            break;
        }
        if write_response(&mut stream, &response, keep_alive, method).is_err() {
            break;
        }
        if !keep_alive {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let _ = peer; // reserved for access logging
}

enum ReadError {
    BadRequest(String),
    TooLarge,
    Io,
    /// The connection is idle (read timed out before any bytes arrived).
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Retries after socket timeouts (the short [`IO_TIMEOUT`] is a polling
/// interval, not a deadline). ~30 s of inactivity mid-message gives up.
const MAX_STALLS: u32 = 60;

/// Reads one line, tolerating timeouts while data is still arriving.
/// `read_until` semantics guarantee partially read bytes stay in `line`.
fn read_line_retry(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<usize, ReadError> {
    let start = line.len();
    let mut stalls = 0;
    loop {
        match reader.read_line(line) {
            Ok(0) if line.len() == start => return Ok(0),
            Ok(_) => return Ok(line.len() - start),
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(ReadError::Io);
                }
            }
            Err(_) => return Err(ReadError::Io),
        }
    }
}

/// Fills `buf` completely, tolerating timeouts while data keeps arriving.
fn read_full(reader: &mut BufReader<TcpStream>, buf: &mut [u8]) -> Result<(), ReadError> {
    let mut filled = 0;
    let mut stalls = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadError::Io),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(ReadError::Io);
                }
            }
            Err(_) => return Err(ReadError::Io),
        }
    }
    Ok(())
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending another request; `Err(Idle)` means nothing has
/// arrived yet (caller should re-check the shutdown flag and poll again).
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<(Request, bool)>, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return Err(ReadError::Idle),
        Err(e) if is_timeout(&e) => {
            // Partial request line: wait for the rest.
            read_line_retry(reader, &mut line)?;
        }
        Err(_) => return Err(ReadError::Io),
    }
    let request_line = line.trim_end();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| ReadError::BadRequest(format!("bad method in {request_line:?}")))?;
    let target =
        parts.next().ok_or_else(|| ReadError::BadRequest("missing request target".to_string()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!("unsupported version {version}")));
    }
    let http10 = version == "HTTP/1.0";

    let mut headers = Headers::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut header_line = String::new();
        match read_line_retry(reader, &mut header_line)? {
            0 => return Err(ReadError::Io),
            n => head_bytes += n,
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        match trimmed.split_once(':') {
            Some((name, value)) => headers.add(name.trim(), value.trim()),
            None => return Err(ReadError::BadRequest(format!("malformed header {trimmed:?}"))),
        }
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest("bad content-length".to_string()))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    if headers.get("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ReadError::BadRequest("chunked requests not supported".to_string()));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        read_full(reader, &mut body)?;
    }

    let keep_alive = match headers.get("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => !http10,
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let request = Request {
        method,
        // The raw (still percent-encoded) path: the router decodes each
        // segment exactly once at match time. Decoding here as well would
        // double-decode params and let an encoded `/` alter segmentation.
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body,
    };
    Ok(Some((request, keep_alive)))
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    method: Method,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", response.status.0, response.status.reason());
    for (name, value) in response.headers.iter() {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if method != Method::Head {
        stream.write_all(&response.body)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use chronos_json::obj;

    fn echo_server() -> ServerHandle {
        Server::new()
            .workers(4)
            .serve("127.0.0.1:0", |req| {
                let doc = obj! {
                    "method" => req.method.as_str(),
                    "path" => req.path.clone(),
                    "query" => req.query.clone(),
                    "body_len" => req.body.len(),
                };
                Response::json(&doc)
            })
            .expect("bind")
    }

    #[test]
    fn serves_requests() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        let resp = client.get("/hello?x=1").unwrap();
        assert_eq!(resp.status, Status::OK);
        let j = resp.json_body().unwrap();
        assert_eq!(j.get("method").and_then(|v| v.as_str()), Some("GET"));
        assert_eq!(j.get("path").and_then(|v| v.as_str()), Some("/hello"));
        assert_eq!(j.get("query").and_then(|v| v.as_str()), Some("x=1"));
    }

    #[test]
    fn posts_bodies() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        let resp = client.post_json("/submit", &obj! {"k" => "v"}).unwrap();
        let j = resp.json_body().unwrap();
        assert_eq!(j.get("body_len").and_then(|v| v.as_u64()), Some(9)); // {"k":"v"}
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = echo_server();
        let client = Client::new(&server.base_url());
        // Multiple sequential requests through one client exercise keep-alive.
        for i in 0..5 {
            let resp = client.get(&format!("/req/{i}")).unwrap();
            assert!(resp.status.is_success());
        }
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let url = server.base_url();
        let results = chronos_util::pool::scoped_indexed(8, |i| {
            let client = Client::new(&url);
            let resp = client.get(&format!("/thread/{i}")).unwrap();
            resp.status.is_success()
        });
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn shutdown_stops_server() {
        let mut server = echo_server();
        let url = server.base_url();
        server.shutdown();
        let client = Client::new(&url);
        // After shutdown either connection or request fails.
        assert!(client.get("/x").is_err() || !client.get("/x").unwrap().status.is_success());
    }

    #[test]
    fn rejects_oversized_content_length_header() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut buf = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut buf).unwrap();
        assert!(buf.contains("413"), "got {buf}");
    }

    #[test]
    fn rejects_garbage_request_line() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut buf).unwrap();
        assert!(buf.contains("400"), "got {buf}");
    }
}
