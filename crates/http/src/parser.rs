//! Incremental HTTP/1.1 request parser for the reactor core.
//!
//! The blocking core reads a request with `BufRead::read_line` on a socket
//! it owns for the whole exchange. The reactor owns thousands of sockets at
//! once and only gets bytes when the kernel says they arrived, so parsing
//! must be resumable at *any* byte boundary: mid-request-line, mid-header,
//! mid-CRLF, mid-body. [`RequestParser`] accumulates fed bytes and yields a
//! request exactly when one is complete; trailing bytes (a pipelined second
//! request) stay buffered for the next poll.
//!
//! Semantics intentionally mirror `server::read_request` — same limits,
//! same error strings, same keep-alive and deadline rules — so switching
//! cores never changes what a client observes.

use std::time::{Duration, Instant};

use crate::server::{MAX_BODY_BYTES, MAX_HEAD_BYTES};
use crate::types::{Headers, Method, Request, DEADLINE_HEADER};

/// Why a request could not be parsed. Maps to the same responses the
/// blocking core sends: `BadRequest` → 400, `TooLarge` → 413.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed message; the string is the client-visible diagnostic.
    BadRequest(String),
    /// Head or declared body over the configured limits.
    TooLarge,
}

/// A fully parsed request plus the connection directive derived from its
/// headers.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request, ready for dispatch.
    pub request: Request,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Head fields carried while the body is still arriving.
struct PendingHead {
    method: Method,
    path: String,
    query: String,
    headers: Headers,
    keep_alive: bool,
    deadline: Option<Instant>,
    content_length: usize,
}

enum State {
    /// Scanning for the blank line that terminates the head.
    Head,
    /// Head parsed; accumulating `content_length` body bytes.
    Body(PendingHead),
}

/// Resumable parser: [`feed`](RequestParser::feed) bytes as they arrive,
/// [`poll`](RequestParser::poll) for a complete request.
pub struct RequestParser {
    buf: Vec<u8>,
    state: State,
    /// Start of the line currently being scanned (Head state).
    line_start: usize,
    /// First byte not yet examined for a newline (Head state).
    scan: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// An empty parser, ready for the first byte.
    pub fn new() -> Self {
        RequestParser { buf: Vec::new(), state: State::Head, line_start: 0, scan: 0 }
    }

    /// Appends newly received bytes. Call [`poll`](Self::poll) afterwards.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when any bytes of a not-yet-complete request have arrived (the
    /// drain logic uses this to tell an idle connection from one
    /// mid-request).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || matches!(self.state, State::Body(_))
    }

    /// True while the head is done and body bytes are still arriving.
    pub fn reading_body(&self) -> bool {
        matches!(self.state, State::Body(_))
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to produce one complete request from the buffered bytes.
    /// `Ok(None)` means more bytes are needed. Leftover bytes beyond the
    /// returned request (pipelining) remain buffered. After an `Err` the
    /// parser is poisoned for this connection — the caller responds and
    /// closes, matching the blocking core.
    pub fn poll(&mut self) -> Result<Option<ParsedRequest>, ParseError> {
        loop {
            match &mut self.state {
                State::Head => {
                    let Some(head_end) = self.find_head_end() else {
                        // The entire buffer is head bytes (nothing after the
                        // terminator exists yet), so the cap applies to all
                        // of it.
                        if self.buf.len() > MAX_HEAD_BYTES {
                            return Err(ParseError::TooLarge);
                        }
                        return Ok(None);
                    };
                    if head_end > MAX_HEAD_BYTES {
                        return Err(ParseError::TooLarge);
                    }
                    let pending = parse_head(&self.buf[..head_end])?;
                    self.buf.drain(..head_end);
                    self.line_start = 0;
                    self.scan = 0;
                    if pending.content_length == 0 {
                        return Ok(Some(self.finish(pending, Vec::new())));
                    }
                    self.state = State::Body(pending);
                }
                State::Body(pending) => {
                    let content_length = pending.content_length;
                    if self.buf.len() < content_length {
                        return Ok(None);
                    }
                    let rest = self.buf.split_off(content_length);
                    let body = std::mem::replace(&mut self.buf, rest);
                    let pending = match std::mem::replace(&mut self.state, State::Head) {
                        State::Body(p) => p,
                        State::Head => unreachable!("matched Body above"),
                    };
                    return Ok(Some(self.finish(pending, body)));
                }
            }
        }
    }

    /// Scans buffered bytes for the blank line ending the head, resuming
    /// where the previous scan stopped. Returns the index one past the
    /// terminator.
    fn find_head_end(&mut self) -> Option<usize> {
        while let Some(offset) = self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            let newline = self.scan + offset;
            let mut line = &self.buf[self.line_start..newline];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            self.scan = newline + 1;
            if line.is_empty() {
                return Some(newline + 1);
            }
            self.line_start = newline + 1;
        }
        self.scan = self.buf.len();
        None
    }

    fn finish(&mut self, pending: PendingHead, body: Vec<u8>) -> ParsedRequest {
        // A connection can sit idle in keep-alive for minutes; don't let a
        // one-off large request pin its buffer capacity for that long.
        if self.buf.is_empty() && self.buf.capacity() > 16 * 1024 {
            self.buf.shrink_to(4 * 1024);
        }
        ParsedRequest {
            request: Request {
                method: pending.method,
                path: pending.path,
                query: pending.query,
                headers: pending.headers,
                body,
                deadline: pending.deadline,
            },
            keep_alive: pending.keep_alive,
        }
    }
}

/// Parses a complete head (everything up to and including the blank line)
/// into the pending-request fields. Mirrors `server::read_request` exactly.
fn parse_head(head: &[u8]) -> Result<PendingHead, ParseError> {
    let mut lines = head.split(|&b| b == b'\n').map(|line| {
        let line = if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
        String::from_utf8_lossy(line)
    });

    let first = lines.next().unwrap_or_default();
    let request_line = first.trim_end();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| ParseError::BadRequest(format!("bad method in {request_line:?}")))?;
    let target =
        parts.next().ok_or_else(|| ParseError::BadRequest("missing request target".to_string()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!("unsupported version {version}")));
    }
    let http10 = version == "HTTP/1.0";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Headers::new();
    for line in lines {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue; // the terminating blank line (and nothing after it)
        }
        match trimmed.split_once(':') {
            Some((name, value)) => headers.add(name.trim(), value.trim()),
            None => return Err(ParseError::BadRequest(format!("malformed header {trimmed:?}"))),
        }
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::BadRequest("bad content-length".to_string()))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    if headers.get("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ParseError::BadRequest("chunked requests not supported".to_string()));
    }

    let keep_alive = match headers.get("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => !http10,
    };

    // The caller's processing budget, counted from arrival (head-complete
    // time — the earliest moment the reactor knows the budget exists).
    let deadline = headers
        .get(DEADLINE_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    Ok(PendingHead { method, path, query, headers, keep_alive, deadline, content_length })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_one(parser: &mut RequestParser) -> ParsedRequest {
        parser.poll().expect("parse ok").expect("request complete")
    }

    #[test]
    fn whole_request_in_one_segment() {
        let mut p = RequestParser::new();
        p.feed(b"GET /jobs?limit=3 HTTP/1.1\r\nHost: x\r\n\r\n");
        let parsed = poll_one(&mut p);
        assert_eq!(parsed.request.method, Method::Get);
        assert_eq!(parsed.request.path, "/jobs");
        assert_eq!(parsed.request.query, "limit=3");
        assert_eq!(parsed.request.headers.get("host"), Some("x"));
        assert!(parsed.keep_alive);
        assert!(!p.has_partial());
    }

    #[test]
    fn byte_at_a_time() {
        let wire = b"POST /submit HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new();
        for (i, byte) in wire.iter().enumerate() {
            p.feed(&[*byte]);
            let polled = p.poll().expect("never errors");
            if i + 1 < wire.len() {
                assert!(polled.is_none(), "complete after only {} bytes", i + 1);
            } else {
                let parsed = polled.expect("complete at final byte");
                assert_eq!(parsed.request.body, b"hello");
            }
        }
    }

    #[test]
    fn adversarial_split_points() {
        // Splits chosen to land mid-request-line, between CR and LF, mid-
        // header-name, mid-header-value, right before the blank line, and
        // mid-body.
        let wire = b"PUT /runs/7 HTTP/1.1\r\nHost: ctl\r\nContent-Length: 10\r\n\r\n0123456789";
        for split in [3, 12, 21, 22, 30, 44, 55, 58, 62] {
            let mut p = RequestParser::new();
            p.feed(&wire[..split]);
            assert!(p.poll().unwrap().is_none(), "split at {split} yielded early");
            p.feed(&wire[split..]);
            let parsed = poll_one(&mut p);
            assert_eq!(parsed.request.method, Method::Put, "split at {split}");
            assert_eq!(parsed.request.body, b"0123456789", "split at {split}");
        }
    }

    #[test]
    fn pipelined_second_request_in_same_segment() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let first = poll_one(&mut p);
        assert_eq!(first.request.path, "/a");
        assert!(first.keep_alive);
        assert!(p.has_partial(), "second request must stay buffered");
        let second = poll_one(&mut p);
        assert_eq!(second.request.path, "/b");
        assert!(!second.keep_alive);
        assert!(p.poll().unwrap().is_none());
    }

    #[test]
    fn body_bytes_arriving_with_the_head() {
        let mut p = RequestParser::new();
        p.feed(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nab");
        assert!(p.poll().unwrap().is_none());
        assert!(p.reading_body());
        p.feed(b"cd");
        assert_eq!(poll_one(&mut p).request.body, b"abcd");
        assert!(!p.reading_body());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let mut p = RequestParser::new();
        p.feed(b"GET /lf HTTP/1.1\nHost: x\n\n");
        let parsed = poll_one(&mut p);
        assert_eq!(parsed.request.path, "/lf");
        assert_eq!(parsed.request.headers.get("host"), Some("x"));
    }

    #[test]
    fn http10_defaults_to_close() {
        let mut p = RequestParser::new();
        p.feed(b"GET /old HTTP/1.0\r\n\r\n");
        assert!(!poll_one(&mut p).keep_alive);
        p.feed(b"GET /old HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(poll_one(&mut p).keep_alive);
    }

    #[test]
    fn deadline_header_is_parsed() {
        let mut p = RequestParser::new();
        p.feed(format!("GET /d HTTP/1.1\r\n{DEADLINE_HEADER}: 5000\r\n\r\n").as_bytes());
        let parsed = poll_one(&mut p);
        let remaining = parsed.request.deadline_remaining().expect("deadline set");
        assert!(remaining <= Duration::from_millis(5000));
        assert!(remaining > Duration::from_millis(4000));
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        let mut p = RequestParser::new();
        p.feed(b"NONSENSE\r\n\r\n");
        assert!(matches!(p.poll(), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn malformed_header_is_bad_request() {
        let mut p = RequestParser::new();
        p.feed(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n");
        match p.poll() {
            Err(ParseError::BadRequest(msg)) => assert!(msg.contains("malformed header")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_bad_request() {
        let mut p = RequestParser::new();
        p.feed(b"GET /x HTTP/2\r\n\r\n");
        assert!(matches!(p.poll(), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let mut p = RequestParser::new();
        p.feed(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        match p.poll() {
            Err(ParseError::BadRequest(msg)) => assert!(msg.contains("chunked")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let mut p = RequestParser::new();
        p.feed(
            format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1)
                .as_bytes(),
        );
        assert!(matches!(p.poll(), Err(ParseError::TooLarge)));
    }

    #[test]
    fn unterminated_head_over_the_cap_is_too_large() {
        let mut p = RequestParser::new();
        p.feed(b"GET /x HTTP/1.1\r\n");
        // Endless header bytes with no blank line must trip the cap instead
        // of buffering forever.
        let filler = vec![b'a'; MAX_HEAD_BYTES + 16];
        p.feed(&filler);
        assert!(matches!(p.poll(), Err(ParseError::TooLarge)));
    }

    #[test]
    fn empty_request_line_is_bad_request() {
        let mut p = RequestParser::new();
        p.feed(b"\r\n");
        assert!(matches!(p.poll(), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn big_buffer_is_released_after_the_request() {
        let mut p = RequestParser::new();
        let body = vec![9u8; 256 * 1024];
        p.feed(format!("POST /big HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).as_bytes());
        p.feed(&body);
        let parsed = poll_one(&mut p);
        assert_eq!(parsed.request.body.len(), body.len());
        assert!(
            p.buf.capacity() <= 16 * 1024,
            "idle keep-alive parser retained {} bytes",
            p.buf.capacity()
        );
    }
}
