//! Method + path-pattern routing.
//!
//! The Chronos REST API is versioned (paper §2.2: "the API is versioned
//! [... so] new clients [can] use the newly developed features while other
//! clients still use older versions"), so route tables are built per version
//! prefix and mounted side by side on one server.

use std::collections::HashMap;
use std::sync::Arc;

use crate::types::{Method, Request, Response, Status};

/// Captured `:name` path parameters.
#[derive(Debug, Clone, Default)]
pub struct RouteParams {
    params: HashMap<String, String>,
}

impl RouteParams {
    /// The captured value for `:name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// The captured value, or a `400`-style error message.
    pub fn require(&self, name: &str) -> Result<&str, Response> {
        self.get(name).ok_or_else(|| {
            Response::error(Status::BAD_REQUEST, format!("missing path parameter :{name}"))
        })
    }
}

type Handler = Arc<dyn Fn(&Request, &RouteParams) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(String),
    /// `*rest`: matches the remainder of the path (including slashes).
    Wildcard(String),
}

/// A routing table mapping `(method, path pattern)` to handlers.
///
/// Patterns are `/`-separated; a segment starting with `:` captures one
/// segment, `*` captures the whole remainder:
///
/// ```
/// use chronos_http::{Router, Request, Response, Method, Status};
/// let mut router = Router::new();
/// router.get("/api/v1/jobs/:id", |_req, params| {
///     Response::text(Status::OK, format!("job {}", params.get("id").unwrap()))
/// });
/// let req = Request::new(Method::Get, "/api/v1/jobs/42");
/// assert_eq!(router.dispatch(&req).body, b"job 42");
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for `method` + `pattern`.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F)
    where
        F: Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Segment::Wildcard(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route { method, segments, handler: Arc::new(handler) });
    }

    /// Shorthand for [`Router::add`] with `GET`.
    pub fn get<F>(&mut self, pattern: &str, handler: F)
    where
        F: Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler);
    }

    /// Shorthand for [`Router::add`] with `POST`.
    pub fn post<F>(&mut self, pattern: &str, handler: F)
    where
        F: Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler);
    }

    /// Shorthand for [`Router::add`] with `PUT`.
    pub fn put<F>(&mut self, pattern: &str, handler: F)
    where
        F: Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Put, pattern, handler);
    }

    /// Shorthand for [`Router::add`] with `DELETE`.
    pub fn delete<F>(&mut self, pattern: &str, handler: F)
    where
        F: Fn(&Request, &RouteParams) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Delete, pattern, handler);
    }

    /// Matches a raw (still percent-encoded) request path against a route.
    ///
    /// Each segment is percent-decoded exactly once, right here — the
    /// server hands over the raw request target, so there is no earlier
    /// decode to stack on top of. Trailing (and duplicate) slashes are
    /// ignored on both the pattern and the path, so `/jobs` and `/jobs/`
    /// are the same route.
    fn match_route(&self, route: &Route, path: &str) -> Option<RouteParams> {
        let mut params = RouteParams::default();
        let mut parts = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).peekable();
        let mut segs = route.segments.iter().peekable();
        loop {
            match (segs.next(), parts.peek().copied()) {
                (None, None) => return Some(params),
                (None, Some(_)) => return None,
                (Some(Segment::Wildcard(name)), _) => {
                    let rest: Vec<String> = parts.map(crate::url::decode_segment).collect();
                    params.params.insert(name.clone(), rest.join("/"));
                    return Some(params);
                }
                (Some(_), None) => return None,
                (Some(Segment::Literal(lit)), Some(part)) => {
                    if *lit != crate::url::decode_segment(part) {
                        return None;
                    }
                    parts.next();
                }
                (Some(Segment::Param(name)), Some(part)) => {
                    params.params.insert(name.clone(), crate::url::decode_segment(part));
                    parts.next();
                }
            }
        }
    }

    /// Routes a request to its handler. Returns `404` when no pattern
    /// matches and `405` when a pattern matches with a different method.
    pub fn dispatch(&self, request: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = self.match_route(route, &request.path) {
                if route.method == request.method {
                    return (route.handler)(request, &params);
                }
                path_matched = true;
            }
        }
        if path_matched {
            Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
        } else {
            Response::error(Status::NOT_FOUND, format!("no route for {}", request.path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: Method, path: &str) -> Request {
        Request::new(method, path)
    }

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/api/v1/jobs", |_, _| Response::text(Status::OK, "list"));
        r.get("/api/v1/jobs/:id", |_, p| {
            Response::text(Status::OK, format!("job:{}", p.get("id").unwrap()))
        });
        r.post("/api/v1/jobs/:id/abort", |_, p| {
            Response::text(Status::OK, format!("abort:{}", p.get("id").unwrap()))
        });
        r.get("/files/*path", |_, p| {
            Response::text(Status::OK, format!("file:{}", p.get("path").unwrap()))
        });
        r
    }

    #[test]
    fn literal_and_param_routes() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs")).body, b"list");
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/42")).body, b"job:42");
        assert_eq!(r.dispatch(&req(Method::Post, "/api/v1/jobs/42/abort")).body, b"abort:42");
    }

    #[test]
    fn params_are_decoded() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/a%20b")).body, b"job:a b");
    }

    #[test]
    fn params_are_decoded_exactly_once() {
        let r = router();
        // %2520 is a percent-encoded "%20": one decode yields the literal
        // text "a%20b", not "a b".
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/a%2520b")).body, b"job:a%20b");
        // A plus in a path is a literal plus (form encoding applies to
        // query strings only).
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/a+b")).body, b"job:a+b");
    }

    #[test]
    fn encoded_slash_does_not_split_segments() {
        let r = router();
        // %2F decodes to "/" inside the one captured segment; it must not
        // turn /jobs/:id into a deeper path.
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/a%2Fb")).body, b"job:a/b");
    }

    #[test]
    fn literals_match_encoded_spellings() {
        let r = router();
        // RFC 3986: percent-encoded unreserved characters are equivalent
        // to their literal spelling.
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/j%6Fbs")).body, b"list");
    }

    #[test]
    fn wildcard_segments_are_decoded() {
        let r = router();
        assert_eq!(
            r.dispatch(&req(Method::Get, "/files/dir%20a/b%2Bc.txt")).body,
            b"file:dir a/b+c.txt"
        );
    }

    #[test]
    fn wildcard_captures_remainder() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/files/a/b/c.txt")).body, b"file:a/b/c.txt");
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/nope")).status, Status::NOT_FOUND);
        assert_eq!(
            r.dispatch(&req(Method::Delete, "/api/v1/jobs")).status,
            Status::METHOD_NOT_ALLOWED
        );
    }

    #[test]
    fn trailing_slash_is_ignored() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/")).body, b"list");
        // ...consistently: on parameterised and nested routes too, and
        // duplicate separators collapse.
        assert_eq!(r.dispatch(&req(Method::Get, "/api/v1/jobs/42/")).body, b"job:42");
        assert_eq!(r.dispatch(&req(Method::Post, "/api/v1/jobs/42/abort/")).body, b"abort:42");
        assert_eq!(r.dispatch(&req(Method::Get, "//api//v1//jobs")).body, b"list");
    }

    #[test]
    fn longer_paths_do_not_match_shorter_patterns() {
        let r = router();
        assert_eq!(
            r.dispatch(&req(Method::Get, "/api/v1/jobs/42/extra")).status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn first_matching_route_wins() {
        let mut r = Router::new();
        r.get("/x/:a", |_, _| Response::text(Status::OK, "param"));
        r.get("/x/lit", |_, _| Response::text(Status::OK, "literal"));
        // Registration order decides: the param route was added first.
        assert_eq!(r.dispatch(&req(Method::Get, "/x/lit")).body, b"param");
    }

    #[test]
    fn require_reports_missing_params() {
        let p = RouteParams::default();
        assert!(p.require("id").is_err());
    }
}
