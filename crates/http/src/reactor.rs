//! Event-driven reactor core: one epoll loop owning every connection.
//!
//! The threaded core parks a worker thread per admitted connection, so a box
//! can hold at most `workers + queue` keep-alive agents. Here a single
//! reactor thread multiplexes all sockets through epoll; an idle keep-alive
//! connection costs a slab slot and a (shrunk) parse buffer — a few hundred
//! bytes — instead of a thread. Handler CPU still runs on the bounded worker
//! pool: the reactor parses complete requests, dispatches them, and workers
//! hand the finished response back through a completion queue plus an
//! eventfd wakeup.
//!
//! Per-connection state machine:
//!
//! ```text
//! accept → ReadingHeaders → ReadingBody → Dispatched → WritingResponse
//!              ↑  ↑                                        │
//!              │  └────────── KeepAliveIdle ←──────────────┤
//!              └───────────── (pipelined request) ←────────┘
//! ```
//!
//! Every PR 5 admission invariant carries over: `max_inflight` caps *open
//! admitted connections* (shed at accept with the typed `429 overloaded`
//! envelope), drain closes idle connections immediately and lets in-flight
//! requests finish with a polite `Connection: close`, and
//! `accepted + shed == total connections` holds exactly.
//!
//! Liveness note: a worker's wakeup write can be lost (that is literally a
//! failpoint below). The loop therefore never sleeps longer than
//! [`TICK_MS`] and drains the completion queue on every iteration, so a
//! lost wakeup costs latency, never a stuck response.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chronos_util::fail::Injected;
use chronos_util::ThreadPool;
use parking_lot::Mutex;

use crate::parser::{ParseError, ParsedRequest, RequestParser};
use crate::server::{
    serialize_response, ServerMetrics, Shared, PHASE_DRAINING, PHASE_RUNNING, PHASE_STOPPED,
};
use crate::sys::linux::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::types::{Method, Request, Response, Status};
use crate::types::{CODE_DRAINING, CODE_OVERLOADED, CODE_REQUEST_TIMEOUT};

/// Epoll token reserved for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token reserved for the completion-queue eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Upper bound on one `epoll_wait` sleep — the completion-drain heartbeat.
const TICK_MS: i32 = 100;
/// Read chunk size (stack buffer; bytes are copied into the parser).
const READ_CHUNK: usize = 16 * 1024;
/// How many consecutive reads one connection may monopolize the loop with
/// before yielding to the other ready connections.
const MAX_READS_PER_EVENT: usize = 16;

/// Admission and timeout knobs, fixed at `serve` time.
pub(crate) struct ReactorConfig {
    /// Cap on open admitted connections (`usize::MAX` when unbounded).
    pub max_inflight: usize,
    /// `Retry-After` hint attached to shed responses.
    pub retry_after: Duration,
    /// Stall budget while reading a request head or body (slowloris guard).
    pub header_read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
}

/// A finished handler invocation traveling back to the reactor thread.
struct Completion {
    slot: usize,
    generation: u64,
    /// `None` models the dropped-response fault (`http.server.drop_response`):
    /// effects committed, client never hears back.
    response: Option<Response>,
    method: Method,
    keep_alive: bool,
}

/// Where a connection currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) the request line + headers.
    ReadingHeaders,
    /// Head parsed; body bytes still arriving.
    ReadingBody,
    /// A complete request is on the worker pool; socket interest is off.
    Dispatched,
    /// Serialized response partially written; resumes on `EPOLLOUT`.
    WritingResponse,
    /// Between requests on a keep-alive connection.
    KeepAliveIdle,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    parser: RequestParser,
    /// Serialized response being written, and how much of it already went out.
    out: Vec<u8>,
    out_pos: usize,
    /// Current epoll interest set (to skip redundant `EPOLL_CTL_MOD`s).
    interest: u32,
    /// Counted against `max_inflight` / the `inflight` gauge. Shed
    /// connections (typed refusal being written) are tracked but not
    /// admitted.
    admitted: bool,
    /// Counted in the `accepted` counter — set when the connection's first
    /// request reaches the worker pool, exactly the moment the threaded
    /// core counts a connection, so `accepted + shed == total` holds
    /// identically on both cores.
    accepted: bool,
    close_after_write: bool,
    /// Active timeout, if any; the wheel entry re-checks this on expiry.
    deadline: Option<Instant>,
    /// Wheel slot the connection is currently scheduled in (dedupes
    /// re-arms that land in the same slot).
    sched_slot: Option<usize>,
    /// Counted in the `idle_keepalive` gauge.
    idle: bool,
}

/// Hashed timer wheel: 512 slots × 128 ms ≈ 65 s horizon, O(1) schedule,
/// O(slots-passed) advance. Deadlines beyond the horizon clamp to the far
/// edge and re-arm when they fire early; entries staled by a deadline reset
/// or connection close are dropped on expiry by generation / deadline
/// re-checks.
struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    cursor: usize,
    anchor: Instant,
}

impl TimerWheel {
    const GRANULARITY: Duration = Duration::from_millis(128);
    const SLOTS: usize = 512;

    fn new(now: Instant) -> Self {
        TimerWheel { slots: vec![Vec::new(); Self::SLOTS], cursor: 0, anchor: now }
    }

    /// The slot a deadline lands in, at least one tick ahead of the cursor.
    fn slot_for(&self, now: Instant, deadline: Instant) -> usize {
        let delta = deadline.saturating_duration_since(now);
        let ticks = (delta.as_millis() / Self::GRANULARITY.as_millis()) as usize + 1;
        (self.cursor + ticks.min(Self::SLOTS - 1)) % Self::SLOTS
    }

    fn schedule(&mut self, slot: usize, conn: usize, generation: u64) {
        self.slots[slot].push((conn, generation));
    }

    /// Moves the cursor up to `now`, collecting entries from every slot
    /// passed.
    fn advance(&mut self, now: Instant, expired: &mut Vec<(usize, u64)>) {
        while self.anchor + Self::GRANULARITY <= now {
            self.cursor = (self.cursor + 1) % Self::SLOTS;
            self.anchor += Self::GRANULARITY;
            expired.append(&mut self.slots[self.cursor]);
        }
    }
}

/// Arms (or re-arms) a connection's timeout. Written as a free function so
/// callers holding a `&mut Conn` borrow can still reach the wheel.
fn arm_timer(
    wheel: &mut TimerWheel,
    conn: &mut Conn,
    slot: usize,
    generation: u64,
    now: Instant,
    deadline: Instant,
) {
    conn.deadline = Some(deadline);
    let wheel_slot = wheel.slot_for(now, deadline);
    if conn.sched_slot != Some(wheel_slot) {
        wheel.schedule(wheel_slot, slot, generation);
        conn.sched_slot = Some(wheel_slot);
    }
}

struct Reactor<F> {
    epoll: Epoll,
    listener: TcpListener,
    wake: Arc<EventFd>,
    completions: Arc<Mutex<Vec<Completion>>>,
    shared: Arc<Shared>,
    metrics: Arc<ServerMetrics>,
    pool: Arc<ThreadPool>,
    handler: Arc<F>,
    cfg: ReactorConfig,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counter, bumped on close; defends completions and
    /// timer entries against slot reuse.
    generations: Vec<u64>,
    free: Vec<usize>,
    /// Slots freed during the current iteration; merged into `free` only at
    /// the end so a stale readiness event in the same batch cannot hit a
    /// freshly reused slot.
    pending_free: Vec<usize>,
    /// Open admitted connections (the value `max_inflight` caps).
    admitted: usize,
    wheel: TimerWheel,
}

/// Spawns the reactor thread. Returns the join handle and the eventfd used
/// to nudge the loop (drain/shutdown, worker completions).
pub(crate) fn spawn<F>(
    listener: TcpListener,
    shared: Arc<Shared>,
    pool: Arc<ThreadPool>,
    handler: Arc<F>,
    cfg: ReactorConfig,
) -> std::io::Result<(JoinHandle<()>, Arc<EventFd>)>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = Arc::new(EventFd::new()?);
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    epoll.add(wake.fd(), TOKEN_WAKE, EPOLLIN)?;
    let metrics = Arc::clone(&shared.metrics);
    let reactor = Reactor {
        epoll,
        listener,
        wake: Arc::clone(&wake),
        completions: Arc::new(Mutex::new(Vec::new())),
        shared,
        metrics,
        pool,
        handler,
        cfg,
        conns: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        pending_free: Vec::new(),
        admitted: 0,
        wheel: TimerWheel::new(Instant::now()),
    };
    let thread = std::thread::Builder::new()
        .name("chronos-http-reactor".to_string())
        .spawn(move || reactor.run())?;
    Ok((thread, wake))
}

impl<F> Reactor<F>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn run(mut self) {
        let mut events = vec![EpollEvent::empty(); 256];
        let mut expired = Vec::new();
        loop {
            if self.shared.phase() == PHASE_STOPPED {
                break;
            }
            let ready = self.epoll.wait(&mut events, TICK_MS).unwrap_or(0);
            self.metrics.reactor_loops.inc();
            for event in events.iter().take(ready) {
                let (token, readiness) = (event.token(), event.readiness());
                match token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => {
                        self.wake.drain();
                        self.metrics.wakeups.inc();
                    }
                    slot => self.conn_event(slot as usize, readiness),
                }
            }
            self.drain_completions();
            let now = Instant::now();
            self.wheel.advance(now, &mut expired);
            for (slot, generation) in expired.drain(..) {
                self.fire_timer(slot, generation, now);
            }
            if self.shared.phase() == PHASE_DRAINING {
                self.close_idle_for_drain();
            }
            self.free.append(&mut self.pending_free);
        }
        // Teardown: close every remaining connection (gauges go to zero),
        // then drop the listener, pool handle and queues with `self`.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot);
            }
        }
    }

    /// Accepts until the backlog is empty, applying the same admission
    /// decisions the threaded accept loop makes — but refusals are written
    /// asynchronously, so a slow shed peer cannot stall accepting.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if chronos_util::fail_eval!("http.reactor.accept").is_some() {
                        // Fault: the connection dies before admission — the
                        // client sees a reset and retries.
                        drop(stream);
                        continue;
                    }
                    match self.shared.phase() {
                        PHASE_STOPPED => return,
                        PHASE_DRAINING => {
                            self.metrics.shed_draining.inc();
                            self.shed(
                                stream,
                                Status::SERVICE_UNAVAILABLE,
                                CODE_DRAINING,
                                "server is draining; connection not accepted",
                            );
                            continue;
                        }
                        _ => {}
                    }
                    if self.admitted >= self.cfg.max_inflight {
                        self.metrics.shed_overload.inc();
                        self.shed(
                            stream,
                            Status::TOO_MANY_REQUESTS,
                            CODE_OVERLOADED,
                            "connection limit reached; retry later",
                        );
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept errors (e.g. the peer
                // reset before we got to it): keep accepting.
                Err(_) => return,
            }
        }
    }

    /// Registers an admitted connection and starts its header-read clock.
    fn admit(&mut self, stream: TcpStream) {
        let Some(slot) = self.register(stream, EPOLLIN) else { return };
        self.admitted += 1;
        self.metrics.inflight.inc();
        let now = Instant::now();
        let generation = self.generations[slot];
        let deadline = now + self.cfg.header_read_timeout;
        let conn = self.conns[slot].as_mut().expect("slot just registered");
        conn.admitted = true;
        arm_timer(&mut self.wheel, conn, slot, generation, now, deadline);
    }

    /// Writes a typed refusal on a connection the server will not admit.
    /// Unlike the threaded core's synchronous shed, backpressure from the
    /// peer parks the refusal in the event loop instead of stalling accepts
    /// — under overload every connection still gets its envelope.
    fn shed(&mut self, stream: TcpStream, status: Status, code: &str, message: &str) {
        let response =
            Response::error_named(status, code, message).with_retry_after(self.cfg.retry_after);
        let bytes = serialize_response(&response, false, Method::Get);
        // Interest starts empty: a shed connection's inbound bytes are
        // irrelevant and must not busy-loop the level-triggered poll.
        let Some(slot) = self.register(stream, 0) else { return };
        {
            let conn = self.conns[slot].as_mut().expect("slot just registered");
            conn.out = bytes;
            conn.state = ConnState::WritingResponse;
            conn.close_after_write = true;
        }
        self.try_write(slot);
    }

    /// Puts a fresh socket into the slab + epoll. Returns its slot, or
    /// `None` if registration failed (the socket is dropped).
    fn register(&mut self, stream: TcpStream, interest: u32) -> Option<usize> {
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        if self.epoll.add(stream.as_raw_fd(), slot as u64, interest).is_err() {
            self.free.push(slot);
            return None;
        }
        self.conns[slot] = Some(Conn {
            stream,
            state: ConnState::ReadingHeaders,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            interest,
            admitted: false,
            accepted: false,
            close_after_write: false,
            deadline: None,
            sched_slot: None,
            idle: false,
        });
        self.metrics.open_connections.inc();
        Some(slot)
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else { return };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        if conn.idle {
            self.metrics.idle_keepalive.dec();
        }
        if conn.admitted {
            self.admitted -= 1;
            self.metrics.inflight.dec();
        }
        self.metrics.open_connections.dec();
        self.pending_free.push(slot);
    }

    fn set_interest(&mut self, slot: usize, events: u32) {
        let Some(conn) = self.conns[slot].as_mut() else { return };
        if conn.interest != events
            && self.epoll.modify(conn.stream.as_raw_fd(), slot as u64, events).is_ok()
        {
            conn.interest = events;
        }
    }

    fn conn_event(&mut self, slot: usize, readiness: u32) {
        let Some(conn) = self.conns[slot].as_ref() else { return };
        if readiness & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(slot);
            return;
        }
        if readiness & EPOLLOUT != 0 && conn.state == ConnState::WritingResponse {
            self.try_write(slot);
        }
        let Some(conn) = self.conns[slot].as_ref() else { return };
        if readiness & EPOLLIN != 0
            && matches!(
                conn.state,
                ConnState::ReadingHeaders | ConnState::ReadingBody | ConnState::KeepAliveIdle
            )
        {
            self.do_read(slot);
        }
    }

    /// Reads available bytes into the parser; dispatches when a request
    /// completes. Level-triggered epoll re-fires if the kernel buffer is
    /// not drained, so bounded batches per event are safe and keep one
    /// chatty peer from starving the loop.
    fn do_read(&mut self, slot: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            let read = match self.conns[slot].as_mut() {
                Some(conn) => conn.stream.read(&mut chunk),
                None => return,
            };
            match read {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    if chronos_util::fail_eval!("http.reactor.read").is_some() {
                        // Fault: the socket dies mid-read.
                        self.close(slot);
                        return;
                    }
                    let now = Instant::now();
                    let generation = self.generations[slot];
                    let polled = {
                        let conn = self.conns[slot].as_mut().expect("checked above");
                        if conn.idle {
                            conn.idle = false;
                            conn.state = ConnState::ReadingHeaders;
                            self.metrics.idle_keepalive.dec();
                        }
                        conn.parser.feed(&chunk[..n]);
                        let polled = conn.parser.poll();
                        if matches!(polled, Ok(None)) {
                            conn.state = if conn.parser.reading_body() {
                                ConnState::ReadingBody
                            } else {
                                ConnState::ReadingHeaders
                            };
                            // Progress resets the stall budget, mirroring
                            // the threaded core's per-read timeout.
                            let deadline = now + self.cfg.header_read_timeout;
                            arm_timer(&mut self.wheel, conn, slot, generation, now, deadline);
                        }
                        polled
                    };
                    match polled {
                        Ok(Some(parsed)) => {
                            self.dispatch(slot, parsed);
                            return;
                        }
                        Ok(None) => {
                            if n < chunk.len() {
                                return; // kernel buffer drained (almost surely)
                            }
                        }
                        Err(error) => {
                            self.respond_parse_error(slot, error);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    fn respond_parse_error(&mut self, slot: usize, error: ParseError) {
        let response = match error {
            ParseError::BadRequest(msg) => Response::error(Status::BAD_REQUEST, msg),
            ParseError::TooLarge => Response::error(Status::PAYLOAD_TOO_LARGE, "request too large"),
        };
        self.start_write(slot, &response, Method::Get, false);
    }

    /// Hands a complete request to the worker pool. The connection's socket
    /// interest drops to zero until the response comes back.
    fn dispatch(&mut self, slot: usize, parsed: ParsedRequest) {
        let ParsedRequest { request, keep_alive } = parsed;
        let method = request.method;
        {
            let conn = self.conns[slot].as_mut().expect("dispatch on live conn");
            conn.state = ConnState::Dispatched;
            conn.deadline = None; // handler time is not read-stall time
        }
        self.set_interest(slot, 0);
        let generation = self.generations[slot];
        let completions = Arc::clone(&self.completions);
        let wake = Arc::clone(&self.wake);
        let handler = Arc::clone(&self.handler);
        let dispatched = self.pool.try_execute(move || {
            let response = handler(request);
            // Dropped-response fault: the handler has fully committed its
            // effects, but the client never hears back. This is the case
            // idempotency keys exist for.
            let response = if chronos_util::fail_eval!("http.server.drop_response").is_some() {
                None
            } else {
                Some(response)
            };
            completions.lock().push(Completion { slot, generation, response, method, keep_alive });
            // Fault: the wakeup is lost. The reactor's tick still drains
            // the queue, so the response is delayed, not dropped.
            if chronos_util::fail_eval!("http.reactor.wakeup").is_none() {
                wake.wake();
            }
        });
        if dispatched {
            self.metrics.requests.inc();
            let conn = self.conns[slot].as_mut().expect("dispatch on live conn");
            if !conn.accepted {
                // First request reached the pool: this is the moment the
                // threaded core counts a connection as accepted.
                conn.accepted = true;
                self.metrics.accepted.inc();
            }
            return;
        }
        // Bounded queue full at dispatch time: typed 429, counted in
        // `shed_overload` but never `accepted` — a connection whose
        // requests only ever shed is never accepted, so `accepted + shed
        // == total connections` stays an identity for one-request
        // (`Connection: close`) clients. Unlike the threaded core — which
        // must hang up because a shed connection would otherwise occupy a
        // worker — the reactor keeps a shed keep-alive connection open: an
        // idle connection costs bytes, and a backed-off agent retrying on
        // the same socket beats a reconnect storm.
        self.metrics.shed_overload.inc();
        let response = Response::error_named(
            Status::TOO_MANY_REQUESTS,
            CODE_OVERLOADED,
            "request queue full; retry later",
        )
        .with_retry_after(self.cfg.retry_after);
        let keep = keep_alive && self.shared.phase() == PHASE_RUNNING;
        self.start_write(slot, &response, method, keep);
    }

    /// Serializes `response` and begins (or finishes) writing it out.
    fn start_write(&mut self, slot: usize, response: &Response, method: Method, keep_alive: bool) {
        let bytes = serialize_response(response, keep_alive, method);
        {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            conn.out = bytes;
            conn.out_pos = 0;
            conn.state = ConnState::WritingResponse;
            conn.close_after_write = !keep_alive;
            if conn.idle {
                conn.idle = false;
                self.metrics.idle_keepalive.dec();
            }
        }
        self.try_write(slot);
    }

    /// Writes as much pending output as the socket accepts; on `WouldBlock`
    /// subscribes to `EPOLLOUT` and resumes when the peer drains its side.
    fn try_write(&mut self, slot: usize) {
        enum Outcome {
            Done,
            Blocked,
            Fatal,
        }
        loop {
            let outcome = {
                let Some(conn) = self.conns[slot].as_mut() else { return };
                if conn.out_pos >= conn.out.len() {
                    Outcome::Done
                } else {
                    match chronos_util::fail_eval!("http.reactor.write") {
                        Some(Injected::Torn { keep }) => {
                            // Torn write: part of the response escapes, then
                            // the connection dies.
                            let end = (conn.out_pos + keep).min(conn.out.len());
                            let _ = conn.stream.write(&conn.out[conn.out_pos..end]);
                            Outcome::Fatal
                        }
                        Some(_) => Outcome::Fatal,
                        None => match conn.stream.write(&conn.out[conn.out_pos..]) {
                            Ok(0) => Outcome::Fatal,
                            Ok(n) => {
                                conn.out_pos += n;
                                continue;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                Outcome::Blocked
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => Outcome::Fatal,
                        },
                    }
                }
            };
            match outcome {
                Outcome::Fatal => {
                    self.close(slot);
                    return;
                }
                Outcome::Blocked => {
                    self.set_interest(slot, EPOLLOUT);
                    // A peer that never reads must not pin the connection
                    // forever: reuse the stall budget as a write deadline.
                    let now = Instant::now();
                    let generation = self.generations[slot];
                    let deadline = now + self.cfg.header_read_timeout;
                    if let Some(conn) = self.conns[slot].as_mut() {
                        arm_timer(&mut self.wheel, conn, slot, generation, now, deadline);
                    }
                    return;
                }
                Outcome::Done => {
                    self.finish_write(slot);
                    return;
                }
            }
        }
    }

    /// The response is fully out: close, serve a pipelined request, or go
    /// keep-alive idle.
    fn finish_write(&mut self, slot: usize) {
        let close_now = {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            conn.out = Vec::new(); // release a possibly large response buffer
            conn.out_pos = 0;
            conn.deadline = None;
            conn.close_after_write
        };
        if close_now {
            self.close(slot);
            return;
        }
        let polled = {
            let conn = self.conns[slot].as_mut().expect("checked above");
            conn.parser.poll()
        };
        match polled {
            Ok(Some(parsed)) => self.dispatch(slot, parsed),
            Ok(None) => {
                let now = Instant::now();
                let generation = self.generations[slot];
                let stall = self.cfg.header_read_timeout;
                let idle_after = self.cfg.idle_timeout;
                let mut became_idle = false;
                {
                    let conn = self.conns[slot].as_mut().expect("checked above");
                    if conn.parser.has_partial() {
                        // The next (pipelined) request is partially here.
                        conn.state = if conn.parser.reading_body() {
                            ConnState::ReadingBody
                        } else {
                            ConnState::ReadingHeaders
                        };
                        arm_timer(&mut self.wheel, conn, slot, generation, now, now + stall);
                    } else {
                        conn.state = ConnState::KeepAliveIdle;
                        conn.idle = true;
                        became_idle = true;
                        arm_timer(&mut self.wheel, conn, slot, generation, now, now + idle_after);
                    }
                }
                if became_idle {
                    self.metrics.idle_keepalive.inc();
                }
                self.set_interest(slot, EPOLLIN);
            }
            Err(error) => self.respond_parse_error(slot, error),
        }
    }

    /// Hands worker results back to their connections. Stale completions
    /// (connection closed and slot reused since dispatch) are dropped by the
    /// generation check.
    fn drain_completions(&mut self) {
        let batch = std::mem::take(&mut *self.completions.lock());
        for completion in batch {
            let slot = completion.slot;
            let live =
                self.conns[slot].is_some() && self.generations[slot] == completion.generation;
            if !live {
                continue;
            }
            let Some(response) = completion.response else {
                // Dropped-response fault: cut the connection without a reply.
                self.close(slot);
                continue;
            };
            // The keep-alive decision is re-taken at completion time: a
            // drain that began while the handler ran turns into a polite
            // `Connection: close`.
            let keep = completion.keep_alive && self.shared.phase() == PHASE_RUNNING;
            self.start_write(slot, &response, completion.method, keep);
        }
    }

    /// A timer entry came due. Generation and deadline re-checks make stale
    /// entries (slot reused, deadline reset or pushed out) harmless.
    fn fire_timer(&mut self, slot: usize, generation: u64, now: Instant) {
        let (state, has_partial) = {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            if self.generations[slot] != generation {
                return;
            }
            conn.sched_slot = None;
            let Some(deadline) = conn.deadline else { return };
            if deadline > now {
                // Re-arm: the entry was clamped to the wheel horizon, or the
                // deadline moved since scheduling.
                arm_timer(&mut self.wheel, conn, slot, generation, now, deadline);
                return;
            }
            (conn.state, conn.parser.has_partial())
        };
        match state {
            ConnState::KeepAliveIdle => {
                // Keep-alive cap reached with no request in sight.
                self.metrics.shed_idle.inc();
                self.close(slot);
            }
            ConnState::ReadingHeaders | ConnState::ReadingBody => {
                self.metrics.shed_idle.inc();
                if has_partial {
                    // Slowloris: a half-sent request stalled out. Typed 408
                    // so a sluggish-but-honest client knows what happened.
                    let response = Response::error_named(
                        Status::REQUEST_TIMEOUT,
                        CODE_REQUEST_TIMEOUT,
                        "request header or body not completed in time",
                    );
                    self.start_write(slot, &response, Method::Get, false);
                } else {
                    // Never sent a byte: nothing useful to say.
                    self.close(slot);
                }
            }
            ConnState::WritingResponse => {
                // Peer stopped reading its response.
                self.close(slot);
            }
            ConnState::Dispatched => {} // no deadline while the handler runs
        }
    }

    /// During drain, connections with no request in progress close
    /// immediately; in-flight ones finish and close via the completion path.
    fn close_idle_for_drain(&mut self) {
        for slot in 0..self.conns.len() {
            let drop_now = match &self.conns[slot] {
                Some(conn) => match conn.state {
                    ConnState::KeepAliveIdle => true,
                    ConnState::ReadingHeaders | ConnState::ReadingBody => {
                        conn.admitted && !conn.parser.has_partial()
                    }
                    _ => false,
                },
                None => false,
            };
            if drop_now {
                self.close(slot);
            }
        }
    }
}
