//! HTTP message types.

use std::fmt;

use chronos_json::Value;

/// Serializes a JSON body straight into the byte vector that becomes the
/// message body — no intermediate `String`.
fn json_body(value: &Value) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    chronos_json::write_to(&mut body, value).expect("writing to a Vec cannot fail");
    body
}

/// HTTP request methods supported by the Chronos REST API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Resource retrieval.
    Get,
    /// Resource creation / RPC-style actions.
    Post,
    /// Full resource replacement or state transitions.
    Put,
    /// Partial update.
    Patch,
    /// Resource removal.
    Delete,
    /// Headers-only retrieval.
    Head,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "PATCH" => Some(Method::Patch),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// The canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Patch => "PATCH",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP response status codes used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    pub const OK: Status = Status(200);
    pub const CREATED: Status = Status(201);
    pub const NO_CONTENT: Status = Status(204);
    pub const BAD_REQUEST: Status = Status(400);
    pub const UNAUTHORIZED: Status = Status(401);
    pub const FORBIDDEN: Status = Status(403);
    pub const NOT_FOUND: Status = Status(404);
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    pub const CONFLICT: Status = Status(409);
    pub const GONE: Status = Status(410);
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    pub const UNPROCESSABLE: Status = Status(422);
    pub const INTERNAL_ERROR: Status = Status(500);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// The standard reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            301 => "Moved Permanently",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// True for 2xx codes.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An ordered, case-insensitive header multimap.
#[derive(Debug, Clone, Default)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// First value for `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Appends a header.
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replaces all values of `name` with one value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(k, _)| !k.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// Iterates all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// Request headers.
    pub headers: Headers,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request with an empty body (client side).
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        let full: String = path.into();
        let (path, query) = match full.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (full, String::new()),
        };
        Request { method, path, query, headers: Headers::new(), body: Vec::new() }
    }

    /// Sets a JSON body (and `Content-Type`).
    pub fn with_json(mut self, value: &Value) -> Self {
        self.body = json_body(value);
        self.headers.set("Content-Type", "application/json");
        self
    }

    /// Sets a raw body with the given content type.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.set("Content-Type", content_type);
        self.body = body;
        self
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, chronos_json::ParseError> {
        let text = String::from_utf8_lossy(&self.body);
        chronos_json::parse(&text)
    }

    /// Parsed query-string parameters (decoded).
    pub fn query_params(&self) -> Vec<(String, String)> {
        crate::url::parse_query(&self.query)
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_params().into_iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Response headers.
    pub headers: Headers,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn status(status: Status) -> Self {
        Response { status, headers: Headers::new(), body: Vec::new() }
    }

    /// A `200 OK` JSON response.
    pub fn json(value: &Value) -> Self {
        Self::json_status(Status::OK, value)
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: Status, value: &Value) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", "application/json");
        r.body = json_body(value);
        r
    }

    /// A plain-text response.
    pub fn text(status: Status, text: impl Into<String>) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", "text/plain; charset=utf-8");
        r.body = text.into().into_bytes();
        r
    }

    /// A binary response with explicit content type.
    pub fn bytes(status: Status, content_type: &str, body: Vec<u8>) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", content_type);
        r.body = body;
        r
    }

    /// The standard error shape used across the API:
    /// `{"error": {"code": ..., "message": ...}}`.
    pub fn error(status: Status, message: impl Into<String>) -> Self {
        let value = chronos_json::obj! {
            "error" => chronos_json::obj! {
                "code" => status.0 as i64,
                "message" => message.into(),
            },
        };
        Self::json_status(status, &value)
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<Value, chronos_json::ParseError> {
        chronos_json::parse(&String::from_utf8_lossy(&self.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    #[test]
    fn method_parse_roundtrip() {
        for m in
            [Method::Get, Method::Post, Method::Put, Method::Patch, Method::Delete, Method::Head]
        {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_helpers() {
        assert!(Status::OK.is_success());
        assert!(Status::CREATED.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert_eq!(Status(599).reason(), "Unknown");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.add("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn headers_set_replaces() {
        let mut h = Headers::new();
        h.add("X-A", "1");
        h.add("x-a", "2");
        h.set("X-A", "3");
        assert_eq!(h.get("x-a"), Some("3"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn request_splits_query() {
        let r = Request::new(Method::Get, "/api/v1/jobs?status=failed&limit=10");
        assert_eq!(r.path, "/api/v1/jobs");
        assert_eq!(r.query_param("status").as_deref(), Some("failed"));
        assert_eq!(r.query_param("limit").as_deref(), Some("10"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn json_bodies_roundtrip() {
        let doc = obj! { "a" => 1 };
        let req = Request::new(Method::Post, "/x").with_json(&doc);
        assert_eq!(req.headers.get("content-type"), Some("application/json"));
        assert_eq!(req.json().unwrap(), doc);
        let resp = Response::json(&doc);
        assert_eq!(resp.json_body().unwrap(), doc);
    }

    #[test]
    fn error_shape() {
        let r = Response::error(Status::CONFLICT, "already running");
        let j = r.json_body().unwrap();
        assert_eq!(j.pointer("/error/code").and_then(|v| v.as_i64()), Some(409));
        assert_eq!(j.pointer("/error/message").and_then(|v| v.as_str()), Some("already running"));
    }
}
