//! HTTP message types.

use std::fmt;
use std::time::{Duration, Instant};

use chronos_json::Value;

/// Request header carrying the caller's remaining budget in milliseconds.
/// Parsed by the server into [`Request::deadline`]; handlers check it before
/// starting expensive work and answer `504` with the `deadline_exceeded`
/// envelope once the budget is gone.
pub const DEADLINE_HEADER: &str = "X-Chronos-Deadline-Ms";

/// Response header mirroring `Retry-After` with millisecond precision
/// (standard `Retry-After` only carries whole seconds).
pub const RETRY_AFTER_MS_HEADER: &str = "X-Chronos-Retry-After-Ms";

/// Named error code on `429` responses shed by admission control.
///
/// These three live here — below the `chronos-api` contract crate, which
/// re-exports them — because the server must emit typed envelopes from the
/// accept thread without depending on the contract crate (which depends on
/// this one).
pub const CODE_OVERLOADED: &str = "overloaded";
/// Named error code on `503` responses refused during graceful drain.
pub const CODE_DRAINING: &str = "draining";
/// Named error code on `408` responses for requests whose bytes stopped
/// flowing before the message completed (slowloris / stalled uploads).
pub const CODE_REQUEST_TIMEOUT: &str = "request_timeout";
/// Named error code on `504` responses whose [`DEADLINE_HEADER`] budget ran
/// out before (or while) the handler did the work.
pub const CODE_DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Serializes a JSON body straight into the byte vector that becomes the
/// message body — no intermediate `String`.
fn json_body(value: &Value) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    chronos_json::write_to(&mut body, value).expect("writing to a Vec cannot fail");
    body
}

/// HTTP request methods supported by the Chronos REST API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Resource retrieval.
    Get,
    /// Resource creation / RPC-style actions.
    Post,
    /// Full resource replacement or state transitions.
    Put,
    /// Partial update.
    Patch,
    /// Resource removal.
    Delete,
    /// Headers-only retrieval.
    Head,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "PATCH" => Some(Method::Patch),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// The canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Patch => "PATCH",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP response status codes used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    pub const OK: Status = Status(200);
    pub const CREATED: Status = Status(201);
    pub const NO_CONTENT: Status = Status(204);
    pub const BAD_REQUEST: Status = Status(400);
    pub const UNAUTHORIZED: Status = Status(401);
    pub const FORBIDDEN: Status = Status(403);
    pub const NOT_FOUND: Status = Status(404);
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    pub const REQUEST_TIMEOUT: Status = Status(408);
    pub const CONFLICT: Status = Status(409);
    pub const GONE: Status = Status(410);
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    pub const UNPROCESSABLE: Status = Status(422);
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    pub const INTERNAL_ERROR: Status = Status(500);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);
    pub const GATEWAY_TIMEOUT: Status = Status(504);

    /// The standard reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            301 => "Moved Permanently",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// True for 2xx codes.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An ordered, case-insensitive header multimap.
#[derive(Debug, Clone, Default)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// First value for `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Appends a header.
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replaces all values of `name` with one value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(k, _)| !k.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// Iterates all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// Request headers.
    pub headers: Headers,
    /// Request body.
    pub body: Vec<u8>,
    /// Absolute deadline derived from [`DEADLINE_HEADER`] at parse time
    /// (header milliseconds counted from request arrival). `None` when the
    /// caller sent no budget.
    pub deadline: Option<Instant>,
}

impl Request {
    /// Builds a request with an empty body (client side).
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        let full: String = path.into();
        let (path, query) = match full.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (full, String::new()),
        };
        Request { method, path, query, headers: Headers::new(), body: Vec::new(), deadline: None }
    }

    /// Sets an absolute deadline (server side: done by the parser; tests use
    /// it to simulate exhausted budgets).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Remaining budget, `None` when no deadline was requested. Zero once
    /// expired.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the caller's budget has run out. Requests without a deadline
    /// never expire.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Sets a JSON body (and `Content-Type`).
    pub fn with_json(mut self, value: &Value) -> Self {
        self.body = json_body(value);
        self.headers.set("Content-Type", "application/json");
        self
    }

    /// Sets a raw body with the given content type.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.set("Content-Type", content_type);
        self.body = body;
        self
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, chronos_json::ParseError> {
        let text = String::from_utf8_lossy(&self.body);
        chronos_json::parse(&text)
    }

    /// Parsed query-string parameters (decoded).
    pub fn query_params(&self) -> Vec<(String, String)> {
        crate::url::parse_query(&self.query)
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_params().into_iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Response headers.
    pub headers: Headers,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn status(status: Status) -> Self {
        Response { status, headers: Headers::new(), body: Vec::new() }
    }

    /// A `200 OK` JSON response.
    pub fn json(value: &Value) -> Self {
        Self::json_status(Status::OK, value)
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: Status, value: &Value) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", "application/json");
        r.body = json_body(value);
        r
    }

    /// A plain-text response.
    pub fn text(status: Status, text: impl Into<String>) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", "text/plain; charset=utf-8");
        r.body = text.into().into_bytes();
        r
    }

    /// A binary response with explicit content type.
    pub fn bytes(status: Status, content_type: &str, body: Vec<u8>) -> Self {
        let mut r = Response::status(status);
        r.headers.set("Content-Type", content_type);
        r.body = body;
        r
    }

    /// The standard error shape used across the API:
    /// `{"error": {"code": ..., "message": ...}}`.
    pub fn error(status: Status, message: impl Into<String>) -> Self {
        let value = chronos_json::obj! {
            "error" => chronos_json::obj! {
                "code" => status.0 as i64,
                "message" => message.into(),
            },
        };
        Self::json_status(status, &value)
    }

    /// An error body with a *named* protocol code instead of the numeric
    /// status echo: `{"error": {"code": "<name>", "message": ...}}` — the
    /// same wire shape `chronos-api`'s `ErrorEnvelope` decodes. Lives here
    /// (below the contract crate) so the server can shed load on the accept
    /// thread with a typed body.
    pub fn error_named(status: Status, code: &str, message: impl Into<String>) -> Self {
        let value = chronos_json::obj! {
            "error" => chronos_json::obj! {
                "code" => code,
                "message" => message.into(),
            },
        };
        Self::json_status(status, &value)
    }

    /// Attaches retry hints: standard `Retry-After` (whole seconds, rounded
    /// up) plus [`RETRY_AFTER_MS_HEADER`] with millisecond precision.
    pub fn with_retry_after(mut self, hint: Duration) -> Self {
        let ms = hint.as_millis().max(1) as u64;
        self.headers.set("Retry-After", ms.div_ceil(1000).to_string());
        self.headers.set(RETRY_AFTER_MS_HEADER, ms.to_string());
        self
    }

    /// The server's retry hint, preferring the millisecond header over the
    /// whole-seconds standard one. `None` when the response carries neither.
    pub fn retry_after(&self) -> Option<Duration> {
        if let Some(ms) = self.headers.get(RETRY_AFTER_MS_HEADER) {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                return Some(Duration::from_millis(ms));
            }
        }
        let secs = self.headers.get("Retry-After")?.trim().parse::<u64>().ok()?;
        Some(Duration::from_secs(secs))
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<Value, chronos_json::ParseError> {
        chronos_json::parse(&String::from_utf8_lossy(&self.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_json::obj;

    #[test]
    fn method_parse_roundtrip() {
        for m in
            [Method::Get, Method::Post, Method::Put, Method::Patch, Method::Delete, Method::Head]
        {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_helpers() {
        assert!(Status::OK.is_success());
        assert!(Status::CREATED.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert_eq!(Status(599).reason(), "Unknown");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.add("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn headers_set_replaces() {
        let mut h = Headers::new();
        h.add("X-A", "1");
        h.add("x-a", "2");
        h.set("X-A", "3");
        assert_eq!(h.get("x-a"), Some("3"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn request_splits_query() {
        let r = Request::new(Method::Get, "/api/v1/jobs?status=failed&limit=10");
        assert_eq!(r.path, "/api/v1/jobs");
        assert_eq!(r.query_param("status").as_deref(), Some("failed"));
        assert_eq!(r.query_param("limit").as_deref(), Some("10"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn json_bodies_roundtrip() {
        let doc = obj! { "a" => 1 };
        let req = Request::new(Method::Post, "/x").with_json(&doc);
        assert_eq!(req.headers.get("content-type"), Some("application/json"));
        assert_eq!(req.json().unwrap(), doc);
        let resp = Response::json(&doc);
        assert_eq!(resp.json_body().unwrap(), doc);
    }

    #[test]
    fn error_shape() {
        let r = Response::error(Status::CONFLICT, "already running");
        let j = r.json_body().unwrap();
        assert_eq!(j.pointer("/error/code").and_then(|v| v.as_i64()), Some(409));
        assert_eq!(j.pointer("/error/message").and_then(|v| v.as_str()), Some("already running"));
    }

    #[test]
    fn named_error_shape() {
        let r = Response::error_named(Status::TOO_MANY_REQUESTS, "overloaded", "queue full");
        assert_eq!(r.status, Status::TOO_MANY_REQUESTS);
        let j = r.json_body().unwrap();
        assert_eq!(j.pointer("/error/code").and_then(|v| v.as_str()), Some("overloaded"));
        assert_eq!(j.pointer("/error/message").and_then(|v| v.as_str()), Some("queue full"));
    }

    #[test]
    fn retry_after_roundtrips_with_ms_precision() {
        let r = Response::error_named(Status::SERVICE_UNAVAILABLE, "draining", "shutting down")
            .with_retry_after(Duration::from_millis(1500));
        assert_eq!(r.headers.get("Retry-After"), Some("2"), "seconds round up");
        assert_eq!(r.headers.get(RETRY_AFTER_MS_HEADER), Some("1500"));
        assert_eq!(r.retry_after(), Some(Duration::from_millis(1500)));
        // Only the standard header: whole seconds.
        let mut r = Response::status(Status::SERVICE_UNAVAILABLE);
        r.headers.set("Retry-After", "3");
        assert_eq!(r.retry_after(), Some(Duration::from_secs(3)));
        assert_eq!(Response::status(Status::OK).retry_after(), None);
    }

    #[test]
    fn deadline_expiry() {
        let r = Request::new(Method::Get, "/x");
        assert!(!r.deadline_expired(), "no deadline never expires");
        assert_eq!(r.deadline_remaining(), None);
        let past = Instant::now() - Duration::from_millis(10);
        let r = Request::new(Method::Get, "/x").with_deadline(past);
        assert!(r.deadline_expired());
        assert_eq!(r.deadline_remaining(), Some(Duration::ZERO));
        let future = Instant::now() + Duration::from_secs(60);
        let r = Request::new(Method::Get, "/x").with_deadline(future);
        assert!(!r.deadline_expired());
        assert!(r.deadline_remaining().unwrap() > Duration::from_secs(30));
    }

    #[test]
    fn new_status_codes_have_reasons() {
        assert_eq!(Status::TOO_MANY_REQUESTS.reason(), "Too Many Requests");
        assert_eq!(Status::GATEWAY_TIMEOUT.reason(), "Gateway Timeout");
    }
}
