//! Thin wrappers over the raw Linux syscalls the reactor core needs.
//!
//! The repository builds offline with no external crates, so instead of the
//! `libc` crate this module declares the handful of symbols it needs as
//! `extern "C"` — std already links the platform C library, the loader
//! resolves them for free. Everything here is a minimal, safe-ish facade:
//! [`Epoll`] (readiness queue), [`EventFd`] (cross-thread wakeup), and
//! [`raise_nofile_limit`] (so fleet-scale experiments can actually open
//! tens of thousands of sockets).

use std::io;

#[cfg(target_os = "linux")]
pub use linux::{Epoll, EpollEvent, EventFd};

#[cfg(target_os = "linux")]
pub mod linux {
    //! The real implementation. Only compiled on Linux; the reactor core is
    //! gated on the same cfg and the server falls back to the threaded core
    //! elsewhere.

    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    /// `O_CLOEXEC` (octal 02000000), shared by `EPOLL_CLOEXEC`/`EFD_CLOEXEC`.
    const CLOEXEC: c_int = 0o2000000;
    /// `O_NONBLOCK` (octal 04000), shared by `EFD_NONBLOCK`.
    const NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`. On x86 the kernel declares it
    /// packed (no padding between `events` and `data`); on other
    /// architectures it is naturally aligned. Getting this wrong corrupts
    /// every token the kernel hands back, so mirror the kernel exactly.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bitmask (`EPOLLIN | ...`).
        pub events: u32,
        /// Caller-chosen token identifying the registered fd.
        pub data: u64,
    }

    impl EpollEvent {
        /// A zeroed event (for the wait buffer).
        pub fn empty() -> Self {
            EpollEvent { events: 0, data: 0 }
        }

        /// The token, copied out (the struct may be packed; never take a
        /// reference to its fields).
        pub fn token(&self) -> u64 {
            self.data
        }

        /// The readiness bits, copied out.
        pub fn readiness(&self) -> u32 {
            self.events
        }
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// An epoll instance: the readiness queue behind the reactor.
    pub struct Epoll {
        fd: c_int,
    }

    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut event = EpollEvent { events, data: token };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with interest `events`, tagged `token`.
        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, events)
        }

        /// Changes the interest set of an already-registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, events)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout_ms` for readiness, filling `events`.
        /// Retries on `EINTR` so callers never see spurious failures.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let rc = unsafe {
                    epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A non-blocking eventfd: worker threads write to it to wake the
    /// reactor out of `epoll_wait` when a response is ready.
    pub struct EventFd {
        fd: c_int,
    }

    impl EventFd {
        /// Creates a non-blocking, close-on-exec eventfd with counter 0.
        pub fn new() -> io::Result<EventFd> {
            let fd = unsafe { eventfd(0, CLOEXEC | NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        /// The raw fd, for epoll registration.
        pub fn fd(&self) -> RawFd {
            self.fd
        }

        /// Adds 1 to the counter, making the fd readable. Failures are
        /// ignored deliberately: the reactor also drains completions on its
        /// timer tick, so a lost wakeup costs latency, never correctness.
        pub fn wake(&self) {
            let one: u64 = 1;
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Resets the counter so the fd stops being readable (one read
        /// suffices: a non-semaphore eventfd returns and clears the whole
        /// counter).
        pub fn drain(&self) {
            let mut counter: u64 = 0;
            let _ = unsafe { read(self.fd, (&mut counter as *mut u64).cast(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    // Resource limits, for `raise_nofile_limit`.
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    /// Raises the soft open-file limit to the hard limit and returns the
    /// resulting soft limit.
    pub fn raise_nofile_limit() -> io::Result<u64> {
        let mut limit = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if limit.cur < limit.max {
            let raised = RLimit { cur: limit.max, max: limit.max };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
                return Err(io::Error::last_os_error());
            }
            return Ok(raised.cur);
        }
        Ok(limit.cur)
    }
}

/// Raises the process's soft open-file limit to its hard limit (no-op when
/// already there) and returns the soft limit now in force. Fleet-scale
/// experiments (E12's 8k keep-alive agents) call this before opening
/// sockets; on non-Linux hosts it reports success without acting.
pub fn raise_nofile_limit() -> io::Result<u64> {
    #[cfg(target_os = "linux")]
    {
        linux::raise_nofile_limit()
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(u64::MAX)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::linux::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let event_fd = EventFd::new().unwrap();
        epoll.add(event_fd.fd(), 7, EPOLLIN).unwrap();

        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::empty(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        event_fd.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readiness() & EPOLLIN != 0);

        // Draining clears readiness again.
        event_fd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 1, EPOLLIN).unwrap();

        let mut events = [EpollEvent::empty(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no pending connection yet");

        let mut client = TcpStream::connect(addr).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 1);

        // Accepted stream becomes readable once bytes arrive.
        let (stream, _) = listener.accept().unwrap();
        epoll.add(stream.as_raw_fd(), 2, EPOLLIN).unwrap();
        client.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].token() == 2));
        epoll.delete(stream.as_raw_fd()).unwrap();
    }

    #[test]
    fn raise_nofile_limit_reports_a_limit() {
        let limit = super::raise_nofile_limit().unwrap();
        assert!(limit >= 256, "suspiciously low fd limit {limit}");
    }
}
