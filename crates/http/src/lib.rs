//! Minimal HTTP/1.1 stack for Chronos.
//!
//! Chronos Control "offers a RESTful web service" (paper, §2.2) that both
//! agents and workflow integrations (e.g. build bots) call; the original
//! runs on Apache + PHP. This crate is the Rust substitute: a small,
//! dependency-free HTTP/1.1 implementation with exactly the features the
//! REST API needs —
//!
//! * [`Server`] — blocking accept loop on a thread pool, keep-alive,
//!   `Content-Length` bodies, graceful shutdown;
//! * [`Router`] — method + path-pattern dispatch with `:param` captures,
//!   the backbone of the versioned API;
//! * [`Client`] — a blocking client used by Chronos Agents (job polling,
//!   log upload, result upload) and by integration tests;
//! * [`Request`] / [`Response`] — message types with JSON body helpers;
//! * [`url`] — percent-encoding and query-string parsing.

pub mod client;
pub mod router;
pub mod server;
pub mod types;
pub mod url;

pub use client::{Client, ClientError};
pub use router::{RouteParams, Router};
pub use server::{Server, ServerHandle, ServerMetrics};
pub use types::{Headers, Method, Request, Response, Status};
pub use types::{
    CODE_DEADLINE_EXCEEDED, CODE_DRAINING, CODE_OVERLOADED, DEADLINE_HEADER, RETRY_AFTER_MS_HEADER,
};
