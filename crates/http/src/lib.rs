//! Minimal HTTP/1.1 stack for Chronos.
//!
//! Chronos Control "offers a RESTful web service" (paper, §2.2) that both
//! agents and workflow integrations (e.g. build bots) call; the original
//! runs on Apache + PHP. This crate is the Rust substitute: a small,
//! dependency-free HTTP/1.1 implementation with exactly the features the
//! REST API needs —
//!
//! * [`Server`] — HTTP/1.1 server with two cores: an epoll reactor event
//!   loop (default on Linux; idle keep-alive connections cost bytes, not
//!   threads) and the original blocking accept loop on a thread pool
//!   (the measured baseline), with keep-alive, `Content-Length` bodies,
//!   admission control and graceful shutdown on both;
//! * [`Router`] — method + path-pattern dispatch with `:param` captures,
//!   the backbone of the versioned API;
//! * [`Client`] — a blocking client with a keep-alive connection cache,
//!   used by Chronos Agents (job polling, log upload, result upload) and by
//!   integration tests;
//! * [`Request`] / [`Response`] — message types with JSON body helpers;
//! * [`parser`] — the incremental request parser behind the reactor;
//! * [`url`] — percent-encoding and query-string parsing.

pub mod client;
pub mod parser;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod router;
pub mod server;
pub mod sys;
pub mod types;
pub mod url;

pub use client::{Client, ClientError};
pub use router::{RouteParams, Router};
pub use server::{CoreKind, Server, ServerHandle, ServerMetrics};
pub use sys::raise_nofile_limit;
pub use types::{Headers, Method, Request, Response, Status};
pub use types::{
    CODE_DEADLINE_EXCEEDED, CODE_DRAINING, CODE_OVERLOADED, CODE_REQUEST_TIMEOUT, DEADLINE_HEADER,
    RETRY_AFTER_MS_HEADER,
};
