//! Blocking HTTP/1.1 client.
//!
//! Chronos Agents are "clients [...] connecting to Chronos' REST API"
//! (paper §2.2); this client is their transport. It keeps a small cache of
//! idle keep-alive connections to its base URL (reconnecting transparently
//! when the server closes one) and supports JSON and binary request bodies.
//! Socket I/O happens outside the cache lock, so concurrent callers sharing
//! one [`Client`] each drive their own connection instead of queueing.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use parking_lot::Mutex;

use chronos_json::Value;

use crate::types::{Headers, Method, Request, Response, Status};

/// Errors produced by the HTTP client.
#[derive(Debug)]
pub enum ClientError {
    /// The base URL could not be parsed (`http://host:port` expected).
    BadUrl(String),
    /// Connection or socket I/O failed.
    Io(std::io::Error),
    /// The response could not be parsed.
    BadResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BadUrl(u) => write!(f, "invalid URL: {u}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Idle keep-alive connections retained per client; more concurrent
/// requests simply open (and immediately drop) extra sockets.
const MAX_IDLE_CONNECTIONS: usize = 4;

/// A blocking HTTP client bound to one base URL.
pub struct Client {
    host: String,
    authority: String,
    timeout: Duration,
    idle: Mutex<Vec<BufReader<TcpStream>>>,
    default_headers: Mutex<Headers>,
}

impl Client {
    /// Creates a client for `base_url` (`http://host:port`).
    pub fn new(base_url: &str) -> Self {
        let authority =
            base_url.strip_prefix("http://").unwrap_or(base_url).trim_end_matches('/').to_string();
        Client {
            host: authority.clone(),
            authority,
            timeout: Duration::from_secs(30),
            idle: Mutex::new(Vec::new()),
            default_headers: Mutex::new(Headers::new()),
        }
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds a header sent with every request (e.g. a session token).
    pub fn set_default_header(&self, name: &str, value: &str) {
        self.default_headers.lock().set(name, value);
    }

    /// Sends `GET path`.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Get, path))
    }

    /// Sends `DELETE path`.
    pub fn delete(&self, path: &str) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Delete, path))
    }

    /// Sends `POST path` with a JSON body.
    pub fn post_json(&self, path: &str, body: &Value) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Post, path).with_json(body))
    }

    /// Sends `PUT path` with a JSON body.
    pub fn put_json(&self, path: &str, body: &Value) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Put, path).with_json(body))
    }

    /// Sends `POST path` with a binary body.
    pub fn post_bytes(
        &self,
        path: &str,
        content_type: &str,
        body: Vec<u8>,
    ) -> Result<Response, ClientError> {
        self.send(Request::new(Method::Post, path).with_body(content_type, body))
    }

    /// Sends an arbitrary request, transparently reconnecting once if the
    /// cached connection has gone stale.
    pub fn send(&self, request: Request) -> Result<Response, ClientError> {
        // Pop in its own statement so the cache lock is released before any
        // socket I/O (an `if let` scrutinee guard would outlive the block).
        let cached = self.idle.lock().pop();
        if let Some(conn) = cached {
            // Reuse a cached connection; on failure, retry on a fresh one
            // (the server may have closed an idle keep-alive connection).
            match self.send_on(conn, &request) {
                Ok((response, conn)) => {
                    self.park(conn);
                    return Ok(response);
                }
                Err(_) => { /* fall through to reconnect */ }
            }
        }
        let conn = self.connect()?;
        let (response, conn) = self.send_on(conn, &request)?;
        self.park(conn);
        Ok(response)
    }

    /// Number of idle connections currently cached (visible for tests and
    /// diagnostics).
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().len()
    }

    /// Returns a reusable connection to the cache, unless it is full.
    fn park(&self, conn: Option<BufReader<TcpStream>>) {
        if let Some(conn) = conn {
            let mut idle = self.idle.lock();
            if idle.len() < MAX_IDLE_CONNECTIONS {
                idle.push(conn);
            }
        }
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, ClientError> {
        if let Some(inj) = chronos_util::fail_eval!("http.client.connect") {
            return Err(ClientError::Io(std::io::Error::other(injected_msg(inj, "connect"))));
        }
        let stream = TcpStream::connect(&self.authority)
            .map_err(|_| ClientError::BadUrl(format!("cannot connect to {}", self.authority)))?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true).ok();
        Ok(BufReader::new(stream))
    }

    /// Writes the request and reads the response on `conn`. Returns the
    /// connection back for reuse unless the server asked to close it.
    fn send_on(
        &self,
        mut conn: BufReader<TcpStream>,
        request: &Request,
    ) -> Result<(Response, Option<BufReader<TcpStream>>), ClientError> {
        let target = if request.query.is_empty() {
            request.path.clone()
        } else {
            format!("{}?{}", request.path, request.query)
        };
        let mut head = format!("{} {} HTTP/1.1\r\nHost: {}\r\n", request.method, target, self.host);
        for (name, value) in self.default_headers.lock().iter() {
            if request.headers.get(name).is_none() {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
        }
        for (name, value) in request.headers.iter() {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", request.body.len()));
        {
            let stream = conn.get_mut();
            if let Some(inj) = chronos_util::fail_eval!("http.client.send") {
                if let chronos_util::fail::Injected::Torn { keep } = inj {
                    // Partial write then connection death: the server sees a
                    // truncated request and never processes it.
                    let keep = keep.min(head.len());
                    let _ = stream.write_all(&head.as_bytes()[..keep]);
                    let _ = stream.flush();
                }
                return Err(ClientError::Io(std::io::Error::other(injected_msg(inj, "send"))));
            }
            stream.write_all(head.as_bytes())?;
            stream.write_all(&request.body)?;
            stream.flush()?;
        }
        // The request is fully on the wire past this point: a `recv` fault
        // models a response lost *after* the server processed the call.
        if let Some(inj) = chronos_util::fail_eval!("http.client.recv") {
            return Err(ClientError::Io(std::io::Error::other(injected_msg(inj, "recv"))));
        }
        let (response, keep_alive) = read_response(&mut conn)?;
        Ok((response, if keep_alive { Some(conn) } else { None }))
    }
}

/// Renders an injected fault as a socket-error message.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn injected_msg(inj: chronos_util::fail::Injected, what: &str) -> String {
    match inj {
        chronos_util::fail::Injected::Error(msg) => format!("{what} failed: {msg}"),
        chronos_util::fail::Injected::Torn { keep } => {
            format!("{what} torn after {keep} bytes (injected)")
        }
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(Response, bool), ClientError> {
    let mut status_line = String::new();
    let n = reader.read_line(&mut status_line)?;
    if n == 0 {
        return Err(ClientError::BadResponse("connection closed".to_string()));
    }
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let _version = parts.next().unwrap_or_default();
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ClientError::BadResponse(format!("bad status line {status_line:?}")))?;
    let mut headers = Headers::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::BadResponse("truncated headers".to_string()));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.add(name.trim(), value.trim());
        }
    }
    let content_length: usize =
        headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    let keep_alive = !headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    Ok((Response { status: Status(code), headers, body }, keep_alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use chronos_json::obj;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_headers_are_sent_and_overridable() {
        let server = Server::new()
            .workers(2)
            .serve("127.0.0.1:0", |req| {
                Response::text(
                    Status::OK,
                    req.headers.get("x-token").unwrap_or("absent").to_string(),
                )
            })
            .unwrap();
        let client = Client::new(&server.base_url());
        let r = client.get("/a").unwrap();
        assert_eq!(r.body, b"absent");
        client.set_default_header("X-Token", "s3cret");
        let r = client.get("/a").unwrap();
        assert_eq!(r.body, b"s3cret");
        // Per-request header wins over the default.
        let mut req = Request::new(Method::Get, "/a");
        req.headers.set("X-Token", "override");
        let r = client.send(req).unwrap();
        assert_eq!(r.body, b"override");
    }

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let server = Server::new()
            .workers(2)
            .serve("127.0.0.1:0", |_| Response::text(Status::OK, "one"))
            .unwrap();
        let addr = server.addr();
        let client = Client::new(&format!("http://{addr}"));
        assert_eq!(client.get("/x").unwrap().body, b"one");
        drop(server);
        // Rebind on the same port (racy in general; retry a few times).
        let mut second = None;
        for _ in 0..20 {
            match Server::new()
                .workers(2)
                .serve(&addr.to_string(), |_| Response::text(Status::OK, "two"))
            {
                Ok(s) => {
                    second = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let Some(_second) = second else {
            return; // port not reusable fast enough on this host; skip
        };
        assert_eq!(client.get("/x").unwrap().body, b"two");
    }

    #[test]
    fn connect_failure_is_reported() {
        // Port 1 is essentially never listening.
        let client = Client::new("http://127.0.0.1:1");
        assert!(client.get("/x").is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let server = Server::new()
            .workers(2)
            .serve("127.0.0.1:0", |req| {
                Response::bytes(Status::OK, "application/octet-stream", req.body)
            })
            .unwrap();
        let client = Client::new(&server.base_url());
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        let resp = client.post_bytes("/echo", "application/octet-stream", payload.clone()).unwrap();
        assert_eq!(resp.body, payload);
    }

    /// How a [`stub_server`] connection behaves after answering a request.
    #[derive(Clone, Copy)]
    enum StubMode {
        /// Answer every request on the connection (normal keep-alive).
        KeepAlive,
        /// Answer one request, then close the socket without warning.
        CloseAfterOne,
        /// Answer with `Connection: close` and hang up, per the header.
        AdvertiseClose,
    }

    /// A bare [`std::net::TcpListener`] HTTP responder that counts how many
    /// connections it accepted, so tests can observe client-side reuse.
    fn stub_server(mode: StubMode) -> (std::net::SocketAddr, std::sync::Arc<AtomicUsize>) {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = std::sync::Arc::new(AtomicUsize::new(0));
        let counter = std::sync::Arc::clone(&accepts);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    loop {
                        // Consume one request: headers, then the body.
                        let mut content_length = 0usize;
                        loop {
                            let mut line = String::new();
                            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                                return; // client hung up
                            }
                            let trimmed = line.trim_end();
                            if trimmed.is_empty() {
                                break;
                            }
                            if let Some(v) = trimmed
                                .to_ascii_lowercase()
                                .strip_prefix("content-length:")
                                .map(str::trim)
                            {
                                content_length = v.parse().unwrap_or(0);
                            }
                        }
                        let mut body = vec![0u8; content_length];
                        if content_length > 0 && reader.read_exact(&mut body).is_err() {
                            return;
                        }
                        let extra = match mode {
                            StubMode::AdvertiseClose => "Connection: close\r\n",
                            _ => "",
                        };
                        let reply =
                            format!("HTTP/1.1 200 OK\r\n{extra}Content-Length: 2\r\n\r\nok");
                        if reader.get_mut().write_all(reply.as_bytes()).is_err() {
                            return;
                        }
                        match mode {
                            StubMode::KeepAlive => continue,
                            StubMode::CloseAfterOne | StubMode::AdvertiseClose => return,
                        }
                    }
                });
            }
        });
        (addr, accepts)
    }

    #[test]
    fn sequential_requests_reuse_one_connection() {
        let (addr, accepts) = stub_server(StubMode::KeepAlive);
        let client = Client::new(&format!("http://{addr}"));
        for _ in 0..5 {
            assert_eq!(client.get("/poll").unwrap().body, b"ok");
        }
        assert_eq!(accepts.load(Ordering::SeqCst), 1, "keep-alive connection was not reused");
        assert_eq!(client.idle_connections(), 1);
    }

    #[test]
    fn stale_cached_connection_falls_back_to_reconnect() {
        let (addr, accepts) = stub_server(StubMode::CloseAfterOne);
        let client = Client::new(&format!("http://{addr}"));
        // Each request parks its connection; the server then silently drops
        // it, so the next request must detect the stale socket and redial.
        for _ in 0..3 {
            assert_eq!(client.get("/poll").unwrap().body, b"ok");
        }
        assert_eq!(accepts.load(Ordering::SeqCst), 3, "stale connections must not be retried");
    }

    #[test]
    fn connection_close_header_evicts_from_cache() {
        let (addr, accepts) = stub_server(StubMode::AdvertiseClose);
        let client = Client::new(&format!("http://{addr}"));
        assert_eq!(client.get("/poll").unwrap().body, b"ok");
        assert_eq!(client.idle_connections(), 0, "Connection: close reply must not be cached");
        assert_eq!(client.get("/poll").unwrap().body, b"ok");
        assert_eq!(accepts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_senders_cap_the_idle_cache() {
        let server = Server::new()
            .workers(4)
            .serve("127.0.0.1:0", |_| Response::text(Status::OK, "ok"))
            .unwrap();
        let client = std::sync::Arc::new(Client::new(&server.base_url()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let client = std::sync::Arc::clone(&client);
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        assert_eq!(client.get("/x").unwrap().body, b"ok");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            client.idle_connections() <= MAX_IDLE_CONNECTIONS,
            "idle cache exceeded its cap: {}",
            client.idle_connections()
        );
    }

    #[test]
    fn json_roundtrip_via_put() {
        let server = Server::new()
            .workers(2)
            .serve("127.0.0.1:0", |req| Response::json(&req.json().unwrap()))
            .unwrap();
        let client = Client::new(&server.base_url());
        let doc = obj! { "nested" => obj! { "k" => 1.5 } };
        let resp = client.put_json("/doc", &doc).unwrap();
        assert_eq!(resp.json_body().unwrap(), doc);
    }
}
