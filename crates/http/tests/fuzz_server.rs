//! Fuzz the HTTP server with raw socket garbage: whatever bytes arrive, the
//! server must never panic, never hang the connection past its stall budget,
//! and keep serving well-formed requests afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use chronos_http::{Client, Response, Server, Status};
use proptest::prelude::*;

fn spawn_echo() -> chronos_http::ServerHandle {
    Server::new()
        .workers(4)
        .serve("127.0.0.1:0", |req| Response::text(Status::OK, req.path))
        .expect("bind")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_bytes_never_break_the_server(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..256),
        1..4,
    )) {
        let server = spawn_echo();
        for payload in &payloads {
            if let Ok(mut stream) = TcpStream::connect(server.addr()) {
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let _ = stream.write_all(payload);
                let mut buf = [0u8; 512];
                let _ = stream.read(&mut buf); // whatever comes back is fine
            }
        }
        // The server still works for a well-formed client.
        let client = Client::new(&server.base_url());
        let response = client.get("/still-alive").unwrap();
        prop_assert!(response.status.is_success());
        prop_assert_eq!(response.body, b"/still-alive".to_vec());
    }

    #[test]
    fn header_injection_attempts_are_inert(evil in "[ -~]{0,40}") {
        let server = spawn_echo();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // Smuggle arbitrary printable bytes into a header value.
        write!(
            stream,
            "GET /x HTTP/1.1\r\nHost: t\r\nX-Fuzz: {evil}\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        prop_assert!(
            response.starts_with("HTTP/1.1 200") || response.starts_with("HTTP/1.1 4"),
            "{response}"
        );
    }
}

#[test]
fn slow_loris_connections_are_dropped() {
    let server = spawn_echo();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    // Send half a request line and stall; the server's stall budget
    // (MAX_STALLS x IO_TIMEOUT = ~30 s) must eventually cut us off rather
    // than leak the worker forever. We don't wait the full budget here —
    // just confirm the server stays responsive to others while we stall.
    stream.write_all(b"GET /slo").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let client = Client::new(&server.base_url());
    for _ in 0..3 {
        assert!(client.get("/ok").unwrap().status.is_success());
    }
}
