//! Wire-level tests for the reactor core: fragmented request delivery,
//! pipelining, partial-write resumption, and slow-client hardening.
//!
//! These tests speak raw TCP so they can control exactly how request bytes
//! are segmented on the wire — the reactor must reassemble a request no
//! matter where the kernel (or an adversary) splits it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use chronos_http::{Response, Server, Status};

/// Starts a reactor-core echo server with small, test-friendly timeouts.
fn echo_server(header_timeout: Duration, idle_timeout: Duration) -> chronos_http::ServerHandle {
    Server::new()
        .reactor()
        .workers(2)
        .header_read_timeout(header_timeout)
        .idle_timeout(idle_timeout)
        .serve("127.0.0.1:0", |req| {
            Response::bytes(Status::OK, "application/octet-stream", req.body)
        })
        .expect("bind echo server")
}

/// Reads exactly one HTTP/1.1 response off `stream`, returning
/// `(status, body, connection_close)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, Vec<u8>, bool) {
    read_one_response_buffered(stream, &mut Vec::new())
}

/// [`read_one_response`] with an explicit carry buffer: when pipelined
/// responses coalesce into one TCP segment, bytes past the first response
/// land in `carry` for the next call instead of being mistaken for body.
fn read_one_response_buffered(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, Vec<u8>, bool) {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let mut content_length = 0usize;
    let mut close = false;
    for line in head.lines().skip(1) {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
        if lower.starts_with("connection:") && lower.contains("close") {
            close = true;
        }
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    // Anything past this response is the next pipelined response.
    *carry = body.split_off(content_length);
    (status, body, close)
}

#[test]
fn byte_at_a_time_request_is_reassembled() {
    let server = echo_server(Duration::from_secs(30), Duration::from_secs(30));
    let request = b"POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for &byte in request.iter() {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
    }
    let (status, body, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, b"hello");
}

#[test]
fn adversarial_split_points_are_tolerated() {
    let server = echo_server(Duration::from_secs(30), Duration::from_secs(30));
    let request = b"POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nwire".to_vec();
    // Splits straddling the request line, a header name, the CRLFCRLF
    // boundary (before, inside, after), and the body.
    for &split in &[1usize, 4, 20, 25, 48, 49, 50, 51, 53] {
        assert!(split < request.len(), "split {split} out of range");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&request[..split]).unwrap();
        stream.flush().unwrap();
        // Give the reactor a chance to observe the fragment alone.
        std::thread::sleep(Duration::from_millis(5));
        stream.write_all(&request[split..]).unwrap();
        stream.flush().unwrap();
        let (status, body, _) = read_one_response(&mut stream);
        assert_eq!(status, 200, "split at byte {split}");
        assert_eq!(body, b"wire", "split at byte {split}");
    }
}

#[test]
fn pipelined_requests_in_one_segment_both_answered() {
    let server = echo_server(Duration::from_secs(30), Duration::from_secs(30));
    let two = [
        &b"POST /a HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\n\r\none"[..],
        &b"POST /b HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\n\r\ntwo"[..],
    ]
    .concat();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(&two).unwrap();
    stream.flush().unwrap();
    let mut carry = Vec::new();
    let (status, body, _) = read_one_response_buffered(&mut stream, &mut carry);
    assert_eq!((status, body.as_slice()), (200, b"one".as_slice()));
    let (status, body, _) = read_one_response_buffered(&mut stream, &mut carry);
    assert_eq!((status, body.as_slice()), (200, b"two".as_slice()));
}

#[test]
fn large_response_survives_slow_reader_partial_writes() {
    // A response far bigger than any socket buffer forces the reactor down
    // its partial-write path: the first write_all fills the kernel buffer,
    // returns WouldBlock, and the remainder must be flushed via EPOLLOUT
    // readiness while the client drains at its leisure.
    const SIZE: usize = 4 << 20;
    let server = Server::new()
        .reactor()
        .workers(2)
        .serve("127.0.0.1:0", |_| {
            Response::bytes(Status::OK, "application/octet-stream", vec![0xA5u8; SIZE])
        })
        .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    // Dawdle before reading so the server's first write cannot complete.
    std::thread::sleep(Duration::from_millis(100));
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let (status, body, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body.len(), SIZE);
    assert!(body.iter().all(|&b| b == 0xA5));
}

#[test]
fn slowloris_header_dribble_gets_408_and_is_counted() {
    let server = echo_server(Duration::from_millis(200), Duration::from_secs(30));
    let metrics = server.metrics();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Send a partial request head and then stall forever.
    stream.write_all(b"GET /slow HTTP/1.1\r\nHost: t\r\nX-Drib").unwrap();
    stream.flush().unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (status, body, close) = read_one_response(&mut stream);
    assert_eq!(status, 408, "stalled header read must be shed with 408");
    assert!(close, "a timed-out connection must be closed");
    let text = String::from_utf8_lossy(&body).to_string();
    assert!(text.contains("request_timeout"), "typed error code missing from {text:?}");
    assert_eq!(metrics.shed_idle.get(), 1);
    // The socket is actually closed: the next read returns EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
}

#[test]
fn idle_keepalive_connection_is_reaped_silently() {
    let server = echo_server(Duration::from_secs(30), Duration::from_millis(200));
    let metrics = server.metrics();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\nhi").unwrap();
    let (status, body, close) = read_one_response(&mut stream);
    assert_eq!((status, body.as_slice(), close), (200, b"hi".as_slice(), false));
    // Now go idle past the keep-alive timeout: the reactor should close the
    // connection without sending anything (there is no request to answer).
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = Instant::now();
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "idle reap must be a bare close");
    assert!(
        start.elapsed() < Duration::from_secs(9),
        "connection was not reaped by the idle timer"
    );
    assert_eq!(metrics.shed_idle.get(), 1);
    assert_eq!(metrics.accepted.get(), 1, "a served-then-reaped conn still counts accepted");
}
