//! Quickstart: the whole Chronos workflow in one process.
//!
//! Starts Chronos Control, registers the bundled `minidoc` system, creates
//! a project + experiment, runs the evaluation through a Chronos Agent and
//! prints the analyzed result — the paper's §3 walkthrough, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
use chronos::core::analysis;
use chronos::core::auth::Role;
use chronos::core::charts::ChartRegistry;
use chronos::core::params::ParamAssignments;
use chronos::core::ChronosControl;
use chronos::json::Value;
use chronos::server::ChronosServer;
use chronos::util::Id;

fn main() {
    // 1. Start Chronos Control (in-memory store, real HTTP on an ephemeral
    //    port) and create an account.
    let control = Arc::new(ChronosControl::in_memory());
    control.create_user("demo", "demo-pw", Role::Admin).unwrap();
    let server = ChronosServer::start(Arc::clone(&control), "127.0.0.1:0").unwrap();
    println!("Chronos Control running at {}", server.base_url());

    // 2. Register the system under evaluation with its parameter schema and
    //    result charts (paper Fig. 2), plus one deployment.
    let definition = chronos::json::parse(include_str!("minidoc_system.json")).unwrap();
    let system = control.register_system_from_definition(&definition).unwrap();
    let deployment = control.create_deployment(system.id, "localhost", "0.1.0").unwrap();
    println!("registered system '{}' with {} parameters", system.name, system.parameters.len());

    // 3. Create a project and an experiment sweeping engine x threads
    //    (paper Fig. 3a) and run it as an evaluation.
    let owner = control.find_user("demo").unwrap();
    let project = control.create_project("quickstart", "demo project", owner.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "engine comparison",
            "wiredTiger vs mmapv1",
            ParamAssignments::new()
                .sweep_all("engine")
                .sweep("threads", vec![Value::from(1), Value::from(2), Value::from(4)])
                .fix("record_count", 2_000)
                .fix("operation_count", 20_000),
        )
        .unwrap();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    println!(
        "evaluation {} created with {} jobs (engine x threads)",
        evaluation.id,
        evaluation.job_ids.len()
    );

    // 4. Run a Chronos Agent against the REST API until the queue drains.
    let token = control.login("demo", "demo-pw").unwrap();
    let client = ControlClient::new(&server.base_url(), &token);
    let mut agent =
        ChronosAgent::new(client, AgentConfig::new(deployment.id), DocstoreClient::new());
    let completed = agent.run_until_idle(Duration::from_millis(300)).unwrap();
    println!("agent completed {completed} jobs");

    // 5. Analyze: status roll-up, summary and the declared charts
    //    (paper Fig. 3b/3d).
    let status = control.evaluation_status(evaluation.id).unwrap();
    println!(
        "status: {} finished / {} failed / {} total",
        status.finished,
        status.failed,
        status.total()
    );
    let registry = ChartRegistry::with_builtins();
    for spec in &system.charts {
        let data = analysis::chart_data(&control, evaluation.id, spec).unwrap();
        println!("\n{}", registry.render_ascii(spec, &data).unwrap());
    }

    // 6. Who wins? (the demo's question)
    let spec = &system.charts[0];
    let data = analysis::chart_data(&control, evaluation.id, spec).unwrap();
    let comparison = analysis::compare_series(&data, "wiredtiger", "mmapv1").unwrap();
    println!("wiredtiger vs mmapv1: {}", comparison.to_pretty_string());

    // 7. Archive everything (requirement iv).
    let archive = chronos::core::archive::archive_project(&control, project.id).unwrap();
    let out = std::env::temp_dir().join(format!("chronos-quickstart-{}.zip", Id::generate()));
    std::fs::write(&out, &archive).unwrap();
    println!("\nproject archived to {} ({} bytes)", out.display(), archive.len());
}
