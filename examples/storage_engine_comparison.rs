//! The paper's demonstration (§3): comparative evaluation of the two
//! storage engines — wiredTiger-like vs mmapv1-like — across client thread
//! counts, with the analysis Chronos renders on the result page (Fig. 3d).
//!
//! Runs in the durable (disk-backed, synced) configuration, where the
//! engines' architectural difference is starkest: mmapv1 journals every
//! write under its collection lock; wiredTiger group-commits its WAL.
//!
//! ```text
//! cargo run --release --example storage_engine_comparison
//! ```

use std::sync::Arc;
use std::time::Duration;

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, DocstoreClient};
use chronos::core::analysis;
use chronos::core::auth::Role;
use chronos::core::charts::{ChartRegistry, ChartSpec};
use chronos::core::params::{ParamAssignments, ParamDef, ParamType};
use chronos::core::ChronosControl;
use chronos::json::Value;
use chronos::server::ChronosServer;

fn main() {
    let control = Arc::new(ChronosControl::in_memory());
    control.create_user("demo", "pw", Role::Admin).unwrap();
    let server = ChronosServer::start(Arc::clone(&control), "127.0.0.1:0").unwrap();

    // The demo system: engine + threads + durability are what we sweep/pin.
    let system = control
        .register_system(
            "minidoc",
            "document store, two storage engines",
            vec![
                ParamDef::new(
                    "engine",
                    "storage engine",
                    ParamType::Checkbox { options: vec!["wiredtiger".into(), "mmapv1".into()] },
                    Value::from("wiredtiger"),
                )
                .unwrap(),
                ParamDef::new(
                    "threads",
                    "client threads",
                    ParamType::Interval { min: 1, max: 64, step: 1 },
                    Value::from(1),
                )
                .unwrap(),
                ParamDef::new(
                    "durability",
                    "synced journal/WAL",
                    ParamType::Boolean,
                    Value::Bool(true),
                )
                .unwrap(),
                ParamDef::new("record_count", "records", ParamType::Value, Value::from(2_000))
                    .unwrap(),
                ParamDef::new(
                    "operation_count",
                    "operations",
                    ParamType::Value,
                    Value::from(8_000),
                )
                .unwrap(),
            ],
            vec![
                ChartSpec {
                    kind: "line".into(),
                    title: "YCSB-A throughput vs client threads (durable)".into(),
                    x_param: "threads".into(),
                    series_param: Some("engine".into()),
                    value_path: "/throughput_ops_per_sec".into(),
                    y_label: "ops/s".into(),
                },
                ChartSpec {
                    kind: "bar".into(),
                    title: "p99 update latency".into(),
                    x_param: "threads".into(),
                    series_param: Some("engine".into()),
                    value_path: "/operations/update/latency_micros/p99".into(),
                    y_label: "µs".into(),
                },
                ChartSpec {
                    kind: "bar".into(),
                    title: "Storage footprint after the run".into(),
                    x_param: "threads".into(),
                    series_param: Some("engine".into()),
                    value_path: "/engine_stats/stored_bytes".into(),
                    y_label: "bytes".into(),
                },
            ],
        )
        .unwrap();
    let deployment = control.create_deployment(system.id, "localhost", "0.1.0").unwrap();

    let owner = control.find_user("demo").unwrap();
    let project = control.create_project("engine-shootout", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "wiredTiger vs mmapv1",
            "the EDBT 2020 demo",
            ParamAssignments::new().sweep_all("engine").sweep(
                "threads",
                vec![Value::from(1), Value::from(2), Value::from(4), Value::from(8)],
            ),
        )
        .unwrap();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    println!(
        "running {} jobs (2 engines x 4 thread counts, durable writes)...\n",
        evaluation.job_ids.len()
    );

    let token = control.login("demo", "pw").unwrap();
    let client = ControlClient::new(&server.base_url(), &token);
    let mut agent =
        ChronosAgent::new(client, AgentConfig::new(deployment.id), DocstoreClient::new());
    agent.run_until_idle(Duration::from_millis(300)).unwrap();

    // Render every declared chart, exactly what the web UI would show.
    let registry = ChartRegistry::with_builtins();
    for spec in &system.charts {
        let data = analysis::chart_data(&control, evaluation.id, spec).unwrap();
        println!("{}", registry.render_ascii(spec, &data).unwrap());
    }

    // The headline readout: who wins and by what factor per thread count.
    let data = analysis::chart_data(&control, evaluation.id, &system.charts[0]).unwrap();
    let comparison = analysis::compare_series(&data, "wiredtiger", "mmapv1").unwrap();
    println!("speedup wiredtiger/mmapv1 per thread count:");
    for ratio in comparison.get("ratios").and_then(Value::as_array).unwrap() {
        println!(
            "  threads={:>2}: {:.1}x",
            ratio.get("x").and_then(Value::as_str).unwrap(),
            ratio.get("ratio").and_then(Value::as_f64).unwrap()
        );
    }
    println!(
        "wiredtiger wins {}/{} configurations",
        comparison.get("a_wins").and_then(Value::as_i64).unwrap(),
        comparison.get("comparisons").and_then(Value::as_i64).unwrap()
    );
}
