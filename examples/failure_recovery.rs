//! Requirement *(iii)* — reliability: automated failure handling and
//! recovery of failed evaluation runs (and paper Fig. 3c: the job page's
//! abort / reschedule controls and event timeline).
//!
//! This example runs a deliberately flaky evaluation client that crashes on
//! its first two attempts, and shows Chronos Control failing, automatically
//! re-scheduling, and finally completing the job — then demonstrates the
//! heartbeat-timeout path with an agent that silently dies mid-job.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, EvaluationClient, JobContext};
use chronos::core::auth::Role;
use chronos::core::params::ParamAssignments;
use chronos::core::scheduler::SchedulerConfig;
use chronos::core::store::MetadataStore;
use chronos::core::ChronosControl;
use chronos::json::{obj, Value};
use chronos::server::ChronosServer;
use chronos::util::SystemClock;

/// An evaluation client that crashes until its third attempt — a stand-in
/// for the flaky benchmark binaries long evaluations inevitably meet.
struct FlakyClient {
    attempts: Arc<AtomicU32>,
}

impl EvaluationClient for FlakyClient {
    fn name(&self) -> &str {
        "flaky-benchmark"
    }

    fn set_up(&mut self, ctx: &JobContext) -> Result<(), String> {
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst) + 1;
        ctx.log(format!("attempt {attempt} starting"));
        match attempt {
            1 => Err("segfault in benchmark binary".to_string()),
            2 => panic!("simulated hard crash"), // the agent catches panics
            _ => Ok(()),
        }
    }

    fn execute(&mut self, ctx: &JobContext) -> Result<Value, String> {
        ctx.set_progress(100);
        Ok(obj! {"throughput_ops_per_sec" => 1234.5})
    }
}

fn main() {
    // Policy: up to 3 attempts, auto-reschedule, 1 s heartbeat lease.
    let control = Arc::new(ChronosControl::new(
        MetadataStore::in_memory(),
        Arc::new(SystemClock),
        SchedulerConfig { heartbeat_timeout_millis: 1_000, max_attempts: 3, auto_reschedule: true },
    ));
    control.create_user("demo", "pw", Role::Admin).unwrap();
    let server = ChronosServer::start(Arc::clone(&control), "127.0.0.1:0").unwrap();

    let system = control.register_system("flaky-sut", "", vec![], vec![]).unwrap();
    let deployment = control.create_deployment(system.id, "localhost", "1").unwrap();
    let owner = control.find_user("demo").unwrap();
    let project = control.create_project("reliability-demo", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(project.id, system.id, "crashy", "", ParamAssignments::new())
        .unwrap();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    let job_id = evaluation.job_ids[0];

    // --- part 1: reported failures + automatic rescheduling ---------------
    println!("part 1: evaluation client crashes on attempts 1 and 2\n");
    let token = control.login("demo", "pw").unwrap();
    let attempts = Arc::new(AtomicU32::new(0));
    let mut agent = ChronosAgent::new(
        ControlClient::new(&server.base_url(), &token),
        AgentConfig::new(deployment.id),
        FlakyClient { attempts: Arc::clone(&attempts) },
    );
    // Three runs: fail, fail (panic), succeed — auto-reschedule in between.
    for round in 1..=3 {
        let ran = agent.run_once().unwrap();
        let job = control.get_job(job_id).unwrap();
        println!("round {round}: ran={ran} -> state={} attempts={}", job.state, job.attempts);
    }
    let job = control.get_job(job_id).unwrap();
    assert_eq!(job.state.as_str(), "finished");
    println!("\njob timeline (paper Fig. 3c):");
    for event in &job.timeline {
        println!(
            "  {} {:>10}  {}",
            chronos::util::clock::format_timestamp(event.at),
            event.kind,
            event.message
        );
    }

    // --- part 2: heartbeat timeout (agent dies silently) ------------------
    println!("\npart 2: agent dies mid-job; the lease expires\n");
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    let job_id = evaluation.job_ids[0];
    // Claim the job and never heartbeat again (the "agent" vanished).
    let claimed = control.claim_next_job(deployment.id, None).unwrap().unwrap();
    assert_eq!(claimed.id, job_id);
    println!("job claimed by a doomed agent; waiting for the sweeper...");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let job = control.get_job(job_id).unwrap();
        if job.state.as_str() == "scheduled" {
            println!("sweeper failed + re-scheduled the job automatically:");
            for event in job.timeline.iter().skip(1) {
                println!("  {:>10}  {}", event.kind, event.message);
            }
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sweeper never fired");
        std::thread::sleep(Duration::from_millis(100));
    }

    // A healthy agent finishes the recovered job.
    let ran = agent.run_once().unwrap();
    let job = control.get_job(job_id).unwrap();
    println!("\nhealthy agent ran={ran} -> final state: {}", job.state);
    assert_eq!(job.state.as_str(), "finished");
}
