//! The paper's future-work direction, realized: "we plan to develop a
//! Chronos Agent that wraps the OLTP-Bench so as to combine both systems"
//! (§4). This example runs the bundled TPC-C-style evaluation client
//! through a full Chronos evaluation — both storage engines, standard
//! transaction mix — and prints the tpmC-style readout.
//!
//! ```text
//! cargo run --release --example oltp_transactions
//! ```

use std::sync::Arc;
use std::time::Duration;

use chronos::agent::{AgentConfig, ChronosAgent, ControlClient, TpccClient};
use chronos::core::analysis;
use chronos::core::auth::Role;
use chronos::core::charts::{ChartRegistry, ChartSpec};
use chronos::core::params::{ParamAssignments, ParamDef, ParamType};
use chronos::core::ChronosControl;
use chronos::json::Value;
use chronos::server::ChronosServer;

fn main() {
    let control = Arc::new(ChronosControl::in_memory());
    control.create_user("demo", "pw", Role::Admin).unwrap();
    let server = ChronosServer::start(Arc::clone(&control), "127.0.0.1:0").unwrap();

    let system = control
        .register_system(
            "minidoc-tpcc",
            "tpcc-lite transactional benchmark over minidoc",
            vec![
                ParamDef::new(
                    "engine",
                    "storage engine",
                    ParamType::Checkbox { options: vec!["wiredtiger".into(), "mmapv1".into()] },
                    Value::from("wiredtiger"),
                )
                .unwrap(),
                ParamDef::new(
                    "threads",
                    "terminals",
                    ParamType::Interval { min: 1, max: 16, step: 1 },
                    Value::from(4),
                )
                .unwrap(),
                ParamDef::new("warehouses", "scale factor", ParamType::Value, Value::from(2))
                    .unwrap(),
                ParamDef::new(
                    "transaction_count",
                    "transactions per run",
                    ParamType::Value,
                    Value::from(2_000),
                )
                .unwrap(),
                ParamDef::new(
                    "durability",
                    "disk-backed with synced journal/WAL",
                    ParamType::Boolean,
                    Value::Bool(true),
                )
                .unwrap(),
            ],
            vec![ChartSpec {
                kind: "bar".into(),
                title: "New-Orders per minute by engine".into(),
                x_param: "engine".into(),
                series_param: None,
                value_path: "/new_orders_per_minute".into(),
                y_label: "new-orders/min".into(),
            }],
        )
        .unwrap();
    let deployment = control.create_deployment(system.id, "localhost", "0.1.0").unwrap();
    let owner = control.find_user("demo").unwrap();
    let project = control.create_project("oltp", "", owner.id).unwrap();
    let experiment = control
        .create_experiment(
            project.id,
            system.id,
            "tpcc engines",
            "standard 45/43/4/4/4 mix",
            ParamAssignments::new().sweep_all("engine"),
        )
        .unwrap();
    let evaluation = control.create_evaluation(experiment.id).unwrap();
    println!("running {} tpcc-lite jobs...", evaluation.job_ids.len());

    let token = control.login("demo", "pw").unwrap();
    let mut agent = ChronosAgent::new(
        ControlClient::new(&server.base_url(), &token),
        AgentConfig::new(deployment.id),
        TpccClient::new(),
    );
    agent.run_until_idle(Duration::from_millis(300)).unwrap();

    // The per-engine readout.
    println!();
    for job in control.list_jobs(evaluation.id).unwrap() {
        let engine =
            job.parameters.get("engine").and_then(Value::as_str).unwrap_or("?").to_string();
        let result = control.result_for_job(job.id).unwrap().expect("job finished");
        let get_f = |p: &str| result.data.pointer(p).and_then(Value::as_f64).unwrap_or(0.0);
        let get_u = |p: &str| result.data.pointer(p).and_then(Value::as_u64).unwrap_or(0);
        println!(
            "{engine:>11}: {:>8.0} tx/s  {:>9.0} new-orders/min  p99(new_order)={} µs  p99(payment)={} µs",
            get_f("/throughput_ops_per_sec"),
            get_f("/new_orders_per_minute"),
            get_u("/operations/new_order/latency_micros/p99"),
            get_u("/operations/payment/latency_micros/p99"),
        );
    }

    let registry = ChartRegistry::with_builtins();
    let data = analysis::chart_data(&control, evaluation.id, &system.charts[0]).unwrap();
    println!("\n{}", registry.render_ascii(&system.charts[0], &data).unwrap());
}
