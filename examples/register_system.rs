//! Workflow 1 of §3 (paper Fig. 2): registering a System under Evaluation
//! over the REST API from a JSON definition document, then inspecting the
//! generated experiment form — the parameters with their types, options and
//! defaults — and the declared result charts.
//!
//! ```text
//! cargo run --release --example register_system
//! ```

use std::sync::Arc;

use chronos::core::auth::Role;
use chronos::core::ChronosControl;
use chronos::http::Client;
use chronos::json::{obj, Value};
use chronos::server::ChronosServer;

fn main() {
    let control = Arc::new(ChronosControl::in_memory());
    control.create_user("admin", "pw", Role::Admin).unwrap();
    let server = ChronosServer::start(control, "127.0.0.1:0").unwrap();
    println!("Chronos Control at {}\n", server.base_url());

    // Log in over the API, as an integrating tool would.
    let http = Client::new(&server.base_url());
    let login =
        http.post_json("/api/v1/login", &obj! {"username" => "admin", "password" => "pw"}).unwrap();
    let token =
        login.json_body().unwrap().get("token").and_then(Value::as_str).unwrap().to_string();
    http.set_default_header("X-Chronos-Token", &token);

    // The system definition ships with the SuE's repository; Chronos
    // imports it as-is (the git/mercurial workflow of §3).
    let definition = chronos::json::parse(include_str!("minidoc_system.json")).unwrap();
    let created = http.post_json("/api/v1/systems", &definition).unwrap();
    assert!(created.status.is_success(), "{}", String::from_utf8_lossy(&created.body));
    let system = created.json_body().unwrap();
    let system_id = system.get("id").and_then(Value::as_str).unwrap();
    println!(
        "registered system '{}' (id {system_id})",
        system.get("name").and_then(Value::as_str).unwrap()
    );

    // Render the experiment form the web UI would build from the schema.
    println!("\nexperiment form (paper Fig. 2 / Fig. 3a):");
    println!("{:-<76}", "");
    for param in system.get("parameters").and_then(Value::as_array).unwrap() {
        let name = param.get("name").and_then(Value::as_str).unwrap_or("?");
        let kind = param.get("type").and_then(Value::as_str).unwrap_or("?");
        let description = param.get("description").and_then(Value::as_str).unwrap_or("");
        let default = param.get("default").map(|d| d.to_string()).unwrap_or_default();
        let detail = match kind {
            "checkbox" => format!(
                "options: {}",
                param.get("options").map(|o| o.to_string()).unwrap_or_default()
            ),
            "interval" => format!(
                "range: {}..={} step {}",
                param.get("min").and_then(Value::as_i64).unwrap_or(0),
                param.get("max").and_then(Value::as_i64).unwrap_or(0),
                param.get("step").and_then(Value::as_i64).unwrap_or(1),
            ),
            _ => String::new(),
        };
        println!("  {name:<16} [{kind:<8}] default={default:<14} {description}");
        if !detail.is_empty() {
            println!("  {:16} {detail}", "");
        }
    }
    println!("{:-<76}", "");

    println!("\ndeclared result charts (rendered on the evaluation page):");
    for chart in system.get("charts").and_then(Value::as_array).unwrap() {
        println!(
            "  [{}] {:<44} <- {}",
            chart.get("kind").and_then(Value::as_str).unwrap_or("?"),
            chart.get("title").and_then(Value::as_str).unwrap_or("?"),
            chart.get("value_path").and_then(Value::as_str).unwrap_or("?"),
        );
    }

    // Register a deployment so agents could start working immediately.
    let deployment = http
        .post_json(
            &format!("/api/v1/systems/{system_id}/deployments"),
            &obj! {"environment" => "bench-node-1", "version" => "0.1.0"},
        )
        .unwrap()
        .json_body()
        .unwrap();
    println!(
        "\ndeployment '{}' registered (id {}) — the system is ready for evaluations",
        deployment.get("environment").and_then(Value::as_str).unwrap(),
        deployment.get("id").and_then(Value::as_str).unwrap()
    );
}
